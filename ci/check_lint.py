#!/usr/bin/env python3
"""Validate the mmjoin-lint JSON report artifact against its schema.

The report is what ``mmjoin-lint check --json`` writes:

    {
      "version": 1,
      "tool": "mmjoin-lint",
      "root": "<scan root>",
      "files_scanned": <int>,
      "clean": <bool>,
      "rules": [{"name": "...", "summary": "..."}, ...],
      "violations": [{"rule", "path", "line", "message", "snippet"}, ...],
      "allowances": [{"rule", "path", "line", "reason"}, ...]
    }

The check fails if the report is malformed, references an unknown rule,
carries an empty suppression reason, scanned suspiciously few files (a
tokenizer or walker regression would surface as a shrunken scan, not an
error), or is not clean. CI runs it right after ``check`` so a report
the binary claims is fine is independently re-validated before upload.

Usage: python3 ci/check_lint.py [report.json]
"""

import json
import os
import sys

# The six rules the lint must know about; a report missing one means a
# rule pass was deleted without this gate noticing.
EXPECTED_RULES = {
    "unsafe-safety",
    "thread-spawn",
    "lock-unwrap",
    "span-alloc",
    "seqcst",
    "static-mut",
}

# The workspace currently spans well over this many .rs files; a scan
# that sees fewer lost a directory, not weight.
MIN_FILES_SCANNED = 50


def fail(msg: str) -> None:
    print(f"check_lint: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond: bool, msg: str) -> None:
    if not cond:
        fail(msg)


def check_site(entry: dict, idx: int, kind: str, rule_names: set) -> None:
    require(isinstance(entry, dict), f"{kind}[{idx}] is not an object")
    for key in ("rule", "path", "line"):
        require(key in entry, f"{kind}[{idx}] missing '{key}'")
    require(
        entry["rule"] in rule_names,
        f"{kind}[{idx}] references unknown rule {entry['rule']!r}",
    )
    require(
        isinstance(entry["path"], str) and entry["path"],
        f"{kind}[{idx}] has an empty path",
    )
    require(
        isinstance(entry["line"], int) and entry["line"] >= 1,
        f"{kind}[{idx}] line must be a 1-based integer",
    )


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "lint-report.json"
    if not os.path.exists(path):
        fail(f"report {path} not found (did the check step run?)")
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    require(isinstance(report, dict), "report root is not an object")
    require(report.get("version") == 1, "unknown report version")
    require(report.get("tool") == "mmjoin-lint", "unexpected tool name")
    require(isinstance(report.get("root"), str), "missing scan root")

    files = report.get("files_scanned")
    require(isinstance(files, int), "files_scanned must be an integer")
    require(
        files >= MIN_FILES_SCANNED,
        f"only {files} files scanned (expected >= {MIN_FILES_SCANNED}; "
        "did the walker lose a scan dir?)",
    )

    rules = report.get("rules")
    require(isinstance(rules, list) and rules, "missing rules table")
    rule_names = set()
    for i, rule in enumerate(rules):
        require(isinstance(rule, dict), f"rules[{i}] is not an object")
        require(
            isinstance(rule.get("name"), str) and rule["name"],
            f"rules[{i}] missing name",
        )
        require(
            isinstance(rule.get("summary"), str) and rule["summary"],
            f"rules[{i}] missing summary",
        )
        rule_names.add(rule["name"])
    missing = EXPECTED_RULES - rule_names
    require(not missing, f"report is missing rule(s): {sorted(missing)}")

    violations = report.get("violations")
    require(isinstance(violations, list), "violations must be a list")
    for i, v in enumerate(violations):
        check_site(v, i, "violations", rule_names)
        for key in ("message", "snippet"):
            require(key in v, f"violations[{i}] missing '{key}'")

    allowances = report.get("allowances")
    require(isinstance(allowances, list), "allowances must be a list")
    for i, a in enumerate(allowances):
        check_site(a, i, "allowances", rule_names)
        require(
            isinstance(a.get("reason"), str) and a["reason"].strip(),
            f"allowances[{i}] has an empty reason — justification is the point",
        )

    clean = report.get("clean")
    require(isinstance(clean, bool), "clean must be a boolean")
    require(
        clean == (len(violations) == 0),
        "clean flag disagrees with the violations list",
    )
    if not clean:
        for v in violations:
            print(f"  {v['path']}:{v['line']}: [{v['rule']}] {v['message']}")
        fail(f"{len(violations)} lint violation(s)")

    print(
        f"check_lint: OK: {files} files, 0 violations, "
        f"{len(allowances)} justified allowance(s), {len(rule_names)} rules"
    )


if __name__ == "__main__":
    main()
