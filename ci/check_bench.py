#!/usr/bin/env python3
"""Validate every committed BENCH_*.json snapshot against one schema.

Each snapshot is what ``experiments --json`` writes: a JSON array of table
objects, one per target, with the target name and scale spliced in:

    [
      {
        "target": "<experiment target>",
        "scale": <number>,
        "title": "<table title>",
        "headers": ["<key column>", "<cell column>", ...],
        "rows": [{"key": "<row key>", "cells": ["...", ...]}, ...]
      },
      ...
    ]

The check fails if any snapshot is malformed, or if the trajectory is
missing a required snapshot (BENCH_8.json must exist and carry the
``crossover`` target with both its sweep and kernel-speedup rows — the
misprediction gate's committed evidence; BENCH_9.json must additionally
carry the parallel-scheduler ``par n=… t=…`` rows with a bit-exact
verdict and a parseable ``requested/granted`` thread budget).

Usage: python3 ci/check_bench.py [repo-root]
"""

import glob
import json
import os
import sys

REQUIRED = {"BENCH_8.json": ["crossover"], "BENCH_9.json": ["crossover"]}

# Snapshots whose crossover entry must also prove the multi-core tiled
# scheduler (older snapshots predate it and are checked sweep-only).
REQUIRE_PAR_ROWS = {"BENCH_9.json"}


def fail(msg: str) -> None:
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_entry(path: str, idx: int, entry) -> str:
    where = f"{os.path.basename(path)}[{idx}]"
    if not isinstance(entry, dict):
        fail(f"{where}: entry is {type(entry).__name__}, expected object")
    for key, kind in (
        ("target", str),
        ("scale", (int, float)),
        ("title", str),
        ("headers", list),
        ("rows", list),
    ):
        if key not in entry:
            fail(f"{where}: missing key {key!r}")
        if not isinstance(entry[key], kind):
            fail(f"{where}: {key!r} is {type(entry[key]).__name__}")
    headers = entry["headers"]
    if not headers or not all(isinstance(h, str) for h in headers):
        fail(f"{where}: headers must be a non-empty list of strings")
    if not entry["rows"]:
        fail(f"{where}: target {entry['target']!r} has no rows")
    for r, row in enumerate(entry["rows"]):
        rwhere = f"{where}.rows[{r}]"
        if not isinstance(row, dict) or set(row) != {"key", "cells"}:
            fail(f"{rwhere}: expected an object with exactly 'key' and 'cells'")
        if not isinstance(row["key"], str) or not row["key"]:
            fail(f"{rwhere}: row key must be a non-empty string")
        cells = row["cells"]
        if not isinstance(cells, list) or not all(isinstance(c, str) for c in cells):
            fail(f"{rwhere}: cells must be a list of strings")
        # headers[0] labels the key column; cells fill the rest.
        if len(cells) != len(headers) - 1:
            fail(
                f"{rwhere}: {len(cells)} cells for {len(headers) - 1} "
                f"non-key headers"
            )
    return entry["target"]


def check_crossover(path: str, entry, require_par: bool) -> None:
    """Required snapshots must carry the full misprediction sweep."""
    keys = [row["key"] for row in entry["rows"]]
    sweep = [k for k in keys if k.startswith("f=")]
    gemm = [k for k in keys if k.startswith("gemm n=")]
    if len(sweep) < 4:
        fail(f"{path}: crossover sweep has only {len(sweep)} points")
    if not gemm:
        fail(f"{path}: crossover entry lacks kernel-speedup (gemm) rows")
    predicted_col = entry["headers"].index("predicted") - 1
    predictions = {
        row["cells"][predicted_col] for row in entry["rows"] if row["key"].startswith("f=")
    }
    if not {"wcoj", "mm"} <= predictions:
        fail(f"{path}: sweep does not bracket the crossover ({sorted(predictions)})")
    if not require_par:
        return
    threads_col = entry["headers"].index("excess ms") - 1
    par_rows = [row for row in entry["rows"] if row["key"].startswith("par ")]
    if not par_rows:
        fail(f"{path}: crossover entry lacks parallel-scheduler (par) rows")
    for row in par_rows:
        key = row["key"]
        if row["cells"][predicted_col] != "identical":
            fail(f"{path}: {key} is not bit-exact ({row['cells'][predicted_col]!r})")
        budget = row["cells"][threads_col]
        req, sep, granted = budget.partition("/")
        if not sep or not req.isdigit() or not granted.isdigit():
            fail(f"{path}: {key} has malformed thread budget {budget!r}")


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        fail(f"no BENCH_*.json snapshots under {root!r}")
    targets_by_file = {}
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            fail(f"{path}: {exc}")
        if not isinstance(doc, list) or not doc:
            fail(f"{path}: expected a non-empty JSON array of table objects")
        targets = [check_entry(path, i, entry) for i, entry in enumerate(doc)]
        targets_by_file[os.path.basename(path)] = (path, doc, targets)

    for name, required_targets in REQUIRED.items():
        if name not in targets_by_file:
            fail(f"required snapshot {name} is missing from the trajectory")
        path, doc, targets = targets_by_file[name]
        for target in required_targets:
            if target not in targets:
                fail(f"{name}: required target {target!r} not present ({targets})")
        for entry in doc:
            if entry["target"] == "crossover":
                check_crossover(name, entry, name in REQUIRE_PAR_ROWS)

    total = sum(len(t) for _, _, t in targets_by_file.values())
    print(
        f"check_bench: ok — {len(targets_by_file)} snapshot(s), "
        f"{total} table(s): "
        + ", ".join(f"{n}={t}" for n, (_, _, t) in sorted(targets_by_file.items()))
    )


if __name__ == "__main__":
    main()
