//! Per-request structured tracing: span trees with parent links,
//! thread-local context propagation, and Chrome trace-event export.
//!
//! A trace is born at the boundary where a request enters the system
//! (the REPL line loop or the TCP reader) via [`Tracer::begin`] (RAII,
//! same thread) or [`Tracer::start`]/[`Tracer::finish`] (detached, for
//! requests that hop threads through a queue). While a trace's [`Ctx`]
//! is installed in the current thread, [`span`] sites anywhere down the
//! stack attach child spans to it; the executor re-installs the ctx
//! inside pool workers so spans recorded by stolen tasks still land in
//! the right tree.
//!
//! Disabled tracing costs one relaxed atomic load per span site — no
//! clock read, no thread-local access, no allocation (see the crate
//! docs for the full overhead contract).

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// What kind of work a span covers. Stages are coarse, fixed, and
/// shared across layers so exported traces stay comparable between
/// runs; free-form detail goes in the span label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Root span: one request end to end.
    Request,
    /// Command-line / wire-frame parsing.
    Parse,
    /// Time spent queued (net fair queue or service admission queue).
    QueueWait,
    /// Result-cache lookup (including catalog handle resolution).
    CacheProbe,
    /// Planner work: canonicalization, decomposition, engine selection.
    Plan,
    /// Engine execution of the selected plan (parent of `Step` spans).
    Exec,
    /// One step of a composed plan (a join or semijoin, or the final
    /// projection stage).
    Step,
    /// Incremental maintenance triggered by a relation update.
    Maintain,
    /// Rendering the response string.
    Serialize,
}

impl Stage {
    /// Stable lowercase name used in exports and rendered trees.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Parse => "parse",
            Stage::QueueWait => "queue-wait",
            Stage::CacheProbe => "cache-probe",
            Stage::Plan => "plan",
            Stage::Exec => "exec",
            Stage::Step => "step",
            Stage::Maintain => "maintain",
            Stage::Serialize => "serialize",
        }
    }
}

/// Propagation context: which trace the current thread is contributing
/// to, and which span is the current parent. `Copy` so it can cross
/// queue and task boundaries by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// Trace id (nonzero).
    pub trace: u64,
    /// Span id new child spans attach under.
    pub parent: u64,
}

/// One recorded span. Times are nanoseconds since the owning
/// [`Tracer`]'s epoch (a process-lifetime `Instant`), so spans from
/// different threads share one monotonic timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique (process-wide) span id.
    pub id: u64,
    /// Parent span id; 0 for the root.
    pub parent: u64,
    /// Stage kind.
    pub stage: Stage,
    /// Free-form detail ("join v2", the command line, ...).
    pub label: Cow<'static, str>,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A finished trace: the root span plus everything recorded under it,
/// sorted by start time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Trace id (nonzero).
    pub id: u64,
    /// Root label (typically the request line).
    pub label: String,
    /// All spans including the root (`parent == 0`).
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span, if the trace recorded one (it always does for
    /// traces finished through the public API).
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Total duration in nanoseconds (root span duration).
    pub fn total_ns(&self) -> u64 {
        self.root().map(|s| s.dur_ns).unwrap_or(0)
    }

    /// Renders the span tree with per-stage durations, e.g. for the
    /// slow-query log:
    ///
    /// ```text
    /// trace 7 "query chain R S T" total 1840us
    ///   queue-wait                 12us
    ///   parse                       1us
    ///   cache-probe                 4us
    ///   plan                       55us
    ///   exec                     1700us
    ///     step join v1            900us
    ///     step join v2 (final)    760us
    ///   serialize                   9us
    /// ```
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} {:?} total {}us\n",
            self.id,
            self.label,
            self.total_ns() / 1_000
        );
        // Children grouped by parent, already in start order because
        // `spans` is sorted by start time.
        let mut children: HashMap<u64, Vec<&Span>> = HashMap::new();
        for s in &self.spans {
            children.entry(s.parent).or_default().push(s);
        }
        fn walk(out: &mut String, children: &HashMap<u64, Vec<&Span>>, id: u64, depth: usize) {
            if let Some(kids) = children.get(&id) {
                for s in kids {
                    let name = if s.label.is_empty() || s.stage == Stage::Request {
                        s.stage.name().to_string()
                    } else {
                        format!("{} {}", s.stage.name(), s.label)
                    };
                    out.push_str(&format!(
                        "{}{:<28} {:>8}us  @+{}us\n",
                        "  ".repeat(depth),
                        name,
                        s.dur_ns / 1_000,
                        s.start_ns / 1_000,
                    ));
                    walk(out, children, s.id, depth + 1);
                }
            }
        }
        if let Some(root) = self.root() {
            walk(&mut out, &children, root.id, 1);
        }
        out
    }
}

/// A trace still being assembled.
#[derive(Debug)]
struct OpenTrace {
    label: String,
    root_id: u64,
    start: Instant,
    spans: Vec<Span>,
}

#[derive(Debug)]
struct Store {
    open: HashMap<u64, OpenTrace>,
    finished: VecDeque<Trace>,
    capacity: usize,
}

/// Upper bound on concurrently-open traces; past it, new mints are
/// refused so an abandoned `start` can never leak unboundedly.
const MAX_OPEN: usize = 1024;

/// Finished traces retained for `trace last [n]` by default.
const DEFAULT_CAPACITY: usize = 64;

/// Process-wide trace collector. All layers talk to [`Tracer::global`];
/// separate instances exist only for tests.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    sample_every: AtomicU64,
    sample_counter: AtomicU64,
    next_id: AtomicU64,
    epoch: Instant,
    store: Mutex<Store>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(1),
            sample_counter: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            store: Mutex::new(Store {
                open: HashMap::new(),
                finished: VecDeque::new(),
                capacity: DEFAULT_CAPACITY,
            }),
        }
    }

    /// The shared process-wide tracer.
    pub fn global() -> &'static Tracer {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        GLOBAL.get_or_init(Tracer::new)
    }

    /// Whether tracing is on. This is the *only* check on the disabled
    /// fast path: a single relaxed atomic load.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns span capture on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Trace every `n`-th request (1 = every request, the default).
    /// `n == 0` is treated as 1.
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    /// How many finished traces to retain for `trace last`.
    pub fn set_capacity(&self, n: usize) {
        let mut store = self.lock();
        store.capacity = n.max(1);
        while store.finished.len() > store.capacity {
            store.finished.pop_front();
        }
    }

    /// Drops all open and finished traces.
    pub fn clear(&self) {
        let mut store = self.lock();
        store.open.clear();
        store.finished.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn mint_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the tracer epoch for `t` (saturating).
    fn since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Mints a detached trace: registers an open trace and returns the
    /// ctx to carry across threads (e.g. through the net admission
    /// queue). Returns `None` when tracing is off, the request is not
    /// sampled, or too many traces are already open. Pair with
    /// [`Tracer::finish`] (or [`Tracer::discard`]).
    pub fn start(&self, label: &str) -> Option<Ctx> {
        if !self.enabled() {
            return None;
        }
        let every = self.sample_every.load(Ordering::Relaxed);
        if !self
            .sample_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
        {
            return None;
        }
        self.start_forced(label)
    }

    /// Like [`Tracer::start`] but bypasses sampling (still a no-op when
    /// tracing is disabled). Used by the slow-query path, which wants
    /// every request traced once a threshold is configured.
    pub fn start_forced(&self, label: &str) -> Option<Ctx> {
        if !self.enabled() {
            return None;
        }
        let trace = self.mint_id();
        let root_id = self.mint_id();
        let mut store = self.lock();
        if store.open.len() >= MAX_OPEN {
            return None;
        }
        store.open.insert(
            trace,
            OpenTrace {
                label: truncate(label, 120),
                root_id,
                start: Instant::now(),
                spans: Vec::new(),
            },
        );
        Some(Ctx {
            trace,
            parent: root_id,
        })
    }

    /// Closes a detached trace: records the root span (whole lifetime
    /// since [`Tracer::start`]) and moves it to the finished ring.
    pub fn finish(&self, ctx: Ctx) {
        let end = Instant::now();
        let mut store = self.lock();
        let Some(open) = store.open.remove(&ctx.trace) else {
            return;
        };
        let start_ns = self.since_epoch(open.start);
        let dur_ns = self.since_epoch(end).saturating_sub(start_ns);
        let mut spans = open.spans;
        spans.push(Span {
            id: open.root_id,
            parent: 0,
            stage: Stage::Request,
            label: Cow::Owned(open.label.clone()),
            start_ns,
            dur_ns,
        });
        spans.sort_by_key(|s| s.start_ns);
        let trace = Trace {
            id: ctx.trace,
            label: open.label,
            spans,
        };
        if store.finished.len() >= store.capacity {
            store.finished.pop_front();
        }
        store.finished.push_back(trace);
    }

    /// Abandons an open trace without recording it.
    pub fn discard(&self, ctx: Ctx) {
        self.lock().open.remove(&ctx.trace);
    }

    /// RAII version of start/finish for same-thread request loops (the
    /// REPL, benches): installs the ctx in the current thread and
    /// finishes the trace on drop.
    pub fn begin(&'static self, label: &str) -> Option<RootGuard> {
        let ctx = self.start(label)?;
        Some(RootGuard {
            tracer: self,
            ctx,
            prev: set_current(Some(ctx)),
        })
    }

    /// [`Tracer::begin`] minus sampling, for the slow-query path.
    pub fn begin_forced(&'static self, label: &str) -> Option<RootGuard> {
        let ctx = self.start_forced(label)?;
        Some(RootGuard {
            tracer: self,
            ctx,
            prev: set_current(Some(ctx)),
        })
    }

    /// Appends a finished span to an open trace. Spans arriving after
    /// their trace finished (e.g. a straggler task) are dropped.
    pub fn record(&self, ctx: Ctx, stage: Stage, label: Cow<'static, str>, start: Instant) {
        let end = Instant::now();
        self.record_range(ctx, stage, label, start, end);
    }

    /// Records a span with an explicit `[start, end]` range — used for
    /// retroactive spans like queue wait, where the interval is known
    /// only once the job is dequeued.
    pub fn record_range(
        &self,
        ctx: Ctx,
        stage: Stage,
        label: Cow<'static, str>,
        start: Instant,
        end: Instant,
    ) {
        let id = self.mint_id();
        self.record_span(ctx, id, stage, label, start, end);
    }

    /// Records a span under a pre-minted id (span guards mint their id
    /// up front so children can attach beneath them while they are
    /// still open).
    fn record_span(
        &self,
        ctx: Ctx,
        id: u64,
        stage: Stage,
        label: Cow<'static, str>,
        start: Instant,
        end: Instant,
    ) {
        let start_ns = self.since_epoch(start);
        let dur_ns = self.since_epoch(end).saturating_sub(start_ns);
        let mut store = self.lock();
        if let Some(open) = store.open.get_mut(&ctx.trace) {
            open.spans.push(Span {
                id,
                parent: ctx.parent,
                stage,
                label,
                start_ns,
                dur_ns,
            });
        }
    }

    /// The most recent `n` finished traces, oldest first.
    pub fn last(&self, n: usize) -> Vec<Trace> {
        let store = self.lock();
        let skip = store.finished.len().saturating_sub(n);
        store.finished.iter().skip(skip).cloned().collect()
    }

    /// Snapshot of one trace by id — finished, or still open. For an
    /// open trace the root span is synthesized with its duration so
    /// far, so the snapshot renders as a complete tree (the slow-query
    /// log reads in-flight traces whose root the front end still owns).
    pub fn spans_of(&self, trace_id: u64) -> Option<Trace> {
        let now = Instant::now();
        let store = self.lock();
        if let Some(t) = store.finished.iter().rev().find(|t| t.id == trace_id) {
            return Some(t.clone());
        }
        store.open.get(&trace_id).map(|open| {
            let mut spans = open.spans.clone();
            let start_ns = self.since_epoch(open.start);
            spans.push(Span {
                id: open.root_id,
                parent: 0,
                stage: Stage::Request,
                label: Cow::Owned(open.label.clone()),
                start_ns,
                dur_ns: self.since_epoch(now).saturating_sub(start_ns),
            });
            spans.sort_by_key(|s| s.start_ns);
            Trace {
                id: trace_id,
                label: open.label.clone(),
                spans,
            }
        })
    }
}

/// Exports traces as Chrome trace-event JSON (the `chrome://tracing` /
/// Perfetto format): complete events (`"ph":"X"`) with microsecond
/// timestamps, one `tid` row per trace.
pub fn chrome_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for t in traces {
        for s in &t.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let name = if s.label.is_empty() || s.parent == 0 {
                s.stage.name().to_string()
            } else {
                format!("{} {}", s.stage.name(), s.label)
            };
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\
                 \"label\":{}}}}}",
                json_string(&name),
                s.stage.name(),
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                t.id,
                t.id,
                s.id,
                s.parent,
                json_string(&s.label),
            ));
        }
    }
    out.push_str("]}");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &s[..cut])
    }
}

// ---------------------------------------------------------------------------
// Thread-local propagation
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT: Cell<Option<Ctx>> = const { Cell::new(None) };
}

/// The ctx installed in the current thread, if any.
pub fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.get())
}

/// Installs `ctx` (or clears it with `None`), returning the previous
/// value so callers can restore it.
pub fn set_current(ctx: Option<Ctx>) -> Option<Ctx> {
    CURRENT.with(|c| c.replace(ctx))
}

/// `current()`, but gated on the global tracer being enabled so the
/// disabled path skips the thread-local read entirely. This is what
/// queue producers call to decide whether a job should carry a ctx.
#[inline]
pub fn current_if_enabled() -> Option<Ctx> {
    if Tracer::global().enabled() {
        current()
    } else {
        None
    }
}

/// RAII ctx installation that restores the previous ctx on drop — drop
/// order makes this panic-safe, so a panicking task cannot leave a
/// stale ctx in a pool worker's thread-local.
#[derive(Debug)]
pub struct Installed(Option<Ctx>);

/// Installs `ctx` for the lifetime of the returned guard.
pub fn install(ctx: Option<Ctx>) -> Installed {
    Installed(set_current(ctx))
}

impl Drop for Installed {
    fn drop(&mut self) {
        set_current(self.0);
    }
}

/// Guard for a root span created by [`Tracer::begin`]; finishes the
/// trace and restores the previous ctx on drop.
#[derive(Debug)]
pub struct RootGuard {
    tracer: &'static Tracer,
    ctx: Ctx,
    prev: Option<Ctx>,
}

impl RootGuard {
    /// The ctx of the trace this guard owns.
    pub fn ctx(&self) -> Ctx {
        self.ctx
    }
}

impl Drop for RootGuard {
    fn drop(&mut self) {
        set_current(self.prev);
        self.tracer.finish(self.ctx);
    }
}

// ---------------------------------------------------------------------------
// Span sites
// ---------------------------------------------------------------------------

/// Live state of an active [`SpanGuard`].
#[derive(Debug)]
struct ActiveSpan {
    ctx: Ctx,
    id: u64,
    stage: Stage,
    label: Cow<'static, str>,
    start: Instant,
}

/// RAII span: records `[creation, drop]` under the current ctx. Inert
/// (a `None`) when tracing is disabled or no ctx is installed.
#[derive(Debug)]
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            // Restore the parent for siblings recorded after us.
            set_current(Some(active.ctx));
            Tracer::global().record_span(
                active.ctx,
                active.id,
                active.stage,
                active.label,
                active.start,
                Instant::now(),
            );
        }
    }
}

fn open_span(stage: Stage, label: Cow<'static, str>) -> SpanGuard {
    // `current()` is only consulted after the atomic gate passed.
    let Some(ctx) = current() else {
        return SpanGuard(None);
    };
    let id = Tracer::global().mint_id();
    // Children created while this guard lives nest under it.
    set_current(Some(Ctx {
        trace: ctx.trace,
        parent: id,
    }));
    SpanGuard(Some(ActiveSpan {
        ctx,
        id,
        stage,
        label,
        start: Instant::now(),
    }))
}

/// Opens a span under the current thread's ctx. The disabled path is
/// one atomic load; the label is a static string so no allocation
/// happens either way.
#[inline]
pub fn span(stage: Stage, label: &'static str) -> SpanGuard {
    if !Tracer::global().enabled() {
        return SpanGuard(None);
    }
    open_span(stage, Cow::Borrowed(label))
}

/// Like [`span`] but with a lazily-built label: the closure only runs
/// when the span is actually recorded.
#[inline]
pub fn span_dyn(stage: Stage, label: impl FnOnce() -> String) -> SpanGuard {
    if !Tracer::global().enabled() {
        return SpanGuard(None);
    }
    if current().is_none() {
        return SpanGuard(None);
    }
    open_span(stage, Cow::Owned(label()))
}

/// Records a retroactive span `[start, now]` under `ctx` — for
/// intervals that are only known after the fact, like queue wait.
#[inline]
pub fn span_at(ctx: Option<Ctx>, stage: Stage, label: &'static str, start: Instant) {
    let Some(ctx) = ctx else { return };
    let tracer = Tracer::global();
    if !tracer.enabled() {
        return;
    }
    tracer.record(ctx, stage, Cow::Borrowed(label), start);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The global tracer is process-wide; tests that toggle it must not
    // interleave.
    static GLOBAL_LOCK: StdMutex<()> = StdMutex::new(());

    fn with_global<R>(f: impl FnOnce() -> R) -> R {
        let _g = GLOBAL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let tracer = Tracer::global();
        tracer.clear();
        tracer.set_sample_every(1);
        tracer.set_enabled(true);
        let out = f();
        tracer.set_enabled(false);
        tracer.clear();
        set_current(None);
        out
    }

    #[test]
    fn disabled_tracer_mints_nothing() {
        let t = Tracer::new();
        assert!(t.start("x").is_none());
        assert!(t.last(10).is_empty());
    }

    #[test]
    fn root_and_children_nest() {
        with_global(|| {
            let tracer = Tracer::global();
            let ctx = {
                let root = tracer.begin("query chain R S T").unwrap();
                {
                    let _plan = span(Stage::Plan, "");
                    let _step = span(Stage::Step, "inner");
                }
                let _ser = span(Stage::Serialize, "");
                root.ctx()
            };
            let traces = tracer.last(10);
            assert_eq!(traces.len(), 1);
            let t = &traces[0];
            assert_eq!(t.id, ctx.trace);
            let root = t.root().expect("root span");
            assert_eq!(root.stage, Stage::Request);
            let plan = t.spans.iter().find(|s| s.stage == Stage::Plan).unwrap();
            let step = t.spans.iter().find(|s| s.stage == Stage::Step).unwrap();
            let ser = t
                .spans
                .iter()
                .find(|s| s.stage == Stage::Serialize)
                .unwrap();
            // Nesting: plan and serialize under root, step under plan.
            assert_eq!(plan.parent, root.id);
            assert_eq!(ser.parent, root.id);
            assert_eq!(step.parent, plan.id);
            // Children fit inside their parents on the timeline.
            assert!(step.start_ns >= plan.start_ns);
            assert!(plan.dur_ns <= root.dur_ns);
            // Sibling durations sum to at most the root duration.
            assert!(plan.dur_ns + ser.dur_ns <= root.dur_ns);
        });
    }

    #[test]
    fn detached_start_finish_round_trips() {
        with_global(|| {
            let tracer = Tracer::global();
            let ctx = tracer.start("wire request").unwrap();
            // Simulate the queue hop: record a retroactive wait span.
            let t0 = Instant::now();
            span_at(Some(ctx), Stage::QueueWait, "net-queue", t0);
            // Worker installs the ctx and records a child.
            let _inst = install(Some(ctx));
            {
                let _exec = span(Stage::Exec, "");
            }
            drop(_inst);
            tracer.finish(ctx);
            let t = tracer.spans_of(ctx.trace).unwrap();
            assert!(t.spans.iter().any(|s| s.stage == Stage::QueueWait));
            assert!(t.spans.iter().any(|s| s.stage == Stage::Exec));
            assert_eq!(t.root().unwrap().label, "wire request");
        });
    }

    #[test]
    fn open_trace_snapshot_synthesizes_root() {
        with_global(|| {
            let tracer = Tracer::global();
            let ctx = tracer.start("query twopath R R").unwrap();
            let inst = install(Some(ctx));
            {
                let _plan = span(Stage::Plan, "select-engine");
            }
            drop(inst);
            // Still open: the snapshot must carry a synthetic root so
            // the slow-query log renders a full tree for in-flight
            // requests, not an empty header.
            let t = tracer.spans_of(ctx.trace).unwrap();
            let root = t.root().expect("synthesized root span");
            assert_eq!(root.stage, Stage::Request);
            assert_eq!(t.label, "query twopath R R");
            let rendered = t.render();
            assert!(rendered.contains("plan select-engine"), "{rendered}");
            tracer.finish(ctx);
        });
    }

    #[test]
    fn sampling_traces_every_nth() {
        with_global(|| {
            let tracer = Tracer::global();
            tracer.set_sample_every(3);
            let minted: usize = (0..9).filter(|_| tracer.begin("x").is_some()).count();
            assert_eq!(minted, 3);
            tracer.set_sample_every(1);
        });
    }

    #[test]
    fn ring_capacity_is_bounded() {
        with_global(|| {
            let tracer = Tracer::global();
            tracer.set_capacity(4);
            for i in 0..10 {
                drop(tracer.begin(&format!("q{i}")));
            }
            let last = tracer.last(100);
            assert_eq!(last.len(), 4);
            assert_eq!(last[3].label, "q9");
            tracer.set_capacity(DEFAULT_CAPACITY);
        });
    }

    #[test]
    fn late_spans_after_finish_are_dropped() {
        with_global(|| {
            let tracer = Tracer::global();
            let ctx = tracer.start("r").unwrap();
            tracer.finish(ctx);
            tracer.record(ctx, Stage::Exec, Cow::Borrowed("late"), Instant::now());
            let t = tracer.spans_of(ctx.trace).unwrap();
            assert_eq!(t.spans.len(), 1); // just the root
        });
    }

    #[test]
    fn chrome_export_is_escaped_and_complete() {
        with_global(|| {
            let tracer = Tracer::global();
            {
                let _root = tracer.begin("line \"with\" quotes\n").unwrap();
                let _s = span(Stage::Parse, "");
            }
            let json = chrome_json(&tracer.last(1));
            assert!(json.starts_with('{') && json.ends_with('}'));
            assert!(json.contains("\"traceEvents\":["));
            assert!(json.contains("\\\"with\\\""));
            assert!(json.contains("\"ph\":\"X\""));
            assert!(json.contains("\"cat\":\"parse\""));
            // No raw newline survives inside the JSON.
            assert!(!json.contains('\n'));
        });
    }

    #[test]
    fn render_tree_shows_stages() {
        with_global(|| {
            let tracer = Tracer::global();
            {
                let _root = tracer.begin("query twopath R R").unwrap();
                let _p = span(Stage::Plan, "");
            }
            let t = &tracer.last(1)[0];
            let tree = t.render();
            assert!(tree.contains("query twopath R R"));
            assert!(tree.contains("plan"));
        });
    }

    #[test]
    fn installed_guard_restores_on_drop() {
        let prev = set_current(None);
        let a = Ctx {
            trace: 1,
            parent: 2,
        };
        let b = Ctx {
            trace: 3,
            parent: 4,
        };
        set_current(Some(a));
        {
            let _g = install(Some(b));
            assert_eq!(current(), Some(b));
        }
        assert_eq!(current(), Some(a));
        set_current(prev);
    }
}
