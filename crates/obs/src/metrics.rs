//! Unified metrics: named atomic counters and gauges plus log-bucketed
//! histograms, collected in a [`Registry`].
//!
//! The [`Histogram`] replaces fixed-size sample rings: it covers
//! **all-time** samples in constant memory by bucketing values
//! log-linearly (8 sub-buckets per power-of-two octave). Quantiles are
//! approximate with a bounded relative error of at most 1/16 (6.25%) —
//! a bucket's midpoint is reported — while `count`, `sum` (hence the
//! mean), and `max` are exact. Buckets are atomics, so recording is
//! lock-free and per-shard histograms [`merge`](Histogram::merge)
//! losslessly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Back to zero (registration survives; see [`Registry::reset`]).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins atomic gauge with a high-water helper.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Back to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Sub-buckets per power-of-two octave: values below 8 get exact
/// buckets; from 8 up, each octave `[2^k, 2^(k+1))` splits into 8.
const SUB: u64 = 8;
/// log2(SUB).
const SUB_BITS: u32 = 3;
/// Octaves 3..=63 at 8 buckets each, plus the 8 exact small buckets.
const BUCKETS: usize = (64 - SUB_BITS as usize) * SUB as usize + SUB as usize;

/// Maps a value to its bucket index.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS)) & (SUB - 1);
        (((octave - SUB_BITS) as u64 + 1) * SUB + sub) as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB {
        (i, i)
    } else {
        let octave = (i / SUB - 1) as u32 + SUB_BITS;
        let sub = i % SUB;
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (SUB + sub) << (octave - SUB_BITS);
        // `lo + (width - 1)`: the top bucket ends exactly at u64::MAX,
        // so adding `width` first would overflow.
        (lo, lo + (width - 1))
    }
}

/// Log-linear (HDR-style) histogram over `u64` samples.
///
/// Memory is a flat array of `BUCKETS` atomic counters (~4 KiB);
/// recording is two relaxed `fetch_add`s plus a `fetch_max`. Quantiles
/// report the midpoint of the bucket containing the rank, so for any
/// quantile `q`: `|approx(q) - exact(q)| <= exact(q) / 16 + 1`.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded (exact).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of all samples, rounded (exact: `sum / count`).
    pub fn mean(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            (self.sum() as f64 / n as f64).round() as u64
        }
    }

    /// Approximate `q`-quantile over **all** recorded samples
    /// (nearest-rank; bucket-midpoint, relative error ≤ 1/16).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let (lo, hi) = bucket_range(i);
                return lo.midpoint(hi).min(self.max());
            }
        }
        self.max()
    }

    /// Adds all of `other`'s samples into `self` (lossless: buckets are
    /// aligned by construction). Used to combine per-shard histograms.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c != 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Zeroes every bucket and aggregate.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p99: self.quantile(0.99),
        }
    }
}

/// Summary of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded (exact).
    pub count: u64,
    /// Sum of samples (exact).
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Exact mean (`sum / count`, rounded).
    pub mean: u64,
    /// All-time median (bucket-midpoint approximation).
    pub p50: u64,
    /// All-time 99th percentile (bucket-midpoint approximation).
    pub p99: u64,
}

/// One registered metric's current value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named metric registry. Registration is get-or-create by name, so
/// independent components can share an instrument; values live in
/// `Arc`s that callers cache, keeping the hot path free of the
/// registry lock.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.read().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Gets or registers the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Zeroes every instrument while keeping all registrations (and
    /// every cached `Arc` handle) valid — `stats reset`.
    pub fn reset(&self) {
        for metric in self.read().values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Name-sorted snapshot of every instrument.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        self.read()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        // Every value below SUB and every octave boundary maps to a
        // bucket whose range contains it; below SUB the range is exact.
        for v in 0..SUB {
            assert_eq!(bucket_range(bucket_index(v)), (v, v));
        }
        for octave in SUB_BITS..63 {
            for v in [1u64 << octave, (1u64 << (octave + 1)) - 1] {
                let (lo, hi) = bucket_range(bucket_index(v));
                assert!(lo <= v && v <= hi, "v={v} not in [{lo},{hi}]");
            }
        }
    }

    #[test]
    fn bucket_ranges_tile_the_line() {
        // Consecutive buckets abut exactly: hi(i) + 1 == lo(i+1), all
        // the way to the last bucket (which ends at u64::MAX).
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_range(i);
            let (lo_next, _) = bucket_range(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between bucket {i} and {}", i + 1);
        }
        assert_eq!(bucket_range(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        // Bucket midpoint is within 1/16 of any member of the bucket.
        for i in SUB as usize..BUCKETS - 1 {
            let (lo, hi) = bucket_range(i);
            let mid = lo.midpoint(hi);
            let half_width = (hi - lo).div_ceil(2);
            assert!(
                half_width as f64 <= lo as f64 / 16.0 + 1.0,
                "bucket {i} [{lo},{hi}] mid {mid} too wide"
            );
        }
    }

    #[test]
    fn quantiles_match_sorted_reference_within_bound() {
        // Deterministic LCG; no external rand needed here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        for i in 0..10_000u64 {
            // Mix of scales: small exact values, mid-range, heavy tail.
            let v = match i % 3 {
                0 => next() % 16,
                1 => next() % 10_000,
                _ => next() % 10_000_000,
            };
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let exact_sum: u64 = samples.iter().sum();
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), exact_sum);
        assert_eq!(h.max(), *samples.last().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
            let exact = samples[rank];
            let approx = h.quantile(q);
            let bound = exact / 16 + 1;
            assert!(
                approx.abs_diff(exact) <= bound,
                "q={q}: approx {approx} vs exact {exact} (bound {bound})"
            );
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let shard_a = Histogram::new();
        let shard_b = Histogram::new();
        let combined = Histogram::new();
        for v in 0..5_000u64 {
            let v = v * 37 % 100_000;
            if v % 2 == 0 {
                shard_a.record(v);
            } else {
                shard_b.record(v);
            }
            combined.record(v);
        }
        let merged = Histogram::new();
        merged.merge(&shard_a);
        merged.merge(&shard_b);
        assert_eq!(merged.count(), combined.count());
        assert_eq!(merged.sum(), combined.sum());
        assert_eq!(merged.max(), combined.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!((s.count, s.mean, s.p50, s.p99, s.max), (0, 0, 0, 0, 0));
    }

    #[test]
    fn registry_shares_and_resets() {
        let r = Registry::new();
        let a = r.counter("service.queries");
        let b = r.counter("service.queries");
        a.add(3);
        assert_eq!(b.get(), 3);
        let g = r.gauge("service.max_queue_depth");
        g.record_max(7);
        g.record_max(4);
        assert_eq!(g.get(), 7);
        let h = r.histogram("service.latency_us");
        h.record(100);
        r.reset();
        // Registrations survive; values are zeroed; old handles live on.
        assert_eq!(a.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        a.inc();
        assert_eq!(r.counter("service.queries").get(), 1);
        assert_eq!(r.snapshot().len(), 3);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
