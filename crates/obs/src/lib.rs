//! # mmjoin-obs — structured tracing and unified metrics
//!
//! Dependency-free observability subsystem shared by every layer of the
//! stack (net → service → planner → executor):
//!
//! - [`trace`]: per-request span trees. A trace id is minted at the
//!   wire/REPL boundary ([`Tracer::begin`] / [`Tracer::start`]) and
//!   propagated through the admission queue, the service worker pool,
//!   plan-compose wavefronts, and executor task grants via a
//!   thread-local [`Ctx`]. Finished traces export as Chrome trace-event
//!   JSON (load in `chrome://tracing` or Perfetto).
//! - [`metrics`]: named atomic counters/gauges plus log-bucketed
//!   [`Histogram`]s whose p50/p99 cover **all-time** samples (replacing
//!   sliding-window rings) within a documented relative-error bound.
//!
//! ## Overhead contract
//!
//! Tracing must be safe to leave compiled into every hot path:
//!
//! - **Disabled** (the default): every span site is a single relaxed
//!   atomic load ([`Tracer::enabled`]) returning an inert guard. No
//!   thread-local access, no clock read, no allocation, no lock.
//! - **Enabled**: span capture takes two `Instant` reads and one mutex
//!   push per span; sampling ([`Tracer::set_sample_every`]) bounds the
//!   fraction of requests that pay it.
//!
//! The `service` bench measures both sides of the contract and `--gate`
//! enforces the disabled bound (≤ 5% of per-query time).

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, Registry};
pub use trace::{
    current, install, set_current, span, span_at, span_dyn, Ctx, Installed, RootGuard, Span,
    SpanGuard, Stage, Trace, Tracer,
};
