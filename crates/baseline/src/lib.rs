//! Baseline join-project engines.
//!
//! Figure 4 of the paper compares `MMJoin` against PostgreSQL, MySQL, a
//! commercial "System X", EmptyHeaded, and the combinatorial
//! output-sensitive join of Lemma 2 ("Non-MMJoin"). Relational DBMSs and
//! EmptyHeaded are closed substrates we cannot ship, so this crate
//! re-implements *the query plans those systems execute* (verified in §7.2:
//! hash join or merge join followed by deduplication; set-intersection
//! trie plans for EmptyHeaded), which is the computationally relevant
//! behaviour. See DESIGN.md "Substitutions".
//!
//! * [`fulljoin::HashJoinEngine`] — hash join + hash-set dedup (the
//!   PostgreSQL plan).
//! * [`fulljoin::SortMergeEngine`] — merge join + sort dedup (the MySQL
//!   plan).
//! * [`fulljoin::SystemXEngine`] — hash join + pre-sized dedup table (the
//!   marginally better commercial engine).
//! * [`setintersect::SetIntersectEngine`] — EmptyHeaded-style plan built on
//!   adaptive sorted-set intersections.
//! * [`nonmm::ExpandDedupEngine`] — the Lemma-2 combinatorial
//!   output-sensitive algorithm (the paper's `Non-MMJoin` series), serial
//!   and parallel.
//! * [`star`] — the same baselines generalised to star queries `Q*_k`.
//!
//! Every engine here implements the unified
//! [`Engine`](mmjoin_api::Engine) trait (see [`engine_impl`]) and is
//! registered in the default [`EngineRegistry`](mmjoin_api::EngineRegistry)
//! assembled by the service layer — callers should go through that front
//! door. The raw algorithms remain reachable as inherent methods
//! (`HashJoinEngine::join_project`, …) for callers that want the sorted
//! distinct `Vec` without the engine machinery.

pub mod engine_impl;
pub mod fulljoin;
pub mod nonmm;
pub mod setintersect;
pub mod star;
