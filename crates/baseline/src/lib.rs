//! Baseline join-project engines.
//!
//! Figure 4 of the paper compares `MMJoin` against PostgreSQL, MySQL, a
//! commercial "System X", EmptyHeaded, and the combinatorial
//! output-sensitive join of Lemma 2 ("Non-MMJoin"). Relational DBMSs and
//! EmptyHeaded are closed substrates we cannot ship, so this crate
//! re-implements *the query plans those systems execute* (verified in §7.2:
//! hash join or merge join followed by deduplication; set-intersection
//! trie plans for EmptyHeaded), which is the computationally relevant
//! behaviour. See DESIGN.md "Substitutions".
//!
//! * [`fulljoin::HashJoinEngine`] — hash join + hash-set dedup (the
//!   PostgreSQL plan).
//! * [`fulljoin::SortMergeEngine`] — merge join + sort dedup (the MySQL
//!   plan).
//! * [`fulljoin::SystemXEngine`] — hash join + pre-sized dedup table (the
//!   marginally better commercial engine).
//! * [`setintersect::SetIntersectEngine`] — EmptyHeaded-style plan built on
//!   adaptive sorted-set intersections.
//! * [`nonmm::ExpandDedupEngine`] — the Lemma-2 combinatorial
//!   output-sensitive algorithm (the paper's `Non-MMJoin` series), serial
//!   and parallel.
//! * [`star`] — the same baselines generalised to star queries `Q*_k`.

//!
//! Every engine here also implements the unified
//! [`Engine`](mmjoin_api::Engine) trait (see [`engine_impl`]) and is
//! registered in the default [`EngineRegistry`](mmjoin_api::EngineRegistry)
//! assembled by the `mmjoin` facade crate — callers should go through that
//! front door rather than the per-engine traits below.

pub mod engine_impl;
pub mod fulljoin;
pub mod nonmm;
pub mod setintersect;
pub mod star;

use mmjoin_storage::{Relation, Value};

/// A join-project engine for the 2-path query
/// `Q(x, z) = R(x, y), S(z, y)`.
///
/// Implementations must return the **sorted, distinct** result, which makes
/// cross-engine equality assertions trivial (see
/// `tests/cross_engine_agreement.rs`).
///
/// **Transitional:** new call sites should use
/// [`mmjoin_api::Engine::execute`] with
/// [`Query::two_path`](mmjoin_api::Query::two_path); this trait remains as
/// a thin shim while the last direct callers migrate.
pub trait TwoPathEngine {
    /// Human-readable engine name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)>;
}

/// A join-project engine for star queries `Q*_k`.
///
/// **Transitional:** new call sites should use
/// [`mmjoin_api::Engine::execute`] with
/// [`Query::star`](mmjoin_api::Query::star).
pub trait StarEngine {
    /// Human-readable engine name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Evaluates `π_{x1..xk}(R1 ⋈ … ⋈ Rk)`, returning sorted distinct
    /// tuples.
    fn star_join_project(&self, relations: &[Relation]) -> Vec<Vec<Value>>;
}
