//! Full-join + dedup baselines generalised to star queries `Q*_k`.
//!
//! §7.2's star experiment (Figure 4b) reports that every DBMS except
//! EmptyHeaded timed out; the series that remain are `MMJoin` and
//! `Non-MMJoin`. For completeness we still provide the hash-dedup full-join
//! star engine (it is the one that times out) so the experiment driver can
//! run it under a budget and report the timeout honestly.

use mmjoin_storage::{Relation, Value};
use mmjoin_wcoj::star_full_join_for_each;
use std::collections::HashSet;

/// Full star join materialised into a hash set — the DBMS-style plan.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashDedupStarEngine;

impl HashDedupStarEngine {
    /// Evaluates `π_{x1..xk}(R1 ⋈ … ⋈ Rk)`, returning sorted distinct
    /// tuples.
    pub fn star_join_project<R: AsRef<Relation>>(&self, relations: &[R]) -> Vec<Vec<Value>> {
        let mut seen: HashSet<Vec<Value>> = HashSet::new();
        star_full_join_for_each(relations, |_, tuple| {
            seen.insert(tuple.to_vec());
        });
        let mut out: Vec<Vec<Value>> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Reference star engine: the WCOJ enumeration followed by sort+dedup.
/// Used as ground truth in cross-engine tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct SortDedupStarEngine;

impl SortDedupStarEngine {
    /// Evaluates `π_{x1..xk}(R1 ⋈ … ⋈ Rk)`, returning sorted distinct
    /// tuples.
    pub fn star_join_project<R: AsRef<Relation>>(&self, relations: &[R]) -> Vec<Vec<Value>> {
        mmjoin_wcoj::star_join_project(relations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn hash_and_sort_star_agree() {
        let r1 = rel(&[(0, 0), (1, 0), (1, 1)]);
        let r2 = rel(&[(3, 0), (4, 1)]);
        let r3 = rel(&[(7, 0), (7, 1), (8, 1)]);
        let rels = [r1, r2, r3];
        assert_eq!(
            HashDedupStarEngine.star_join_project(&rels),
            SortDedupStarEngine.star_join_project(&rels)
        );
    }

    #[test]
    fn star_k2_matches_pair_engines() {
        use crate::fulljoin::SortMergeEngine;
        let r = rel(&[(0, 0), (1, 1), (2, 0)]);
        let s = rel(&[(5, 0), (6, 1)]);
        let star = HashDedupStarEngine.star_join_project(&[r.clone(), s.clone()]);
        let pairs = SortMergeEngine.join_project(&r, &s);
        let star_as_pairs: Vec<(Value, Value)> = star.iter().map(|t| (t[0], t[1])).collect();
        assert_eq!(star_as_pairs, pairs);
    }
}
