//! Full-join-then-deduplicate engines — the relational-DBMS plans.
//!
//! §7.2 verifies that PostgreSQL and MySQL evaluate the 2-path query with a
//! HashJoin or MergeJoin that materialises the *full* join before
//! `DISTINCT`-ing it. These engines reproduce exactly that: the cost is
//! dominated by `|OUT⋈|` (hash insertions or sort comparisons over the full
//! join), which is why they lose by orders of magnitude on duplicate-heavy
//! data — the effect Figure 4a demonstrates.

use mmjoin_storage::{Relation, Value};
use std::collections::HashSet;

/// Hash join + incremental hash-set dedup: the PostgreSQL plan.
///
/// The build side is the (already indexed) `y → [x]` adjacency of `R`; the
/// probe streams `S`. Every witness pair goes through a `HashSet` insert —
/// including the rehash-on-growth behaviour §6 calls out as a key cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashJoinEngine;

impl HashJoinEngine {
    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    pub fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        // Probe S tuples against R's y-index; dedup incrementally in a
        // growing hash set (deliberately *not* pre-sized: Postgres cannot
        // know |OUT| either).
        let mut seen: HashSet<(Value, Value)> = HashSet::new();
        for &(z, y) in s.edges() {
            if (y as usize) >= r.y_domain() {
                continue;
            }
            for &x in r.xs_of(y) {
                seen.insert((x, z));
            }
        }
        let mut out: Vec<(Value, Value)> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Merge join + sort-based dedup: the MySQL plan.
///
/// Materialises every witness pair into a vector, then sorts and dedups —
/// the "sorting the full join result is expensive" path of §7.2.
#[derive(Debug, Default, Clone, Copy)]
pub struct SortMergeEngine;

impl SortMergeEngine {
    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    pub fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let dom = r.y_domain().min(s.y_domain());
        let mut out: Vec<(Value, Value)> = Vec::new();
        // Merge on y: both CSR indexes iterate y in ascending order.
        for y in 0..dom as Value {
            let xs = r.xs_of(y);
            if xs.is_empty() {
                continue;
            }
            let zs = s.xs_of(y);
            for &x in xs {
                for &z in zs {
                    out.push((x, z));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Hash join with a pre-sized dedup table: the "System X" commercial engine,
/// marginally better than [`HashJoinEngine`] because it reserves capacity
/// from its cardinality estimate and avoids rehashing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemXEngine;

impl SystemXEngine {
    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    pub fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let estimate = r.full_join_size(s).min(16_000_000) as usize;
        let mut seen: HashSet<(Value, Value)> = HashSet::with_capacity(estimate);
        for &(z, y) in s.edges() {
            if (y as usize) >= r.y_domain() {
                continue;
            }
            for &x in r.xs_of(y) {
                seen.insert((x, z));
            }
        }
        let mut out: Vec<(Value, Value)> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_api::{Engine, PairSink, Query};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn all_engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(HashJoinEngine),
            Box::new(SortMergeEngine),
            Box::new(SystemXEngine),
        ]
    }

    fn run(e: &dyn Engine, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let q = Query::two_path(r, s).build().unwrap();
        let mut sink = PairSink::new();
        e.execute(&q, &mut sink).unwrap();
        sink.pairs
    }

    #[test]
    fn engines_agree_on_small_instance() {
        let r = rel(&[(0, 0), (1, 0), (2, 1), (2, 0)]);
        let s = rel(&[(5, 0), (6, 1), (7, 2)]);
        let expected = vec![(0, 5), (1, 5), (2, 5), (2, 6)];
        for e in all_engines() {
            assert_eq!(run(e.as_ref(), &r, &s), expected, "{}", e.name());
        }
    }

    #[test]
    fn duplicates_collapsed() {
        // (0, 9) has witnesses y=0,1,2.
        let r = rel(&[(0, 0), (0, 1), (0, 2)]);
        let s = rel(&[(9, 0), (9, 1), (9, 2)]);
        for e in all_engines() {
            assert_eq!(run(e.as_ref(), &r, &s), vec![(0, 9)], "{}", e.name());
        }
    }

    #[test]
    fn empty_inputs() {
        let r = rel(&[]);
        let s = rel(&[(0, 0)]);
        for e in all_engines() {
            assert!(run(e.as_ref(), &r, &s).is_empty(), "{}", e.name());
            assert!(run(e.as_ref(), &s, &r).is_empty(), "{}", e.name());
        }
    }

    #[test]
    fn mismatched_y_domains() {
        let r = rel(&[(0, 100)]);
        let s = rel(&[(1, 100), (2, 5)]);
        for e in all_engines() {
            assert_eq!(run(e.as_ref(), &r, &s), vec![(0, 1)], "{}", e.name());
        }
    }

    #[test]
    fn self_join_two_path() {
        // Friend-of-friend on a tiny graph (Example 1 shape).
        let r = rel(&[(0, 0), (1, 0), (1, 1), (2, 1)]);
        let expected = vec![(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)];
        for e in all_engines() {
            assert_eq!(run(e.as_ref(), &r, &r), expected, "{}", e.name());
        }
    }
}
