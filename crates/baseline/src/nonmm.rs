//! The combinatorial output-sensitive join of Lemma 2 — the paper's
//! `Non-MMJoin` comparison series.
//!
//! Lemma 2 ([11], Amossen–Pagh) evaluates `Q*_k` in
//! `O(|D| · |OUT|^{1-1/k})` with purely combinatorial means. For the 2-path
//! query the algorithm partitions the join variable by degree with threshold
//! `Δ ≈ √|OUT|`:
//!
//! * **light `y`** (degree ≤ Δ in `S`): expanding `L_R[y] × L_S[y]` pairs
//!   grouped by `x` costs at most `|OUT| · Δ` and deduplicates with the
//!   dense per-`x` scratch buffer;
//! * **heavy `y`** (at most `N/Δ` of them): for each `x`, the heavy `y`s it
//!   touches are merged (their `S`-lists unioned) through the same buffer —
//!   each `x` pays `Σ_heavy |L_S[y]|`, bounded by `N/Δ · √|OUT|` overall.
//!
//! Both phases share the per-`x` grouping, so the practical implementation
//! below is one pass per active `x` over all its `y` lists with the
//! epoch-stamped dedup buffer — what the paper's prototype actually runs —
//! plus an explicit sort-based alternative chosen by the §6 heuristic.

use mmjoin_executor::Executor;
use mmjoin_storage::dedup::sort_dedup;
use mmjoin_storage::{DedupBuffer, Relation, Value};
use mmjoin_wcoj::{star_full_join_for_each, ProjectionAccumulator};

/// The Lemma-2 combinatorial output-sensitive engine (`Non-MMJoin`).
#[derive(Debug, Clone)]
pub struct ExpandDedupEngine {
    /// Worker threads (1 = serial). Parallelism partitions active `x`
    /// values; each worker owns a private dedup buffer, so no coordination
    /// is needed (x-groups are disjoint).
    pub threads: usize,
    /// The executor the parallel partitions run on; `None` uses the
    /// process-global pool. Services install theirs so one budget
    /// governs this engine too (see [`ExpandDedupEngine::on_executor`]).
    pub executor: Option<std::sync::Arc<Executor>>,
}

impl Default for ExpandDedupEngine {
    fn default() -> Self {
        Self::serial()
    }
}

impl ExpandDedupEngine {
    /// Serial engine.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            executor: None,
        }
    }

    /// Parallel engine on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            executor: None,
        }
    }

    /// Pins the engine's parallel work to `exec` instead of the
    /// process-global pool.
    pub fn on_executor(mut self, exec: std::sync::Arc<Executor>) -> Self {
        self.executor = Some(exec);
        self
    }

    fn exec(&self) -> &Executor {
        match &self.executor {
            Some(exec) => exec,
            None => Executor::global(),
        }
    }

    /// Expands one `x` group through `S`'s inverted lists, appending fresh
    /// `(x, z)` pairs to `out`.
    fn expand_group(
        x: Value,
        ys: &[Value],
        s: &Relation,
        dedup: &mut DedupBuffer,
        scratch: &mut Vec<Value>,
        out: &mut Vec<(Value, Value)>,
    ) {
        // §6 strategy choice: dense random-access buffer vs append+sort.
        let expansion: usize = ys
            .iter()
            .map(|&y| {
                if (y as usize) < s.y_domain() {
                    s.xs_of(y).len()
                } else {
                    0
                }
            })
            .sum();
        if expansion == 0 {
            return;
        }
        if expansion <= dedup.sort_strategy_threshold() / 4 {
            // Sort strategy: cheap when the group is small relative to the
            // domain (avoids cold random access into the big buffer).
            scratch.clear();
            for &y in ys {
                if (y as usize) < s.y_domain() {
                    scratch.extend_from_slice(s.xs_of(y));
                }
            }
            sort_dedup(scratch);
            out.extend(scratch.iter().map(|&z| (x, z)));
        } else {
            dedup.clear();
            for &y in ys {
                if (y as usize) >= s.y_domain() {
                    continue;
                }
                for &z in s.xs_of(y) {
                    if dedup.insert(z) {
                        out.push((x, z));
                    }
                }
            }
        }
    }
}

impl ExpandDedupEngine {
    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    pub fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        self.join_project_on(r, s, self.exec())
    }

    /// [`join_project`](Self::join_project) on an explicit executor, so a
    /// caller-level thread budget governs the expansion workers.
    pub fn join_project_on(
        &self,
        r: &Relation,
        s: &Relation,
        exec: &Executor,
    ) -> Vec<(Value, Value)> {
        let groups: Vec<(Value, &[Value])> = r.by_x().iter_nonempty().collect();
        let mut out = if self.threads <= 1 {
            let mut dedup = DedupBuffer::new(s.x_domain());
            let mut scratch = Vec::new();
            let mut out = Vec::new();
            for (x, ys) in groups {
                Self::expand_group(x, ys, s, &mut dedup, &mut scratch, &mut out);
            }
            out
        } else {
            // Static partition of x-groups into contiguous chunks; merge
            // worker outputs at the end (disjoint x ⇒ no dedup across
            // workers needed).
            let results = exec.map_chunks(self.threads, &groups, |part| {
                let mut dedup = DedupBuffer::new(s.x_domain());
                let mut scratch = Vec::new();
                let mut out = Vec::new();
                for &(x, ys) in part {
                    Self::expand_group(x, ys, s, &mut dedup, &mut scratch, &mut out);
                }
                out
            });
            results.concat()
        };
        out.sort_unstable();
        out
    }
}

impl ExpandDedupEngine {
    /// Star generalisation: enumerate the full WCOJ join and deduplicate.
    /// Grouped by the leading variable the dedup is sort-based per chunk to
    /// bound memory; this matches the combinatorial `O(|D|·|OUT|^{1-1/k})`
    /// behaviour in practice.
    pub fn star_join_project<R: AsRef<Relation>>(&self, relations: &[R]) -> Vec<Vec<Value>> {
        let mut acc = ProjectionAccumulator::new(relations.len());
        star_full_join_for_each(relations, |_, tuple| acc.push(tuple));
        acc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fulljoin::SortMergeEngine;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn matches_reference_small() {
        let r = rel(&[(0, 0), (0, 1), (1, 0), (2, 2)]);
        let s = rel(&[(4, 0), (5, 1), (6, 2), (4, 1)]);
        assert_eq!(
            ExpandDedupEngine::serial().join_project(&r, &s),
            SortMergeEngine.join_project(&r, &s)
        );
    }

    #[test]
    fn parallel_matches_serial() {
        // A mid-sized random-ish instance exercising both dedup strategies.
        let edges: Vec<(Value, Value)> =
            (0..400u32).map(|i| ((i * 7) % 50, (i * 13) % 40)).collect();
        let r = rel(&edges);
        let serial = ExpandDedupEngine::serial().join_project(&r, &r);
        for threads in [2, 3, 8] {
            assert_eq!(
                ExpandDedupEngine::parallel(threads).join_project(&r, &r),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn star_k3_matches_wcoj_reference() {
        let r1 = rel(&[(0, 0), (1, 0), (2, 1)]);
        let r2 = rel(&[(5, 0), (6, 1)]);
        let r3 = rel(&[(8, 0), (9, 0), (9, 1)]);
        let got =
            ExpandDedupEngine::serial().star_join_project(&[r1.clone(), r2.clone(), r3.clone()]);
        let expected = mmjoin_wcoj::star_join_project(&[r1, r2, r3]);
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_input() {
        let r = rel(&[]);
        assert!(ExpandDedupEngine::serial().join_project(&r, &r).is_empty());
    }

    proptest! {
        #[test]
        fn agrees_with_sort_merge(
            r_edges in proptest::collection::vec((0u32..25, 0u32..25), 0..80),
            s_edges in proptest::collection::vec((0u32..25, 0u32..25), 0..80),
            threads in 1usize..4,
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            prop_assert_eq!(
                ExpandDedupEngine::parallel(threads).join_project(&r, &s),
                SortMergeEngine.join_project(&r, &s)
            );
        }
    }
}
