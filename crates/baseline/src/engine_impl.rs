//! [`Engine`] implementations for every baseline engine.
//!
//! The DBMS-style 2-path engines support exactly the uncounted
//! `Query::TwoPath` family; [`ExpandDedupEngine`] additionally evaluates
//! star queries. None of them plan, so [`ExecStats::plan`] stays `None`.

use crate::fulljoin::{HashJoinEngine, SortMergeEngine, SystemXEngine};
use crate::nonmm::ExpandDedupEngine;
use crate::setintersect::SetIntersectEngine;
use crate::star::{HashDedupStarEngine, SortDedupStarEngine};
use mmjoin_api::{emit_pairs, emit_tuples, Engine, EngineError, ExecStats, Query, Sink};

/// Implements [`Engine`] for a 2-path-only baseline in terms of its
/// inherent `join_project` method.
macro_rules! two_path_engine {
    ($ty:ty, $name:literal) => {
        impl Engine for $ty {
            fn name(&self) -> &str {
                $name
            }

            fn supports(&self, query: &Query<'_>) -> bool {
                matches!(
                    query,
                    Query::TwoPath {
                        with_counts: false,
                        ..
                    }
                )
            }

            fn execute(
                &self,
                query: &Query<'_>,
                sink: &mut dyn Sink,
            ) -> Result<ExecStats, EngineError> {
                query.validate()?;
                match *query {
                    Query::TwoPath {
                        r,
                        s,
                        with_counts: false,
                        ..
                    } => {
                        let pairs = self.join_project(r, s);
                        let rows = emit_pairs(sink, &pairs);
                        Ok(ExecStats::new($name, rows))
                    }
                    _ => Err(self.unsupported(query)),
                }
            }
        }
    };
}

/// Implements [`Engine`] for a star-only baseline in terms of its inherent
/// `star_join_project` method.
macro_rules! star_engine {
    ($ty:ty, $name:literal) => {
        impl Engine for $ty {
            fn name(&self) -> &str {
                $name
            }

            fn supports(&self, query: &Query<'_>) -> bool {
                matches!(query, Query::Star { .. })
            }

            fn execute(
                &self,
                query: &Query<'_>,
                sink: &mut dyn Sink,
            ) -> Result<ExecStats, EngineError> {
                query.validate()?;
                match query {
                    Query::Star { relations } => {
                        let tuples = self.star_join_project(relations);
                        let rows = emit_tuples(sink, relations.len(), &tuples);
                        Ok(ExecStats::new($name, rows))
                    }
                    _ => Err(self.unsupported(query)),
                }
            }
        }
    };
}

two_path_engine!(HashJoinEngine, "HashJoin(Postgres)");
two_path_engine!(SortMergeEngine, "MergeJoin(MySQL)");
two_path_engine!(SystemXEngine, "SystemX");
two_path_engine!(SetIntersectEngine, "SetIntersect(EmptyHeaded)");
star_engine!(HashDedupStarEngine, "HashJoin(DBMS)");
star_engine!(SortDedupStarEngine, "SortDedup(reference)");

/// `ExpandDedupEngine` serves both families, so it gets a hand-written
/// impl instead of the macros.
impl Engine for ExpandDedupEngine {
    fn name(&self) -> &str {
        "Non-MMJoin"
    }

    fn supports(&self, query: &Query<'_>) -> bool {
        matches!(
            query,
            Query::TwoPath {
                with_counts: false,
                ..
            } | Query::Star { .. }
        )
    }

    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError> {
        query.validate()?;
        match query {
            Query::TwoPath {
                r,
                s,
                with_counts: false,
                ..
            } => {
                let pairs = self.join_project(r, s);
                let rows = emit_pairs(sink, &pairs);
                Ok(ExecStats::new(Engine::name(self), rows))
            }
            Query::Star { relations } => {
                let tuples = self.star_join_project(relations);
                let rows = emit_tuples(sink, relations.len(), &tuples);
                Ok(ExecStats::new(Engine::name(self), rows))
            }
            _ => Err(self.unsupported(query)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_api::{LimitSink, PairSink, QueryFamily, VecSink};
    use mmjoin_storage::{Relation, Value};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn two_path_engines() -> Vec<Box<dyn Engine>> {
        vec![
            Box::new(HashJoinEngine),
            Box::new(SortMergeEngine),
            Box::new(SystemXEngine),
            Box::new(SetIntersectEngine),
            Box::new(ExpandDedupEngine::serial()),
            Box::new(ExpandDedupEngine::parallel(3)),
        ]
    }

    #[test]
    fn engine_trait_agrees_with_inherent_method() {
        let r = rel(&[(0, 0), (1, 0), (2, 1), (2, 0)]);
        let s = rel(&[(5, 0), (6, 1), (7, 2)]);
        let q = Query::two_path(&r, &s).build().unwrap();
        let expected = SortMergeEngine.join_project(&r, &s);
        for e in two_path_engines() {
            let mut sink = PairSink::new();
            let stats = e.execute(&q, &mut sink).unwrap();
            assert_eq!(sink.pairs, expected, "{}", e.name());
            assert_eq!(stats.rows, expected.len() as u64);
            assert!(stats.plan.is_none(), "baselines do not plan");
        }
    }

    #[test]
    fn unsupported_families_are_rejected() {
        let r = rel(&[(0, 0)]);
        let counting = Query::two_path(&r, &r).with_counts().build().unwrap();
        let similarity = Query::similarity(&r, 1).build().unwrap();
        for e in two_path_engines() {
            assert!(!e.supports(&counting), "{}", e.name());
            let mut sink = PairSink::new();
            let err = e.execute(&similarity, &mut sink).unwrap_err();
            assert!(
                matches!(
                    err,
                    EngineError::Unsupported {
                        family: QueryFamily::Similarity,
                        ..
                    }
                ),
                "{}: {err}",
                e.name()
            );
        }
    }

    #[test]
    fn star_engines_execute_star_queries() {
        let rels = vec![
            rel(&[(0, 0), (1, 0), (2, 1)]),
            rel(&[(5, 0), (6, 1)]),
            rel(&[(8, 0), (9, 0), (9, 1)]),
        ];
        let q = Query::star(&rels).build().unwrap();
        let reference = SortDedupStarEngine.star_join_project(&rels);
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(SortDedupStarEngine),
            Box::new(HashDedupStarEngine),
            Box::new(ExpandDedupEngine::serial()),
        ];
        for e in engines {
            let mut sink = VecSink::new();
            e.execute(&q, &mut sink).unwrap();
            assert_eq!(sink.rows, reference, "{}", e.name());
            assert_eq!(sink.arity, 3);
        }
    }

    #[test]
    fn limit_sink_terminates_emission_early() {
        // Single hub: 5×5 output pairs; a limit of 3 must stop there.
        let edges: Vec<(Value, Value)> = (0..5).map(|x| (x, 0)).collect();
        let r = rel(&edges);
        let q = Query::two_path(&r, &r).build().unwrap();
        for e in two_path_engines() {
            let mut sink = LimitSink::new(PairSink::new(), 3);
            let stats = e.execute(&q, &mut sink).unwrap();
            assert_eq!(stats.rows, 3, "{}", e.name());
            assert!(sink.limit_reached());
            let full = SortMergeEngine.join_project(&r, &r);
            assert_eq!(sink.into_inner().pairs, full[..3].to_vec(), "{}", e.name());
        }
    }
}
