//! EmptyHeaded-style set-intersection join-project engine.
//!
//! EmptyHeaded compiles queries into trie-based plans whose inner loops are
//! highly optimized sorted-set intersections. For the 2-path query its
//! generic worst-case-optimal plan with head variables `(x, z)` iterates
//! candidate `(x, z)` pairs and checks `ys(x) ∩ ys(z) ≠ ∅` — spectacular on
//! dense, near-clique data (Figure 4a shows it matching MMJoin on Image)
//! and weak when the candidate space is much larger than the output.
//!
//! Its query compiler would pick a different GHD when the all-pairs plan is
//! hopeless, so we mirror that: when the estimated all-pairs intersection
//! cost exceeds the full-join expansion cost, fall back to a y-first plan
//! (full join + per-x dedup), which is how it behaves on the sparse datasets.

use mmjoin_storage::csr::adaptive_intersect_count;
use mmjoin_storage::{DedupBuffer, Relation, Value};

/// Set-intersection engine (EmptyHeaded-style).
#[derive(Debug, Default, Clone, Copy)]
pub struct SetIntersectEngine;

impl SetIntersectEngine {
    /// All-pairs plan: for every active `x` and active `z`, compute the
    /// full sorted-set intersection. A generic WCOJ engine binds every `y`
    /// witness before the projection discards them, so no early exit —
    /// this is the fidelity-relevant cost EmptyHeaded pays.
    fn all_pairs_plan(r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        for (x, ys_x) in r.by_x().iter_nonempty() {
            for (z, ys_z) in s.by_x().iter_nonempty() {
                if adaptive_intersect_count(ys_x, ys_z) > 0 {
                    out.push((x, z));
                }
            }
        }
        out
    }

    /// y-first plan: expand the full join grouped by `x` with dense dedup.
    fn y_first_plan(r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let mut out = Vec::new();
        let mut dedup = DedupBuffer::new(s.x_domain());
        for (x, ys_x) in r.by_x().iter_nonempty() {
            dedup.clear();
            for &y in ys_x {
                if (y as usize) >= s.y_domain() {
                    continue;
                }
                for &z in s.xs_of(y) {
                    if dedup.insert(z) {
                        out.push((x, z));
                    }
                }
            }
        }
        out
    }

    /// Estimated cost of each plan; used to pick like EmptyHeaded's
    /// compiler would.
    fn prefer_all_pairs(r: &Relation, s: &Relation) -> bool {
        let active_x = r.active_x_count() as u64;
        let active_z = s.active_x_count() as u64;
        let avg_list = (r.len() as u64).checked_div(active_x).unwrap_or(0);
        // Galloping makes each check ~log(list); approximate with a small
        // constant times the average list length's log.
        let log_list = (avg_list.max(2) as f64).log2() as u64 + 1;
        let all_pairs_cost = active_x.saturating_mul(active_z).saturating_mul(log_list);
        let full_join_cost = r.full_join_size(s);
        all_pairs_cost < full_join_cost
    }
}

impl SetIntersectEngine {
    /// Evaluates `π_{x,z}(R ⋈ S)`, returning sorted distinct `(x, z)` pairs.
    pub fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        let mut out = if Self::prefer_all_pairs(r, s) {
            Self::all_pairs_plan(r, s)
        } else {
            Self::y_first_plan(r, s)
        };
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fulljoin::SortMergeEngine;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn both_plans_agree() {
        let r = rel(&[(0, 0), (0, 1), (1, 1), (2, 2)]);
        let s = rel(&[(5, 0), (6, 1), (7, 1), (8, 3)]);
        let mut a = SetIntersectEngine::all_pairs_plan(&r, &s);
        let mut b = SetIntersectEngine::y_first_plan(&r, &s);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(a, vec![(0, 5), (0, 6), (0, 7), (1, 6), (1, 7)]);
    }

    #[test]
    fn matches_reference_engine_on_dense_clique() {
        // Near-clique: every x shares y=0, forcing a dense output.
        let edges: Vec<(Value, Value)> = (0..20).map(|x| (x, 0)).collect();
        let r = rel(&edges);
        let got = SetIntersectEngine.join_project(&r, &r);
        let expected = SortMergeEngine.join_project(&r, &r);
        assert_eq!(got.len(), 400);
        assert_eq!(got, expected);
    }

    proptest! {
        #[test]
        fn agrees_with_sort_merge(
            r_edges in proptest::collection::vec((0u32..15, 0u32..15), 0..50),
            s_edges in proptest::collection::vec((0u32..15, 0u32..15), 0..50),
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            prop_assert_eq!(
                SetIntersectEngine.join_project(&r, &s),
                SortMergeEngine.join_project(&r, &s)
            );
        }
    }
}
