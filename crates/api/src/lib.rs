//! `mmjoin-api` — the workspace's single query front door.
//!
//! Every join-project workload the system serves is described by one
//! [`Query`] value, executed by anything implementing [`Engine`], and
//! streamed into a caller-supplied [`Sink`]:
//!
//! ```text
//!  Query  ──▶  Engine::execute(&query, &mut sink)  ──▶  ExecStats
//!                        │
//!                        └──▶ sink.row(..) / sink.counted_row(..)
//! ```
//!
//! * [`Query`] is the workload AST: 2-path join-project (optionally with
//!   witness counts), star queries `Q*_k`, set-similarity joins, and
//!   set-containment joins — built through validating builders
//!   (`Query::two_path(&r, &s).with_counts().build()?`).
//! * [`Engine`] is the uniform execution trait. Engines advertise which
//!   query families they support ([`Engine::supports`]) and return
//!   [`ExecStats`] — rows emitted plus, for plan-based engines, the chosen
//!   degree thresholds `(Δ1, Δ2)`, the plan kind, and the heavy/light
//!   partition sizes — instead of an opaque `Vec`.
//! * [`Sink`] is a streaming visitor over output rows, so callers that
//!   only count, sample, or forward results never pay for full
//!   materialisation. [`VecSink`], [`PairSink`] and [`CountSink`] are the
//!   stock adapters; [`LimitSink`] bounds any of them and signals early
//!   termination through [`Sink::wants_more`]; [`DeltaSink`] accumulates
//!   signed row deltas for incremental view maintenance.
//! * [`EngineRegistry`] maps names to boxed engines so tests, benchmarks
//!   and services enumerate engines dynamically — no per-engine
//!   hard-coding at call sites.
//!
//! This crate depends only on `mmjoin-storage`; every engine crate in the
//! workspace depends on it and registers its engines upward (the `mmjoin`
//! facade crate assembles the default registry).

pub mod engine;
pub mod ir;
pub mod query;
pub mod registry;
pub mod sink;

pub use engine::{Engine, EngineError, ExecStats, PlanKind, PlanStats, StepStats};
pub use ir::{Atom, QueryGraph, Var};
pub use query::{Query, QueryError, QueryFamily};
pub use registry::EngineRegistry;
pub use sink::{
    emit_counted_pairs, emit_pairs, emit_tuples, CountSink, DeltaSink, ForEachSink, LimitSink,
    PairSink, Sink, VecSink,
};
