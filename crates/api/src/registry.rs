//! Name → engine registry.

use crate::engine::{Engine, EngineError, ExecStats};
use crate::query::Query;
use crate::sink::Sink;

/// An ordered collection of named engines.
///
/// Registration order is preserved: enumeration (`iter`, `engines_for`,
/// `names`) is deterministic, which keeps cross-engine agreement tests and
/// experiment tables stable. Registering a name twice replaces the earlier
/// engine (latest wins), so callers can override defaults.
#[derive(Default)]
pub struct EngineRegistry {
    engines: Vec<Box<dyn Engine>>,
}

impl EngineRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under its own [`Engine::name`], replacing any
    /// earlier engine with the same name.
    pub fn register(&mut self, engine: Box<dyn Engine>) -> &mut Self {
        if let Some(slot) = self.engines.iter_mut().find(|e| e.name() == engine.name()) {
            *slot = engine;
        } else {
            self.engines.push(engine);
        }
        self
    }

    /// Looks an engine up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Engine> {
        self.engines
            .iter()
            .find(|e| e.name() == name)
            .map(|e| e.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// All engines, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Engine> {
        self.engines.iter().map(|e| e.as_ref())
    }

    /// The engines able to execute `query`, in registration order — the
    /// enumeration primitive agreement tests and experiment sweeps use
    /// instead of hard-coding engine lists.
    pub fn engines_for<'s>(&'s self, query: &Query<'_>) -> Vec<&'s dyn Engine> {
        self.engines
            .iter()
            .filter(|e| e.supports(query))
            .map(|e| e.as_ref())
            .collect()
    }

    /// Executes `query` on the engine registered as `name`.
    pub fn execute(
        &self,
        name: &str,
        query: &Query<'_>,
        sink: &mut dyn Sink,
    ) -> Result<ExecStats, EngineError> {
        let engine = self
            .get(name)
            .ok_or_else(|| EngineError::UnknownEngine(name.to_string()))?;
        engine.execute(query, sink)
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry")
            .field("engines", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineError, ExecStats};
    use crate::query::QueryFamily;
    use mmjoin_storage::Relation;

    /// Toy engine answering 2-path queries with a fixed row.
    struct Fixed {
        name: &'static str,
    }

    impl Engine for Fixed {
        fn name(&self) -> &str {
            self.name
        }

        fn supports(&self, query: &Query<'_>) -> bool {
            query.family() == QueryFamily::TwoPath
        }

        fn execute(
            &self,
            query: &Query<'_>,
            sink: &mut dyn Sink,
        ) -> Result<ExecStats, EngineError> {
            query.validate()?;
            if !self.supports(query) {
                return Err(self.unsupported(query));
            }
            sink.begin(2);
            sink.row(&[1, 2]);
            Ok(ExecStats::new(self.name, 1))
        }
    }

    #[test]
    fn register_lookup_execute_round_trip() {
        let mut reg = EngineRegistry::new();
        reg.register(Box::new(Fixed { name: "a" }))
            .register(Box::new(Fixed { name: "b" }));
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert_eq!(reg.len(), 2);

        let r = Relation::from_edges([(0, 0)]);
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = crate::sink::PairSink::new();
        let stats = reg.execute("b", &q, &mut sink).unwrap();
        assert_eq!(stats.engine, "b");
        assert_eq!(sink.pairs, vec![(1, 2)]);
    }

    #[test]
    fn unknown_name_is_an_error() {
        let reg = EngineRegistry::new();
        let r = Relation::from_edges([(0, 0)]);
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = crate::sink::CountSink::new();
        assert_eq!(
            reg.execute("nope", &q, &mut sink).unwrap_err(),
            EngineError::UnknownEngine("nope".into())
        );
    }

    #[test]
    fn engines_for_filters_by_support() {
        let mut reg = EngineRegistry::new();
        reg.register(Box::new(Fixed { name: "a" }));
        let r = Relation::from_edges([(0, 0)]);
        let two_path = Query::two_path(&r, &r).build().unwrap();
        let containment = Query::containment(&r).build().unwrap();
        assert_eq!(reg.engines_for(&two_path).len(), 1);
        assert!(reg.engines_for(&containment).is_empty());
    }

    #[test]
    fn duplicate_name_replaces() {
        let mut reg = EngineRegistry::new();
        reg.register(Box::new(Fixed { name: "a" }));
        reg.register(Box::new(Fixed { name: "a" }));
        assert_eq!(reg.len(), 1);
    }
}
