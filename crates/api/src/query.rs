//! The query AST and its validating builders.

use crate::ir::{QueryGraph, Var};
use mmjoin_storage::Relation;
use std::fmt;

/// A fully specified join-project workload.
///
/// Queries borrow their input relations (`'a`), carry only *what* to
/// compute — never execution knobs like thread counts or degree
/// thresholds, which belong to the engine's configuration — and are
/// validated at construction ([`Query::validate`] re-checks on execute).
#[derive(Debug, Clone)]
pub enum Query<'a> {
    /// The 2-path join-project `Q(x, z) = π_{x,z}(R(x, y) ⋈ S(z, y))`.
    ///
    /// Output: sorted distinct arity-2 rows. With `with_counts`, each row
    /// is emitted through [`Sink::counted_row`](crate::Sink::counted_row)
    /// with its exact witness multiplicity `|ys(x) ∩ ys(z)|`, filtered to
    /// `count ≥ min_count`.
    TwoPath {
        /// Left relation `R(x, y)`.
        r: &'a Relation,
        /// Right relation `S(z, y)`.
        s: &'a Relation,
        /// Report exact witness counts per output pair.
        with_counts: bool,
        /// Minimum witness count (only meaningful with `with_counts`;
        /// must be ≥ 1).
        min_count: u32,
    },
    /// The star join-project `Q*_k(x1..xk) = π(R1(x1,y) ⋈ … ⋈ Rk(xk,y))`.
    ///
    /// Output: sorted distinct arity-`k` rows. The relations are held by
    /// reference so callers resolving shared handles (e.g. the service's
    /// `Arc<Relation>` catalog entries) never clone relation payloads.
    Star {
        /// The `k ≥ 1` star relations.
        relations: Vec<&'a Relation>,
    },
    /// Set-similarity join over the set family `R(x, y)` ("set `x`
    /// contains element `y`"): all pairs `a < b` with
    /// `|set(a) ∩ set(b)| ≥ c`.
    ///
    /// Output: arity-2 rows. When `ordered`, rows arrive by descending
    /// overlap (ties by `(a, b)`) through
    /// [`Sink::counted_row`](crate::Sink::counted_row) with the exact
    /// overlap. When unordered, rows arrive sorted by `(a, b)` as plain
    /// [`Sink::row`](crate::Sink::row) calls *without* counts — the
    /// SizeAware-family engines discover unordered pairs without ever
    /// computing overlaps, and all engines share one contract so their
    /// streams compare equal.
    SimilarityJoin {
        /// The set family.
        r: &'a Relation,
        /// Overlap threshold `c ≥ 1`.
        c: u32,
        /// Emit in descending-overlap order.
        ordered: bool,
    },
    /// Set-containment join over `R(x, y)`: all ordered pairs `(a, b)`,
    /// `a ≠ b`, with `set(a) ⊆ set(b)`.
    ///
    /// Output: sorted distinct arity-2 `(subset, superset)` rows.
    ContainmentJoin {
        /// The set family.
        r: &'a Relation,
    },
    /// A general acyclic join-project query described by a
    /// [`QueryGraph`] — arbitrary trees of binary atoms (k-path chains,
    /// snowflakes, …) that the decomposing planner lowers into 2-path
    /// and star primitive steps.
    ///
    /// Output: sorted distinct rows of arity `graph.output_arity()`.
    General {
        /// The validated query graph.
        graph: QueryGraph<'a>,
    },
}

/// The workload families, used for engine capability checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFamily {
    /// 2-path join-project (with or without counts).
    TwoPath,
    /// Star join-project.
    Star,
    /// Set-similarity join.
    Similarity,
    /// Set-containment join.
    Containment,
    /// General acyclic join-project (query-graph IR).
    General,
}

impl fmt::Display for QueryFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryFamily::TwoPath => "two-path",
            QueryFamily::Star => "star",
            QueryFamily::Similarity => "similarity-join",
            QueryFamily::Containment => "containment-join",
            QueryFamily::General => "general",
        };
        f.write_str(s)
    }
}

/// A malformed query, rejected at build (and again at execute) time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A star query needs at least one relation.
    EmptyStar,
    /// A similarity join with `c = 0` would emit every pair of sets; the
    /// threshold must be at least 1.
    ZeroSimilarityThreshold,
    /// `min_count = 0` on a counting 2-path query (counts are ≥ 1 by
    /// definition, so 0 can only be a caller bug).
    ZeroMinCount,
    /// A general query needs at least one atom.
    EmptyGraph,
    /// An atom `R(v, v)` binds both columns to the same variable, which
    /// the 2-path/star primitives cannot express.
    SelfLoopAtom {
        /// Index of the offending atom.
        atom: usize,
    },
    /// The query graph contains a cycle (or parallel atoms between the
    /// same variable pair); only acyclic queries decompose into
    /// 2-path/star steps.
    CyclicQueryGraph,
    /// The query graph is not connected (a cross product, not a join).
    DisconnectedQueryGraph,
    /// A general query must project at least one variable.
    EmptyProjection,
    /// The projection names a variable no atom mentions.
    UnknownProjectionVar(Var),
    /// The projection lists the same variable twice.
    DuplicateProjectionVar(Var),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyStar => write!(f, "star query needs at least one relation"),
            QueryError::ZeroSimilarityThreshold => {
                write!(f, "similarity threshold c must be at least 1")
            }
            QueryError::ZeroMinCount => write!(f, "min_count must be at least 1"),
            QueryError::EmptyGraph => write!(f, "general query needs at least one atom"),
            QueryError::SelfLoopAtom { atom } => {
                write!(f, "atom {atom} binds both columns to the same variable")
            }
            QueryError::CyclicQueryGraph => {
                write!(
                    f,
                    "query graph must be acyclic (no cycles or parallel atoms)"
                )
            }
            QueryError::DisconnectedQueryGraph => {
                write!(f, "query graph must be connected (no cross products)")
            }
            QueryError::EmptyProjection => {
                write!(f, "general query must project at least one variable")
            }
            QueryError::UnknownProjectionVar(v) => {
                write!(f, "projection variable {v} does not occur in any atom")
            }
            QueryError::DuplicateProjectionVar(v) => {
                write!(f, "projection lists variable {v} twice")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl<'a> Query<'a> {
    /// Starts a 2-path query builder.
    pub fn two_path(r: &'a Relation, s: &'a Relation) -> TwoPathBuilder<'a> {
        TwoPathBuilder {
            r,
            s,
            with_counts: false,
            min_count: 1,
        }
    }

    /// Starts a star query builder. Accepts owned (`&[Relation]`) and
    /// borrowed (`&[&Relation]`) slices alike.
    pub fn star<R: AsRef<Relation>>(relations: &'a [R]) -> StarBuilder<'a> {
        StarBuilder {
            relations: relations.iter().map(AsRef::as_ref).collect(),
        }
    }

    /// Wraps a validated [`QueryGraph`] into a general query.
    pub fn general(graph: QueryGraph<'a>) -> Result<Query<'a>, QueryError> {
        graph.validate()?;
        Ok(Query::General { graph })
    }

    /// Starts a similarity-join builder with overlap threshold `c`.
    pub fn similarity(r: &'a Relation, c: u32) -> SimilarityBuilder<'a> {
        SimilarityBuilder {
            r,
            c,
            ordered: false,
        }
    }

    /// Starts a containment-join builder.
    pub fn containment(r: &'a Relation) -> ContainmentBuilder<'a> {
        ContainmentBuilder { r }
    }

    /// Which workload family this query belongs to.
    pub fn family(&self) -> QueryFamily {
        match self {
            Query::TwoPath { .. } => QueryFamily::TwoPath,
            Query::Star { .. } => QueryFamily::Star,
            Query::SimilarityJoin { .. } => QueryFamily::Similarity,
            Query::ContainmentJoin { .. } => QueryFamily::Containment,
            Query::General { .. } => QueryFamily::General,
        }
    }

    /// Arity of the output rows this query produces.
    pub fn output_arity(&self) -> usize {
        match self {
            Query::Star { relations } => relations.len(),
            Query::General { graph } => graph.output_arity(),
            _ => 2,
        }
    }

    /// Checks the structural invariants builders enforce; engines call
    /// this again so hand-constructed queries are equally safe.
    pub fn validate(&self) -> Result<(), QueryError> {
        match self {
            Query::TwoPath {
                with_counts,
                min_count,
                ..
            } => {
                if *with_counts && *min_count == 0 {
                    return Err(QueryError::ZeroMinCount);
                }
                Ok(())
            }
            Query::Star { relations } => {
                if relations.is_empty() {
                    return Err(QueryError::EmptyStar);
                }
                Ok(())
            }
            Query::SimilarityJoin { c, .. } => {
                if *c == 0 {
                    return Err(QueryError::ZeroSimilarityThreshold);
                }
                Ok(())
            }
            Query::ContainmentJoin { .. } => Ok(()),
            Query::General { graph } => graph.validate(),
        }
    }
}

/// Builder for [`Query::TwoPath`].
#[derive(Debug, Clone)]
pub struct TwoPathBuilder<'a> {
    r: &'a Relation,
    s: &'a Relation,
    with_counts: bool,
    min_count: u32,
}

impl<'a> TwoPathBuilder<'a> {
    /// Requests exact witness counts per output pair.
    pub fn with_counts(mut self) -> Self {
        self.with_counts = true;
        self
    }

    /// Requests counts and keeps only pairs with at least `min_count`
    /// witnesses.
    pub fn min_count(mut self, min_count: u32) -> Self {
        self.with_counts = true;
        self.min_count = min_count;
        self
    }

    /// Validates and produces the query.
    pub fn build(self) -> Result<Query<'a>, QueryError> {
        let q = Query::TwoPath {
            r: self.r,
            s: self.s,
            with_counts: self.with_counts,
            min_count: self.min_count,
        };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::Star`].
#[derive(Debug, Clone)]
pub struct StarBuilder<'a> {
    relations: Vec<&'a Relation>,
}

impl<'a> StarBuilder<'a> {
    /// Validates and produces the query.
    pub fn build(self) -> Result<Query<'a>, QueryError> {
        let q = Query::Star {
            relations: self.relations,
        };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::SimilarityJoin`].
#[derive(Debug, Clone)]
pub struct SimilarityBuilder<'a> {
    r: &'a Relation,
    c: u32,
    ordered: bool,
}

impl<'a> SimilarityBuilder<'a> {
    /// Requests descending-overlap output order.
    pub fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Validates and produces the query.
    pub fn build(self) -> Result<Query<'a>, QueryError> {
        let q = Query::SimilarityJoin {
            r: self.r,
            c: self.c,
            ordered: self.ordered,
        };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::ContainmentJoin`].
#[derive(Debug, Clone)]
pub struct ContainmentBuilder<'a> {
    r: &'a Relation,
}

impl<'a> ContainmentBuilder<'a> {
    /// Validates and produces the query.
    pub fn build(self) -> Result<Query<'a>, QueryError> {
        let q = Query::ContainmentJoin { r: self.r };
        q.validate()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::QueryGraph;

    fn rel() -> Relation {
        Relation::from_edges([(0, 0), (1, 0)])
    }

    #[test]
    fn general_query_wraps_graph() {
        let rels = vec![rel(), rel(), rel()];
        let graph = QueryGraph::chain(&rels).unwrap();
        let q = Query::general(graph).unwrap();
        assert_eq!(q.family(), QueryFamily::General);
        assert_eq!(q.output_arity(), 2);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn star_builder_accepts_refs() {
        let a = rel();
        let b = rel();
        let refs = vec![&a, &b];
        let q = Query::star(&refs).build().unwrap();
        assert_eq!(q.output_arity(), 2);
    }

    #[test]
    fn builders_produce_valid_queries() {
        let r = rel();
        let q = Query::two_path(&r, &r).build().unwrap();
        assert_eq!(q.family(), QueryFamily::TwoPath);
        assert_eq!(q.output_arity(), 2);

        let q = Query::two_path(&r, &r).with_counts().build().unwrap();
        match q {
            Query::TwoPath {
                with_counts,
                min_count,
                ..
            } => {
                assert!(with_counts);
                assert_eq!(min_count, 1);
            }
            _ => unreachable!(),
        }

        let rels = vec![rel(), rel(), rel()];
        let q = Query::star(&rels).build().unwrap();
        assert_eq!(q.output_arity(), 3);

        let q = Query::similarity(&r, 2).ordered().build().unwrap();
        assert_eq!(q.family(), QueryFamily::Similarity);

        let q = Query::containment(&r).build().unwrap();
        assert_eq!(q.family(), QueryFamily::Containment);
    }

    #[test]
    fn arity_zero_star_rejected() {
        let rels: Vec<Relation> = Vec::new();
        assert_eq!(
            Query::star(&rels).build().unwrap_err(),
            QueryError::EmptyStar
        );
    }

    #[test]
    fn zero_similarity_threshold_rejected() {
        let r = rel();
        assert_eq!(
            Query::similarity(&r, 0).build().unwrap_err(),
            QueryError::ZeroSimilarityThreshold
        );
    }

    #[test]
    fn zero_min_count_rejected() {
        let r = rel();
        assert_eq!(
            Query::two_path(&r, &r).min_count(0).build().unwrap_err(),
            QueryError::ZeroMinCount
        );
    }
}
