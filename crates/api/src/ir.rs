//! The query-graph IR for general acyclic join-project queries.
//!
//! A [`QueryGraph`] is a conjunctive query over binary atoms
//! `R_i(u, v)` with named variables plus a projection list:
//!
//! ```text
//!   Q(x, w) :- R(x, y), S(y, z), T(z, w)        // a 3-chain
//!   Q(a, b, c) :- R(a, y), S(b, y), T(c, y)     // the star Q*_3
//! ```
//!
//! Variables are dense small integers ([`Var`]); each atom is an edge of
//! the *query graph* whose vertices are the variables. Construction
//! validates that the graph is **connected and acyclic** (a tree — the
//! class the decomposing planner in `mmjoin-core` evaluates by composing
//! 2-path and star primitives) and that the projection names existing,
//! distinct variables.
//!
//! The four classic workload families become canonical constructors:
//! [`QueryGraph::two_path`] and [`QueryGraph::star`] build exactly the
//! shapes of `Query::TwoPath` / `Query::Star`, and [`QueryGraph::chain`]
//! generalises them to k-paths.

use crate::query::QueryError;
use mmjoin_storage::Relation;

/// A query variable. Values are arbitrary (the service layer maps
/// user-facing names to ids); equality is what matters.
pub type Var = u32;

/// One atom `R(x, y)` of a query graph: a relation applied to two
/// variables. `x` binds the relation's first (set) column, `y` its second
/// (element) column — orientation matters, and the planner transposes the
/// relation when a join needs the other column.
#[derive(Debug, Clone, Copy)]
pub struct Atom<'a> {
    /// The relation instance this atom ranges over.
    pub relation: &'a Relation,
    /// Variable bound to the first column.
    pub x: Var,
    /// Variable bound to the second column.
    pub y: Var,
}

/// A validated acyclic, connected join-project query over binary atoms.
#[derive(Debug, Clone)]
pub struct QueryGraph<'a> {
    atoms: Vec<Atom<'a>>,
    projection: Vec<Var>,
}

impl<'a> QueryGraph<'a> {
    /// Builds and validates a query graph from its atoms and projection
    /// list (the output columns, in order).
    pub fn new(atoms: Vec<Atom<'a>>, projection: Vec<Var>) -> Result<Self, QueryError> {
        let graph = Self { atoms, projection };
        graph.validate()?;
        Ok(graph)
    }

    /// The k-path chain `Q(v0, vk) :- R1(v0, v1), R2(v1, v2), …`,
    /// projecting the two endpoints.
    ///
    /// For `k = 1` this degenerates to projecting a single atom's two
    /// columns; for `k = 2` it is the 2-path up to orientation of the
    /// second relation (see [`QueryGraph::two_path`] for the exact
    /// `Query::TwoPath` shape).
    pub fn chain<R: AsRef<Relation>>(relations: &'a [R]) -> Result<Self, QueryError> {
        let atoms = relations
            .iter()
            .enumerate()
            .map(|(i, r)| Atom {
                relation: r.as_ref(),
                x: i as Var,
                y: i as Var + 1,
            })
            .collect();
        Self::new(atoms, vec![0, relations.len() as Var])
    }

    /// The classic 2-path `Q(x, z) :- R(x, y), S(z, y)` — both relations
    /// joined on their *second* column, exactly `Query::TwoPath`.
    pub fn two_path(r: &'a Relation, s: &'a Relation) -> Self {
        Self::new(
            vec![
                Atom {
                    relation: r,
                    x: 0,
                    y: 1,
                },
                Atom {
                    relation: s,
                    x: 2,
                    y: 1,
                },
            ],
            vec![0, 2],
        )
        .expect("two-path shape is always valid")
    }

    /// The star `Q*_k(x1..xk) :- R1(x1, y), …, Rk(xk, y)`, projecting
    /// every head — exactly `Query::Star`.
    pub fn star<R: AsRef<Relation>>(relations: &'a [R]) -> Result<Self, QueryError> {
        let k = relations.len() as Var;
        let atoms = relations
            .iter()
            .enumerate()
            .map(|(i, r)| Atom {
                relation: r.as_ref(),
                x: i as Var,
                y: k,
            })
            .collect();
        Self::new(atoms, (0..k).collect())
    }

    /// The atoms, in declaration order.
    pub fn atoms(&self) -> &[Atom<'a>] {
        &self.atoms
    }

    /// The projected variables, in output-column order.
    pub fn projection(&self) -> &[Var] {
        &self.projection
    }

    /// Output arity (`projection.len()`).
    pub fn output_arity(&self) -> usize {
        self.projection.len()
    }

    /// The distinct variables of the graph, sorted.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self.atoms.iter().flat_map(|a| [a.x, a.y]).collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Re-checks the structural invariants (engines call this so
    /// hand-constructed graphs are as safe as built ones): at least one
    /// atom, no self-loops, connected, acyclic, and a non-empty
    /// projection of distinct existing variables.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.atoms.is_empty() {
            return Err(QueryError::EmptyGraph);
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if atom.x == atom.y {
                return Err(QueryError::SelfLoopAtom { atom: i });
            }
        }
        let vars = self.variables();
        // A connected multigraph with |E| = |V| − 1 is a tree: no cycles
        // and no parallel atoms between the same variable pair.
        if self.atoms.len() != vars.len() - 1 {
            return Err(QueryError::CyclicQueryGraph);
        }
        if !self.is_connected(&vars) {
            return Err(QueryError::DisconnectedQueryGraph);
        }
        if self.projection.is_empty() {
            return Err(QueryError::EmptyProjection);
        }
        let mut seen = Vec::new();
        for &v in &self.projection {
            if vars.binary_search(&v).is_err() {
                return Err(QueryError::UnknownProjectionVar(v));
            }
            if seen.contains(&v) {
                return Err(QueryError::DuplicateProjectionVar(v));
            }
            seen.push(v);
        }
        Ok(())
    }

    fn is_connected(&self, vars: &[Var]) -> bool {
        let index = |v: Var| vars.binary_search(&v).expect("var collected above");
        let mut adjacent = vec![Vec::new(); vars.len()];
        for atom in &self.atoms {
            let (a, b) = (index(atom.x), index(atom.y));
            adjacent[a].push(b);
            adjacent[b].push(a);
        }
        let mut seen = vec![false; vars.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &n in &adjacent[v] {
                if !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::from_edges([(0, 0), (1, 0)])
    }

    #[test]
    fn chain_and_star_constructors_validate() {
        let rels = vec![rel(), rel(), rel()];
        let chain = QueryGraph::chain(&rels).unwrap();
        assert_eq!(chain.atoms().len(), 3);
        assert_eq!(chain.projection(), &[0, 3]);
        assert_eq!(chain.output_arity(), 2);
        assert_eq!(chain.variables(), vec![0, 1, 2, 3]);

        let star = QueryGraph::star(&rels).unwrap();
        assert_eq!(star.projection(), &[0, 1, 2]);
        assert_eq!(star.output_arity(), 3);

        let r = rel();
        let tp = QueryGraph::two_path(&r, &r);
        assert_eq!(tp.projection(), &[0, 2]);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let r = rel();
        let triangle = |a, b| Atom {
            relation: &r,
            x: a,
            y: b,
        };
        let err = QueryGraph::new(
            vec![triangle(0, 1), triangle(1, 2), triangle(2, 0)],
            vec![0],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::CyclicQueryGraph);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let r = rel();
        let atom = |a, b| Atom {
            relation: &r,
            x: a,
            y: b,
        };
        // Parallel atoms violate the tree edge count.
        let err = QueryGraph::new(vec![atom(0, 1), atom(0, 1)], vec![0]).unwrap_err();
        assert_eq!(err, QueryError::CyclicQueryGraph);
        // Parallel atoms plus a separate component keep |E| = |V| − 1;
        // the BFS still rejects the graph.
        let err = QueryGraph::new(vec![atom(0, 1), atom(0, 1), atom(2, 3)], vec![0]).unwrap_err();
        assert_eq!(err, QueryError::DisconnectedQueryGraph);
        // Too few atoms for the variable count reads as a broken tree too.
        let err = QueryGraph::new(vec![atom(0, 1), atom(2, 3), atom(3, 4)], vec![0]).unwrap_err();
        assert_eq!(err, QueryError::CyclicQueryGraph);
        // A cycle in one component can keep |E| = |V| − 1 while leaving
        // another component unreachable: only the BFS catches this.
        let err = QueryGraph::new(
            vec![atom(0, 1), atom(1, 2), atom(2, 0), atom(3, 4)],
            vec![0],
        )
        .unwrap_err();
        assert_eq!(err, QueryError::DisconnectedQueryGraph);
    }

    #[test]
    fn projection_errors() {
        let r = rel();
        let atom = Atom {
            relation: &r,
            x: 0,
            y: 1,
        };
        assert_eq!(
            QueryGraph::new(vec![atom], vec![]).unwrap_err(),
            QueryError::EmptyProjection
        );
        assert_eq!(
            QueryGraph::new(vec![atom], vec![7]).unwrap_err(),
            QueryError::UnknownProjectionVar(7)
        );
        assert_eq!(
            QueryGraph::new(vec![atom], vec![0, 0]).unwrap_err(),
            QueryError::DuplicateProjectionVar(0)
        );
        let looped = Atom {
            relation: &r,
            x: 3,
            y: 3,
        };
        assert_eq!(
            QueryGraph::new(vec![looped], vec![3]).unwrap_err(),
            QueryError::SelfLoopAtom { atom: 0 }
        );
        assert_eq!(
            QueryGraph::new(vec![], vec![0]).unwrap_err(),
            QueryError::EmptyGraph
        );
    }
}
