//! The uniform engine trait and its execution report.

use crate::query::{Query, QueryError, QueryFamily};
use crate::sink::Sink;
use std::fmt;

/// Which execution strategy a plan-based engine chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Plain worst-case-optimal expansion + dedup (the join was already
    /// output-like).
    Wcoj,
    /// Degree-partitioned plan: light expansion + heavy matrix core.
    MatrixPartitioned,
}

/// One step of a composed (decomposed general-query) plan, as reported
/// after execution — the per-step counterpart of [`PlanStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// What the step did: `"semijoin"`, `"join"`, `"star"`, `"project"`.
    pub op: &'static str,
    /// The variable the step joined (or filtered) on, if any.
    pub on_var: Option<u32>,
    /// The planner's §5 output-size estimate for this step.
    pub estimated_rows: Option<u64>,
    /// Rows the step actually materialised (or streamed, for the final
    /// step).
    pub actual_rows: Option<u64>,
    /// Strategy the underlying primitive chose, when it planned.
    pub kind: Option<PlanKind>,
    /// Degree thresholds `(Δ1, Δ2)` the primitive ran with, when
    /// matrix-partitioned.
    pub delta1: Option<u32>,
    /// See [`StepStats::delta1`].
    pub delta2: Option<u32>,
}

/// Plan details reported by engines that run Algorithm 1/3 (others leave
/// [`ExecStats::plan`] as `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStats {
    /// Chosen strategy.
    pub kind: PlanKind,
    /// Join-variable degree threshold `Δ1` (matrix plans only).
    pub delta1: Option<u32>,
    /// Head-variable degree threshold `Δ2` (matrix plans only).
    pub delta2: Option<u32>,
    /// Heavy partition dimensions `(|heavy x|, |heavy y|, |heavy z|)` —
    /// the factor-matrix shape of the heavy core, after pruning rows with
    /// no heavy-in-both join values (the shape actually built).
    pub heavy_dims: Option<(usize, usize, usize)>,
    /// Whether the heavy core was evaluated by matrix multiplication
    /// (`false`: the partition was degenerate or over the memory cap, so
    /// the heavy core fell back to combinatorial expansion).
    pub heavy_core_matrix: Option<bool>,
    /// Tuples handled by the light (expansion) passes per input relation:
    /// `(input size − heavy tuple mass)` for `(R, S)`.
    pub light_tuples: Option<(u64, u64)>,
    /// The optimizer's output-size estimate, when one was computed.
    pub estimated_out: Option<u64>,
    /// Predicted light-part seconds at the chosen thresholds.
    pub predicted_light_secs: Option<f64>,
    /// Predicted heavy-part seconds at the chosen thresholds.
    pub predicted_heavy_secs: Option<f64>,
    /// For composed (general-query) executions: one record per plan
    /// step, in execution order. Empty for single-primitive plans.
    pub steps: Vec<StepStats>,
}

impl PlanStats {
    /// A bare WCOJ plan record (no thresholds, no partitions).
    pub fn wcoj() -> Self {
        Self {
            kind: PlanKind::Wcoj,
            delta1: None,
            delta2: None,
            heavy_dims: None,
            heavy_core_matrix: None,
            light_tuples: None,
            estimated_out: None,
            predicted_light_secs: None,
            predicted_heavy_secs: None,
            steps: Vec::new(),
        }
    }

    /// A matrix-partitioned plan record with the chosen thresholds.
    pub fn partitioned(delta1: u32, delta2: u32) -> Self {
        Self {
            kind: PlanKind::MatrixPartitioned,
            delta1: Some(delta1),
            delta2: Some(delta2),
            heavy_dims: None,
            heavy_core_matrix: None,
            light_tuples: None,
            estimated_out: None,
            predicted_light_secs: None,
            predicted_heavy_secs: None,
            steps: Vec::new(),
        }
    }
}

/// Per-execution report returned by [`Engine::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecStats {
    /// Name of the engine that ran the query.
    pub engine: String,
    /// Distinct rows emitted to the sink.
    pub rows: u64,
    /// Plan details, for engines that plan.
    pub plan: Option<PlanStats>,
}

impl ExecStats {
    /// A stats record with no plan details.
    pub fn new(engine: impl Into<String>, rows: u64) -> Self {
        Self {
            engine: engine.into(),
            rows,
            plan: None,
        }
    }

    /// Attaches plan details.
    pub fn with_plan(mut self, plan: PlanStats) -> Self {
        self.plan = Some(plan);
        self
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query failed validation.
    InvalidQuery(QueryError),
    /// The engine does not implement this query family.
    Unsupported {
        /// Engine that rejected the query.
        engine: String,
        /// The rejected family.
        family: QueryFamily,
    },
    /// No engine under that name in the registry.
    UnknownEngine(String),
    /// The decomposing planner could not lower the query graph into
    /// 2-path/star primitive steps (see `mmjoin-core`'s plan module for
    /// the supported class).
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            EngineError::Unsupported { engine, family } => {
                // "this … query": an engine may support a family's plain form
                // but not a variant of it (e.g. counting 2-path).
                write!(f, "engine `{engine}` does not support this {family} query")
            }
            EngineError::UnknownEngine(name) => write!(f, "no engine registered as `{name}`"),
            EngineError::Plan(msg) => write!(f, "cannot plan query: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        EngineError::InvalidQuery(e)
    }
}

/// A query execution engine.
///
/// One object, one front door: every workload family an engine supports is
/// reachable through [`Engine::execute`]. Execution configuration (thread
/// counts, cost models, threshold overrides) lives in the engine value
/// itself, not in the query.
pub trait Engine: Send + Sync {
    /// Registry / report name. Must be unique within a registry.
    fn name(&self) -> &str;

    /// Whether this engine can execute `query`.
    fn supports(&self, query: &Query<'_>) -> bool;

    /// Executes `query`, streaming distinct output rows into `sink` and
    /// returning the execution report.
    ///
    /// Implementations must validate the query, call `sink.begin(arity)`
    /// before the first row, and emit rows in the order the query family
    /// specifies (see [`Query`]).
    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError>;

    /// Helper: the standard rejection for unsupported families.
    fn unsupported(&self, query: &Query<'_>) -> EngineError {
        EngineError::Unsupported {
            engine: self.name().to_string(),
            family: query.family(),
        }
    }
}
