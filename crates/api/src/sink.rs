//! Streaming output visitors.

use mmjoin_storage::Value;

/// Receives query output rows as the engine produces them.
///
/// Engines call [`Sink::begin`] once with the output arity, then
/// [`Sink::row`] (or [`Sink::counted_row`] for counting queries) once per
/// distinct output row. Sinks that ignore counts get the plain row; sinks
/// that ignore rows entirely (e.g. [`CountSink`]) never allocate.
pub trait Sink {
    /// Called once before the first row with the output arity.
    fn begin(&mut self, arity: usize) {
        let _ = arity;
    }

    /// One distinct output row.
    fn row(&mut self, row: &[Value]);

    /// One distinct output row with its witness multiplicity (counting
    /// 2-path queries and similarity joins). Defaults to dropping the
    /// count.
    fn counted_row(&mut self, row: &[Value], count: u32) {
        let _ = count;
        self.row(row);
    }
}

/// Materialises every row (and count) — the adapter that recovers the old
/// `Vec`-returning API.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Output arity announced by the engine.
    pub arity: usize,
    /// The rows, in emission order.
    pub rows: Vec<Vec<Value>>,
    /// Per-row witness counts; 0 for rows emitted without a count.
    pub counts: Vec<u32>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rows as `(a, b)` pairs (output arity must be 2).
    pub fn pairs(&self) -> Vec<(Value, Value)> {
        self.rows
            .iter()
            .map(|r| {
                debug_assert_eq!(r.len(), 2, "pairs() on arity-{} output", r.len());
                (r[0], r[1])
            })
            .collect()
    }

    /// The rows as `(a, b, count)` triples (arity must be 2).
    pub fn counted_pairs(&self) -> Vec<(Value, Value, u32)> {
        self.rows
            .iter()
            .zip(&self.counts)
            .map(|(r, &c)| (r[0], r[1], c))
            .collect()
    }

    /// Number of rows collected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Sink for VecSink {
    fn begin(&mut self, arity: usize) {
        self.arity = arity;
    }

    fn row(&mut self, row: &[Value]) {
        self.rows.push(row.to_vec());
        self.counts.push(0);
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        self.rows.push(row.to_vec());
        self.counts.push(count);
    }
}

/// Materialises arity-2 output as flat pairs — cheaper than [`VecSink`]
/// for the (dominant) binary workloads.
#[derive(Debug, Default, Clone)]
pub struct PairSink {
    /// The output pairs, in emission order.
    pub pairs: Vec<(Value, Value)>,
}

impl PairSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the pairs.
    pub fn into_pairs(self) -> Vec<(Value, Value)> {
        self.pairs
    }
}

impl Sink for PairSink {
    fn begin(&mut self, arity: usize) {
        assert_eq!(arity, 2, "PairSink requires arity-2 output, got {arity}");
    }

    fn row(&mut self, row: &[Value]) {
        self.pairs.push((row[0], row[1]));
    }
}

/// Counts rows without storing them — the "how big is the output" sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    /// Rows seen so far.
    pub rows: u64,
    /// Sum of witness counts over counted rows.
    pub witness_total: u64,
}

impl CountSink {
    /// Zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for CountSink {
    fn row(&mut self, _row: &[Value]) {
        self.rows += 1;
    }

    fn counted_row(&mut self, _row: &[Value], count: u32) {
        self.rows += 1;
        self.witness_total += count as u64;
    }
}

/// Adapts a closure `FnMut(&[Value], u32)` into a [`Sink`]; the count is 0
/// for uncounted rows.
pub struct ForEachSink<F: FnMut(&[Value], u32)>(pub F);

impl<F: FnMut(&[Value], u32)> Sink for ForEachSink<F> {
    fn row(&mut self, row: &[Value]) {
        (self.0)(row, 0);
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        (self.0)(row, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_rows_and_counts() {
        let mut s = VecSink::new();
        s.begin(2);
        s.row(&[1, 2]);
        s.counted_row(&[3, 4], 7);
        assert_eq!(s.arity, 2);
        assert_eq!(s.pairs(), vec![(1, 2), (3, 4)]);
        assert_eq!(s.counted_pairs(), vec![(1, 2, 0), (3, 4, 7)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn count_sink_counts_without_storing() {
        let mut s = CountSink::new();
        s.row(&[0, 0]);
        s.counted_row(&[0, 1], 5);
        s.counted_row(&[0, 2], 2);
        assert_eq!(s.rows, 3);
        assert_eq!(s.witness_total, 7);
    }

    #[test]
    fn for_each_sink_streams() {
        let mut seen = Vec::new();
        {
            let mut s = ForEachSink(|row: &[Value], c| seen.push((row.to_vec(), c)));
            s.row(&[9, 9]);
            s.counted_row(&[1, 1], 3);
        }
        assert_eq!(seen, vec![(vec![9, 9], 0), (vec![1, 1], 3)]);
    }

    #[test]
    #[should_panic(expected = "arity-2")]
    fn pair_sink_rejects_wrong_arity() {
        let mut s = PairSink::new();
        s.begin(3);
    }
}
