//! Streaming output visitors.

use mmjoin_storage::Value;

/// Receives query output rows as the engine produces them.
///
/// Engines call [`Sink::begin`] once with the output arity, then
/// [`Sink::row`] (or [`Sink::counted_row`] for counting queries) once per
/// distinct output row. Sinks that ignore counts get the plain row; sinks
/// that ignore rows entirely (e.g. [`CountSink`]) never allocate.
pub trait Sink {
    /// Called once before the first row with the output arity.
    fn begin(&mut self, arity: usize) {
        let _ = arity;
    }

    /// One distinct output row.
    fn row(&mut self, row: &[Value]);

    /// One distinct output row with its witness multiplicity (counting
    /// 2-path queries and similarity joins). Defaults to dropping the
    /// count.
    fn counted_row(&mut self, row: &[Value], count: u32) {
        let _ = count;
        self.row(row);
    }

    /// Whether the sink wants further rows. Engines consult this between
    /// emissions and may stop enumerating as soon as it turns `false`
    /// (early termination for `LIMIT`-style requests — see [`LimitSink`]).
    /// Engines are free to keep emitting; a bounding sink must therefore
    /// also *drop* excess rows itself, which [`LimitSink`] does.
    fn wants_more(&self) -> bool {
        true
    }
}

/// Materialises every row (and count) — the adapter that recovers the old
/// `Vec`-returning API.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// Output arity announced by the engine.
    pub arity: usize,
    /// The rows, in emission order.
    pub rows: Vec<Vec<Value>>,
    /// Per-row witness counts; 0 for rows emitted without a count.
    pub counts: Vec<u32>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The rows as `(a, b)` pairs (output arity must be 2).
    pub fn pairs(&self) -> Vec<(Value, Value)> {
        self.rows
            .iter()
            .map(|r| {
                debug_assert_eq!(r.len(), 2, "pairs() on arity-{} output", r.len());
                (r[0], r[1])
            })
            .collect()
    }

    /// The rows as `(a, b, count)` triples (arity must be 2).
    pub fn counted_pairs(&self) -> Vec<(Value, Value, u32)> {
        self.rows
            .iter()
            .zip(&self.counts)
            .map(|(r, &c)| (r[0], r[1], c))
            .collect()
    }

    /// Number of rows collected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows were collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Sink for VecSink {
    fn begin(&mut self, arity: usize) {
        self.arity = arity;
    }

    fn row(&mut self, row: &[Value]) {
        self.rows.push(row.to_vec());
        self.counts.push(0);
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        self.rows.push(row.to_vec());
        self.counts.push(count);
    }
}

/// Materialises arity-2 output as flat pairs — cheaper than [`VecSink`]
/// for the (dominant) binary workloads.
#[derive(Debug, Default, Clone)]
pub struct PairSink {
    /// The output pairs, in emission order.
    pub pairs: Vec<(Value, Value)>,
}

impl PairSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the pairs.
    pub fn into_pairs(self) -> Vec<(Value, Value)> {
        self.pairs
    }
}

impl Sink for PairSink {
    fn begin(&mut self, arity: usize) {
        assert_eq!(arity, 2, "PairSink requires arity-2 output, got {arity}");
    }

    fn row(&mut self, row: &[Value]) {
        self.pairs.push((row[0], row[1]));
    }
}

/// Counts rows without storing them — the "how big is the output" sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink {
    /// Rows seen so far.
    pub rows: u64,
    /// Sum of witness counts over counted rows.
    pub witness_total: u64,
}

impl CountSink {
    /// Zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Sink for CountSink {
    fn row(&mut self, _row: &[Value]) {
        self.rows += 1;
    }

    fn counted_row(&mut self, _row: &[Value], count: u32) {
        self.rows += 1;
        self.witness_total += count as u64;
    }
}

/// Bounds an inner sink to at most `limit` rows — the `LIMIT` adapter.
///
/// Rows beyond the limit are dropped, and [`Sink::wants_more`] turns
/// `false` once the quota is reached so cooperative engines stop
/// *emitting* early. Note the bound applies to the output stream: the
/// current engines materialise their full result before streaming it,
/// so a limit saves emission and everything downstream of the sink (row
/// copies, caching, transport) but not the join computation itself.
#[derive(Debug, Clone)]
pub struct LimitSink<S: Sink> {
    inner: S,
    limit: u64,
    emitted: u64,
}

impl<S: Sink> LimitSink<S> {
    /// Caps `inner` at `limit` rows.
    pub fn new(inner: S, limit: u64) -> Self {
        Self {
            inner,
            limit,
            emitted: 0,
        }
    }

    /// Rows forwarded to the inner sink so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether the limit was reached. The stream *may* have been cut
    /// short — an output of exactly `limit` rows also reports `true`,
    /// because a cooperative engine stops before revealing whether more
    /// rows existed.
    pub fn limit_reached(&self) -> bool {
        self.emitted >= self.limit
    }

    /// Consumes the adapter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: Sink> Sink for LimitSink<S> {
    fn begin(&mut self, arity: usize) {
        self.inner.begin(arity);
    }

    fn row(&mut self, row: &[Value]) {
        if self.emitted < self.limit {
            self.emitted += 1;
            self.inner.row(row);
        }
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        if self.emitted < self.limit {
            self.emitted += 1;
            self.inner.counted_row(row, count);
        }
    }

    fn wants_more(&self) -> bool {
        self.emitted < self.limit && self.inner.wants_more()
    }
}

/// Streams materialised pairs into `sink` (calling [`Sink::begin`] with
/// arity 2 first), stopping as soon as the sink stops wanting rows.
/// Returns the number of rows emitted — the shared emission loop every
/// pair-producing engine uses.
pub fn emit_pairs(sink: &mut dyn Sink, pairs: &[(Value, Value)]) -> u64 {
    sink.begin(2);
    let mut rows = 0u64;
    for &(a, b) in pairs {
        if !sink.wants_more() {
            break;
        }
        sink.row(&[a, b]);
        rows += 1;
    }
    rows
}

/// Streams `(a, b, count)` triples into `sink` (arity 2). With
/// `counted`, rows go through [`Sink::counted_row`]; otherwise the count
/// is dropped and plain [`Sink::row`] is used (the unordered-similarity
/// contract). Stops early when the sink stops wanting rows; returns the
/// emitted row count.
pub fn emit_counted_pairs(
    sink: &mut dyn Sink,
    triples: &[(Value, Value, u32)],
    counted: bool,
) -> u64 {
    sink.begin(2);
    let mut rows = 0u64;
    for &(a, b, count) in triples {
        if !sink.wants_more() {
            break;
        }
        if counted {
            sink.counted_row(&[a, b], count);
        } else {
            sink.row(&[a, b]);
        }
        rows += 1;
    }
    rows
}

/// Streams arity-`arity` tuples into `sink`, stopping early when the
/// sink stops wanting rows; returns the emitted row count.
pub fn emit_tuples(sink: &mut dyn Sink, arity: usize, tuples: &[Vec<Value>]) -> u64 {
    sink.begin(arity);
    let mut rows = 0u64;
    for t in tuples {
        if !sink.wants_more() {
            break;
        }
        sink.row(t);
        rows += 1;
    }
    rows
}

/// Accumulates signed row deltas — the sink behind incremental view
/// maintenance.
///
/// Each emitted row contributes `sign × max(count, 1)` to that row's
/// entry; entries that cancel to zero are dropped on read. Running the
/// delta joins of the maintenance identity
/// `Δ(R ⋈ S) = ΔR⋈S + R⋈ΔS + ΔR⋈ΔS` into one `DeltaSink` (flipping
/// [`set_sign`](DeltaSink::set_sign) between the `+`/`−` delta parts)
/// yields exactly the per-row support-count adjustments to apply to a
/// cached result. A `BTreeMap` keeps iteration deterministic, so
/// maintained results have a canonical (sorted) row order.
#[derive(Debug, Clone)]
pub struct DeltaSink {
    sign: i64,
    deltas: std::collections::BTreeMap<Vec<Value>, i64>,
}

impl Default for DeltaSink {
    fn default() -> Self {
        Self::new()
    }
}

impl DeltaSink {
    /// An empty accumulator with sign `+1`.
    pub fn new() -> Self {
        Self {
            sign: 1,
            deltas: std::collections::BTreeMap::new(),
        }
    }

    /// Sets the sign applied to subsequently emitted rows (`+1` for an
    /// inserted-side join term, `−1` for a deleted-side one).
    pub fn set_sign(&mut self, sign: i64) {
        self.sign = sign;
    }

    /// Adds `delta` to `row` directly, without going through the engine
    /// emission path (used for hand-computed join terms).
    pub fn add(&mut self, row: &[Value], delta: i64) {
        if delta != 0 {
            *self.deltas.entry(row.to_vec()).or_insert(0) += delta;
        }
    }

    /// Consumes the sink, returning the accumulated non-zero deltas in
    /// row-sorted order.
    pub fn into_deltas(self) -> std::collections::BTreeMap<Vec<Value>, i64> {
        let mut deltas = self.deltas;
        deltas.retain(|_, d| *d != 0);
        deltas
    }

    /// Number of rows currently tracked (including cancelled ones not yet
    /// compacted).
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True when no deltas have accumulated.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }
}

impl Sink for DeltaSink {
    fn row(&mut self, row: &[Value]) {
        self.add(row, self.sign);
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        self.add(row, self.sign * count.max(1) as i64);
    }
}

/// Adapts a closure `FnMut(&[Value], u32)` into a [`Sink`]; the count is 0
/// for uncounted rows.
pub struct ForEachSink<F: FnMut(&[Value], u32)>(pub F);

impl<F: FnMut(&[Value], u32)> Sink for ForEachSink<F> {
    fn row(&mut self, row: &[Value]) {
        (self.0)(row, 0);
    }

    fn counted_row(&mut self, row: &[Value], count: u32) {
        (self.0)(row, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_records_rows_and_counts() {
        let mut s = VecSink::new();
        s.begin(2);
        s.row(&[1, 2]);
        s.counted_row(&[3, 4], 7);
        assert_eq!(s.arity, 2);
        assert_eq!(s.pairs(), vec![(1, 2), (3, 4)]);
        assert_eq!(s.counted_pairs(), vec![(1, 2, 0), (3, 4, 7)]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn count_sink_counts_without_storing() {
        let mut s = CountSink::new();
        s.row(&[0, 0]);
        s.counted_row(&[0, 1], 5);
        s.counted_row(&[0, 2], 2);
        assert_eq!(s.rows, 3);
        assert_eq!(s.witness_total, 7);
    }

    #[test]
    fn for_each_sink_streams() {
        let mut seen = Vec::new();
        {
            let mut s = ForEachSink(|row: &[Value], c| seen.push((row.to_vec(), c)));
            s.row(&[9, 9]);
            s.counted_row(&[1, 1], 3);
        }
        assert_eq!(seen, vec![(vec![9, 9], 0), (vec![1, 1], 3)]);
    }

    #[test]
    #[should_panic(expected = "arity-2")]
    fn pair_sink_rejects_wrong_arity() {
        let mut s = PairSink::new();
        s.begin(3);
    }

    #[test]
    fn limit_sink_caps_and_signals() {
        let mut s = LimitSink::new(VecSink::new(), 2);
        s.begin(2);
        assert!(s.wants_more());
        s.row(&[0, 0]);
        s.counted_row(&[0, 1], 3);
        assert!(!s.wants_more());
        // Non-cooperative engine keeps emitting: rows are dropped.
        s.row(&[0, 2]);
        assert_eq!(s.emitted(), 2);
        assert!(s.limit_reached());
        let inner = s.into_inner();
        assert_eq!(inner.pairs(), vec![(0, 0), (0, 1)]);
        assert_eq!(inner.counts, vec![0, 3]);
    }

    #[test]
    fn limit_sink_zero_limit_wants_nothing() {
        let s = LimitSink::new(CountSink::new(), 0);
        assert!(!s.wants_more());
    }

    #[test]
    fn delta_sink_accumulates_signed_counts() {
        let mut s = DeltaSink::new();
        s.counted_row(&[0, 1], 2); // +2
        s.row(&[0, 2]); // +1
        s.set_sign(-1);
        s.counted_row(&[0, 1], 1); // net +1
        s.row(&[0, 3]); // -1
        let deltas = s.into_deltas();
        assert_eq!(deltas.get(&vec![0, 1]), Some(&1));
        assert_eq!(deltas.get(&vec![0, 2]), Some(&1));
        assert_eq!(deltas.get(&vec![0, 3]), Some(&-1));
    }

    #[test]
    fn delta_sink_drops_cancelled_rows() {
        let mut s = DeltaSink::new();
        s.counted_row(&[7, 7], 3);
        s.set_sign(-1);
        s.counted_row(&[7, 7], 3);
        assert!(s.into_deltas().is_empty());
    }

    #[test]
    fn delta_sink_uncounted_rows_weigh_one() {
        // row() and counted_row(_, 1) must agree, so maintenance terms can
        // come from either emission path.
        let mut a = DeltaSink::new();
        a.row(&[1, 2]);
        let mut b = DeltaSink::new();
        b.counted_row(&[1, 2], 1);
        assert_eq!(a.into_deltas(), b.into_deltas());
    }
}
