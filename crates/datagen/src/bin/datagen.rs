//! Dataset dump utility: writes the synthetic datasets as edge-list files
//! loadable by `mmjoin_storage::io::read_edge_list` (or any other tool).
//!
//! ```text
//! datagen <dataset|all> [--scale <f64>] [--seed <u64>] [--out <dir>]
//! ```

use mmjoin_datagen::{DatasetKind, Table2Row};
use mmjoin_storage::io::write_edge_list;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().cloned().unwrap_or_else(|| "all".to_string());
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scale: f64 = flag("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(2020);
    let out_dir = PathBuf::from(flag("--out").unwrap_or_else(|| "datasets".to_string()));

    let kinds: Vec<DatasetKind> = match target.as_str() {
        "all" => DatasetKind::ALL.to_vec(),
        name => {
            let found = DatasetKind::ALL
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(name));
            match found {
                Some(k) => vec![k],
                None => {
                    eprintln!(
                        "unknown dataset `{name}`; expected one of {:?} or `all`",
                        DatasetKind::ALL.map(|k| k.name())
                    );
                    std::process::exit(2);
                }
            }
        }
    };

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "Dataset", "|R|", "Sets", "|dom|", "AvgSetSize", "MinSet", "MaxSet"
    );
    for kind in kinds {
        let r = mmjoin_datagen::generate(kind, scale, seed);
        let path = out_dir.join(format!(
            "{}_s{}_seed{}.edges",
            kind.name().to_lowercase(),
            scale,
            seed
        ));
        let file = File::create(&path).expect("create dataset file");
        write_edge_list(&r, BufWriter::new(file)).expect("write dataset");
        println!("{}", Table2Row::measure(kind, &r).format_row());
    }
    println!("wrote edge lists to {}", out_dir.display());
}
