//! Table 2 reporting: dataset characteristics of a generated relation.

use crate::profile::DatasetKind;
use mmjoin_storage::Relation;

/// One row of Table 2, measured from an actual relation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dataset name.
    pub name: &'static str,
    /// `|R|` — number of tuples.
    pub tuples: usize,
    /// Number of sets (active `x` values).
    pub num_sets: usize,
    /// `|dom|` — number of distinct elements (active `y` values).
    pub domain: usize,
    /// Average set size.
    pub avg_set: f64,
    /// Minimum set size (over non-empty sets).
    pub min_set: usize,
    /// Maximum set size.
    pub max_set: usize,
}

impl Table2Row {
    /// Measures the Table 2 statistics of `r`.
    pub fn measure(kind: DatasetKind, r: &Relation) -> Self {
        let mut min_set = usize::MAX;
        let mut max_set = 0usize;
        let mut num_sets = 0usize;
        for (_, row) in r.by_x().iter_nonempty() {
            num_sets += 1;
            min_set = min_set.min(row.len());
            max_set = max_set.max(row.len());
        }
        if num_sets == 0 {
            min_set = 0;
        }
        Self {
            name: kind.name(),
            tuples: r.len(),
            num_sets,
            domain: r.active_y_count(),
            avg_set: if num_sets > 0 {
                r.len() as f64 / num_sets as f64
            } else {
                0.0
            },
            min_set,
            max_set,
        }
    }

    /// Formats as a fixed-width table row.
    pub fn format_row(&self) -> String {
        format!(
            "{:<10} {:>10} {:>10} {:>10} {:>12.1} {:>8} {:>8}",
            self.name,
            self.tuples,
            self.num_sets,
            self.domain,
            self.avg_set,
            self.min_set,
            self.max_set
        )
    }
}

/// Generates every dataset at `scale` and renders the full Table 2 report.
pub fn table2_report(scale: f64, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>8} {:>8}\n",
        "Dataset", "|R|", "Sets", "|dom|", "AvgSetSize", "MinSet", "MaxSet"
    ));
    for kind in DatasetKind::ALL {
        let r = crate::generate(kind, scale, seed);
        let row = Table2Row::measure(kind, &r);
        out.push_str(&row.format_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_storage::Relation;

    #[test]
    fn measures_simple_relation() {
        let r = Relation::from_edges([(0, 0), (0, 1), (1, 2)]);
        let row = Table2Row::measure(DatasetKind::Dblp, &r);
        assert_eq!(row.tuples, 3);
        assert_eq!(row.num_sets, 2);
        assert_eq!(row.domain, 3);
        assert_eq!(row.min_set, 1);
        assert_eq!(row.max_set, 2);
        assert!((row.avg_set - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_row() {
        let r = Relation::from_edges([]);
        let row = Table2Row::measure(DatasetKind::RoadNet, &r);
        assert_eq!(row.tuples, 0);
        assert_eq!(row.num_sets, 0);
        assert_eq!(row.min_set, 0);
        assert_eq!(row.avg_set, 0.0);
    }

    #[test]
    fn report_contains_all_datasets() {
        let report = table2_report(0.02, 1);
        for name in ["DBLP", "RoadNet", "Jokes", "Words", "Protein", "Image"] {
            assert!(report.contains(name), "missing {name} in report");
        }
    }
}
