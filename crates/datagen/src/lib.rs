//! Seeded synthetic dataset generators for the six evaluation datasets.
//!
//! The paper's experiments run on real datasets (Table 2): DBLP, RoadNet,
//! Jokes, Words, Protein and Image. Those files are not redistributable
//! inside this repository, so this crate generates synthetic bipartite
//! graphs that reproduce the *characteristics the algorithms are sensitive
//! to*: number of sets, domain size, average/min/max set size, skew, and —
//! crucially — the duplication structure (dense community blocks for
//! Jokes/Protein/Image, Zipfian token popularity for Words/DBLP, near-tree
//! sparsity for RoadNet). See DESIGN.md "Substitutions".
//!
//! All generators are deterministic in `(kind, scale, seed)`.
//!
//! A relation `R(x, y)` is read as "set `x` contains element `y`", matching
//! the paper's set-oriented view of the 2-path self join.

pub mod profile;
pub mod table2;

pub use profile::{DatasetKind, DatasetSpec};
pub use table2::{table2_report, Table2Row};

use mmjoin_storage::{Relation, RelationBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the relation for `kind` at `scale` (1.0 = the scaled-down
/// defaults of DESIGN.md; the paper's full sizes would be `scale ≈ 50+`)
/// with the given RNG `seed`.
///
/// ```
/// use mmjoin_datagen::{generate, DatasetKind};
/// let a = generate(DatasetKind::Jokes, 0.05, 42);
/// let b = generate(DatasetKind::Jokes, 0.05, 42);
/// assert_eq!(a.edges(), b.edges()); // fully deterministic in (kind, scale, seed)
/// ```
pub fn generate(kind: DatasetKind, scale: f64, seed: u64) -> Relation {
    let spec = DatasetSpec::scaled(kind, scale);
    generate_from_spec(&spec, seed)
}

/// Generates a relation from an explicit [`DatasetSpec`].
pub fn generate_from_spec(spec: &DatasetSpec, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = RelationBuilder::new().with_capacity(spec.expected_tuples());
    match spec.kind {
        DatasetKind::RoadNet => gen_roadnet(spec, &mut rng, &mut builder),
        DatasetKind::Dblp => gen_sparse_bipartite(spec, &mut rng, &mut builder),
        DatasetKind::Words => gen_zipf(spec, &mut rng, &mut builder),
        DatasetKind::Jokes | DatasetKind::Protein | DatasetKind::Image => {
            gen_community(spec, &mut rng, &mut builder)
        }
    }
    builder.build()
}

/// Generates `k` relations over a shared element domain for star-query
/// experiments (each relation gets an independent sub-seed).
pub fn generate_star(kind: DatasetKind, scale: f64, seed: u64, k: usize) -> Vec<Relation> {
    (0..k)
        .map(|i| generate(kind, scale, seed.wrapping_add(i as u64 * 0x517c_c1b7)))
        .collect()
}

/// Generates the `k` relations of a skewed chain-query instance
/// `Q(x0, xk) :- R1(x0, x1), R2(x1, x2), …` for the chain experiments:
/// each hop is a fresh Zipf-skewed bipartite relation (the Words
/// profile, the most duplication-prone sparse shape), transposed on odd
/// hops so consecutive domains line up (set → element → set → …). The
/// Zipf hubs make the full k-path join grow multiplicatively in `k`
/// while the projected output stays near-quadratic — the regime where
/// decomposed join-project evaluation wins.
pub fn generate_chain(scale: f64, seed: u64, k: usize) -> Vec<Relation> {
    (0..k)
        .map(|i| {
            let r = generate(
                DatasetKind::Words,
                scale,
                seed.wrapping_add(i as u64 * 0x9e37_79b9),
            );
            if i % 2 == 1 {
                r.transposed()
            } else {
                r
            }
        })
        .collect()
}

/// Sparse, low-degree, near-uniform graph: road networks have average set
/// size ≈ 1.5 with tiny variance and essentially no duplication.
fn gen_roadnet(spec: &DatasetSpec, rng: &mut StdRng, b: &mut RelationBuilder) {
    for x in 0..spec.num_sets {
        // Degrees 1..=4 with mean ≈ 1.5 (geometric-ish).
        let d = 1
            + (rng.gen_range(0..8) == 0) as usize
            + (rng.gen_range(0..4) == 0) as usize
            + (rng.gen_range(0..4) == 0) as usize;
        let d = d.clamp(spec.min_set, spec.max_set);
        // Elements local to the set id: a road segment connects nearby
        // junctions, giving the grid-like locality of a road network.
        for _ in 0..d {
            let spread = (spec.domain / 100).max(4) as i64;
            let base = (x as i64 * spec.domain as i64) / spec.num_sets as i64;
            let off = rng.gen_range(-spread..=spread);
            let y = (base + off).rem_euclid(spec.domain as i64) as Value;
            b.push(x as Value, y);
        }
    }
}

/// Sparse author–paper bipartite graph: the DBLP shape. Generated
/// element-centrically — each *paper* (`y`) has a small author count
/// (mean ≈ 2.5, geometric tail), with authors drawn Zipf-skewed (prolific
/// authors exist but no element is shared by a large fraction of sets).
/// This keeps the join-project output near-linear, which is why the paper's
/// optimizer falls back to the plain WCOJ plan on DBLP (§7.2).
fn gen_sparse_bipartite(spec: &DatasetSpec, rng: &mut StdRng, b: &mut RelationBuilder) {
    let zipf = Zipf::new(spec.num_sets, spec.zipf_exponent);
    // Mean authors per paper from the target average set size.
    let mean_deg = (spec.avg_set as f64 * spec.num_sets as f64 / spec.domain as f64).max(1.0);
    for y in 0..spec.domain {
        // Geometric-ish author count: 1 + Exp(mean - 1), capped.
        let u: f64 = rng.gen_range(1e-9..1.0f64);
        let d = (1.0 + (-u.ln()) * (mean_deg - 1.0).max(0.1)).round() as usize;
        let d = d.clamp(1, 16);
        for _ in 0..d {
            let x = zipf.sample(rng) as Value;
            b.push(x, y as Value);
        }
    }
}

/// Zipf-distributed element popularity with long-tailed set sizes: the
/// Words (document–token) shape — a handful of stopword-like tokens appear
/// in most documents, producing the dense behaviour of §7.
fn gen_zipf(spec: &DatasetSpec, rng: &mut StdRng, b: &mut RelationBuilder) {
    let zipf = Zipf::new(spec.domain, spec.zipf_exponent);
    for x in 0..spec.num_sets {
        let d = sample_set_size(spec, rng);
        for _ in 0..d {
            let y = zipf.sample(rng) as Value;
            b.push(x as Value, y);
        }
    }
}

/// Dense-core model for Jokes / Protein / Image. The paper's dense datasets
/// share a *globally* popular element core (stopwords in jokes, ubiquitous
/// image features, hub proteins): a `core_frac` slice of the domain appears
/// in a large fraction `p` of all sets, plus community-localised tail
/// elements. The core makes the heavy adjacency block genuinely dense
/// (density ≈ p), which is the regime where SGEMM crushes combinatorial
/// expansion — the full join is `Θ(core · p² · sets²)` while the projected
/// output is only `Θ(sets²)`, a duplication ratio of `core · p²`.
fn gen_community(spec: &DatasetSpec, rng: &mut StdRng, b: &mut RelationBuilder) {
    let (core_frac, p_lo, p_hi) = match spec.kind {
        DatasetKind::Image => (0.40, 0.70, 0.95),
        DatasetKind::Protein => (0.30, 0.45, 0.85),
        _ => (0.25, 0.35, 0.70), // Jokes
    };
    let core = ((spec.domain as f64 * core_frac) as usize).max(1);
    let tail = spec.domain - core;
    let communities = spec.communities.max(1);
    let comm_size = (tail / communities).max(1);
    for x in 0..spec.num_sets {
        // Per-set core affinity p: the set contains the *prefix* of the
        // core up to rank p (features graded by prevalence). Prefix cores
        // nest, which also reproduces the paper's observation that on
        // dense datasets the SCJ result is large and close to the
        // join-project result (§7.4).
        let p: f64 = rng.gen_range(p_lo..p_hi);
        let core_len = ((core as f64 * p) as usize).clamp(1, core);
        for e in 0..core_len {
            b.push(x as Value, e as Value);
        }
        // ~40% of sets are pure-core (containment chains); the rest add
        // community-localised tail elements so the light path and the
        // SCJ blocking filters have real work.
        if tail > 0 && !rng.gen_bool(0.4) {
            let c = rng.gen_range(0..communities);
            let lo = core + c * comm_size;
            let d = sample_set_size(spec, rng) / 4;
            for _ in 0..d {
                let y = lo + rng.gen_range(0..comm_size);
                b.push(x as Value, (y.min(spec.domain - 1)) as Value);
            }
        }
    }
}

/// Log-normal-ish set size within `[min_set, max_set]` with mean close to
/// `avg_set`.
fn sample_set_size(spec: &DatasetSpec, rng: &mut StdRng) -> usize {
    let mean = spec.avg_set as f64;
    // Exponential around the mean, clamped: produces the long tail of
    // Table 2 without a heavy dependency.
    let u: f64 = rng.gen_range(1e-9..1.0f64);
    let v = (-u.ln()) * mean;
    // At extreme down-scales min_set can exceed the scaled max_set; the max
    // wins (it bounds memory).
    let lo = spec.min_set.min(spec.max_set);
    (v.round() as usize).clamp(lo, spec.max_set)
}

/// Bounded Zipf sampler over `1..=n` (shifted to `0..n`), via rejection-free
/// inverse-CDF approximation (Gray's method).
struct Zipf {
    n: usize,
    s: f64,
    /// Normalizing integral terms.
    t: f64,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let t = if (s - 1.0).abs() < 1e-9 {
            1.0 + (n as f64).ln()
        } else {
            ((n as f64).powf(1.0 - s) - s) / (1.0 - s)
        };
        Self { n, s, t }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        // Inverse-CDF of the continuous envelope, accept-reject against the
        // discrete pmf; acceptance is high for s in (0.5, 2].
        loop {
            let u: f64 = rng.gen();
            let x = if (self.s - 1.0).abs() < 1e-9 {
                (u * self.t).exp()
            } else {
                let inner = u * self.t * (1.0 - self.s) + self.s;
                if inner <= 0.0 {
                    1.0
                } else {
                    inner.powf(1.0 / (1.0 - self.s))
                }
            };
            let k = x.floor().max(1.0) as usize;
            if k <= self.n {
                let ratio = (k as f64 / x).powf(self.s);
                if rng.gen::<f64>() < ratio {
                    return k - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(DatasetKind::Dblp, 0.1, 42);
        let b = generate(DatasetKind::Dblp, 0.1, 42);
        assert_eq!(a.edges(), b.edges());
        let c = generate(DatasetKind::Dblp, 0.1, 43);
        assert_ne!(a.edges(), c.edges(), "different seeds differ");
    }

    #[test]
    fn all_kinds_generate_nonempty() {
        for kind in DatasetKind::ALL {
            let r = generate(kind, 0.05, 7);
            assert!(!r.is_empty(), "{kind:?} generated an empty relation");
            assert!(r.active_x_count() > 0);
        }
    }

    #[test]
    fn scaled_sizes_track_spec() {
        let spec = DatasetSpec::scaled(DatasetKind::Jokes, 0.1);
        let r = generate_from_spec(&spec, 1);
        // Number of sets should match the spec exactly; tuples approximately
        // (dedup shrinks dense sets).
        assert!(r.active_x_count() <= spec.num_sets);
        assert!(r.active_x_count() as f64 >= spec.num_sets as f64 * 0.5);
        assert!(r.y_domain() <= spec.domain);
    }

    #[test]
    fn community_datasets_are_denser_than_sparse_ones() {
        let dense = generate(DatasetKind::Protein, 0.1, 3);
        let sparse = generate(DatasetKind::RoadNet, 0.1, 3);
        let density = |r: &Relation| r.len() as f64 / r.active_x_count().max(1) as f64;
        assert!(
            density(&dense) > 10.0 * density(&sparse),
            "protein avg set size {} should dwarf roadnet {}",
            density(&dense),
            density(&sparse)
        );
    }

    #[test]
    fn roadnet_degrees_tiny() {
        let r = generate(DatasetKind::RoadNet, 0.2, 5);
        let avg = r.len() as f64 / r.active_x_count() as f64;
        assert!((1.0..3.0).contains(&avg), "roadnet avg degree {avg}");
    }

    #[test]
    fn star_relations_distinct() {
        let rels = generate_star(DatasetKind::Dblp, 0.05, 11, 3);
        assert_eq!(rels.len(), 3);
        assert_ne!(rels[0].edges(), rels[1].edges());
        assert_ne!(rels[1].edges(), rels[2].edges());
    }

    #[test]
    fn zipf_sampler_in_range_and_skewed() {
        let z = Zipf::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let v = z.sample(&mut rng);
            assert!(v < 1000);
            if v < 10 {
                head += 1;
            }
        }
        // Zipf(1.1): the top-10 of 1000 values should absorb a large share.
        assert!(head > N / 5, "head share {head}/{N} too small for zipf");
    }
}
