//! Dataset profiles: the Table 2 characteristics, scaled.

/// The six evaluation datasets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// DBLP author–paper bipartite graph: sparse, small sets, large domain.
    Dblp,
    /// Pennsylvania road network: extremely sparse, avg degree 1.5.
    RoadNet,
    /// Reddit jokes–word graph: dense, large sets, small domain.
    Jokes,
    /// Document–token bags-of-words: mid-density, Zipfian tokens.
    Words,
    /// Protein interaction bipartite graph: densest, huge sets.
    Protein,
    /// Image–feature graph: dense with a high *minimum* set size
    /// (near-clique output, the dataset where EmptyHeaded shines).
    Image,
}

impl DatasetKind {
    /// All six kinds in the paper's Table 2 order.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Dblp,
        DatasetKind::RoadNet,
        DatasetKind::Jokes,
        DatasetKind::Words,
        DatasetKind::Protein,
        DatasetKind::Image,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Dblp => "DBLP",
            DatasetKind::RoadNet => "RoadNet",
            DatasetKind::Jokes => "Jokes",
            DatasetKind::Words => "Words",
            DatasetKind::Protein => "Protein",
            DatasetKind::Image => "Image",
        }
    }

    /// True for the four datasets the paper classifies as dense (§7.1).
    pub fn is_dense(&self) -> bool {
        matches!(
            self,
            DatasetKind::Jokes | DatasetKind::Words | DatasetKind::Protein | DatasetKind::Image
        )
    }
}

/// A concrete generation target: Table 2's columns plus the generator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Which family.
    pub kind: DatasetKind,
    /// Number of sets (distinct `x`).
    pub num_sets: usize,
    /// Element domain size (`|dom(y)|`).
    pub domain: usize,
    /// Target average set size.
    pub avg_set: usize,
    /// Minimum set size.
    pub min_set: usize,
    /// Maximum set size.
    pub max_set: usize,
    /// Zipf exponent for element popularity (Zipfian kinds only).
    pub zipf_exponent: f64,
    /// Community count (community kinds only).
    pub communities: usize,
}

impl DatasetSpec {
    /// The scaled-down base profile for `kind` at `scale = 1.0`.
    ///
    /// Base sizes are roughly 1/50–1/400 of Table 2, chosen so that the full
    /// experiment suite completes on a laptop while preserving each
    /// dataset's set-size/domain ratios (the quantity the algorithms are
    /// sensitive to). `scale` multiplies set count and domain
    /// proportionally.
    pub fn scaled(kind: DatasetKind, scale: f64) -> Self {
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(2);
        match kind {
            // Table 2: 10M tuples, 1.5M sets, dom 3M, avg 6.6, max 500.
            DatasetKind::Dblp => Self {
                kind,
                num_sets: s(30_000),
                domain: s(60_000),
                avg_set: 7,
                min_set: 1,
                max_set: 500,
                zipf_exponent: 1.05,
                communities: 0,
            },
            // Table 2: 1.5M tuples, 1M sets, dom 1M, avg 1.5, max 20.
            DatasetKind::RoadNet => Self {
                kind,
                num_sets: s(60_000),
                domain: s(60_000),
                avg_set: 2,
                min_set: 1,
                max_set: 20,
                zipf_exponent: 0.0,
                communities: 0,
            },
            // Table 2: 400M tuples, 70K sets, dom 50K, avg 5.7K.
            DatasetKind::Jokes => Self {
                kind,
                num_sets: s(2_200),
                domain: s(1_600),
                avg_set: (180.0 * scale.sqrt()) as usize + 2,
                min_set: 4,
                max_set: s(320),
                zipf_exponent: 0.0,
                communities: 8,
            },
            // Table 2: 500M tuples, 1M sets, dom 150K, avg 500.
            DatasetKind::Words => Self {
                kind,
                num_sets: s(10_000),
                domain: s(5_000),
                avg_set: (16.0 * scale.sqrt()) as usize + 2,
                min_set: 1,
                max_set: s(300),
                zipf_exponent: 1.1,
                communities: 0,
            },
            // Table 2: 900M tuples, 60K sets, dom 60K, avg 15K (25% density).
            DatasetKind::Protein => Self {
                kind,
                num_sets: s(1_900),
                domain: s(1_900),
                avg_set: (470.0 * scale.sqrt()) as usize + 2,
                min_set: 2,
                max_set: s(1_500),
                zipf_exponent: 0.0,
                communities: 5,
            },
            // Table 2: 800M tuples, 70K sets, dom 50K, avg 11.4K, min 10K.
            DatasetKind::Image => Self {
                kind,
                num_sets: s(2_100),
                domain: s(1_500),
                avg_set: (340.0 * scale.sqrt()) as usize + 2,
                min_set: (300.0 * scale.sqrt()) as usize + 1,
                max_set: s(1_500),
                zipf_exponent: 0.0,
                communities: 3,
            },
        }
    }

    /// Rough tuple-count estimate for pre-allocation.
    pub fn expected_tuples(&self) -> usize {
        self.num_sets * self.avg_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = DatasetKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["DBLP", "RoadNet", "Jokes", "Words", "Protein", "Image"]
        );
    }

    #[test]
    fn density_classification() {
        assert!(!DatasetKind::Dblp.is_dense());
        assert!(!DatasetKind::RoadNet.is_dense());
        assert!(DatasetKind::Jokes.is_dense());
        assert!(DatasetKind::Image.is_dense());
    }

    #[test]
    fn scale_shrinks_spec() {
        let full = DatasetSpec::scaled(DatasetKind::Dblp, 1.0);
        let tiny = DatasetSpec::scaled(DatasetKind::Dblp, 0.1);
        assert!(tiny.num_sets < full.num_sets);
        assert!(tiny.domain < full.domain);
        assert!(tiny.num_sets >= 2);
    }

    #[test]
    fn ratios_preserved_across_scales() {
        for kind in DatasetKind::ALL {
            let a = DatasetSpec::scaled(kind, 1.0);
            let b = DatasetSpec::scaled(kind, 0.5);
            let ratio_a = a.domain as f64 / a.num_sets as f64;
            let ratio_b = b.domain as f64 / b.num_sets as f64;
            assert!(
                (ratio_a / ratio_b - 1.0).abs() < 0.1,
                "{kind:?}: domain/sets ratio drifted {ratio_a} vs {ratio_b}"
            );
        }
    }

    #[test]
    fn image_has_large_min_set() {
        let spec = DatasetSpec::scaled(DatasetKind::Image, 1.0);
        assert!(spec.min_set > 100, "image min_set {}", spec.min_set);
    }
}
