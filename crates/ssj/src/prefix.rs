//! Prefix-shared light-set expansion (Example 6 / Figure 2 of the paper).
//!
//! Sets sharing a prefix of inverted lists — elements taken in a *global
//! order*, descending inverted-list length, exactly §4's ordering — share
//! the partial merge of those lists. Instead of materializing cloned merge
//! states at trie nodes (the paper's description; prohibitively
//! clone-heavy), this implementation processes the light sets in
//! lexicographic order of their ordered element sequences and keeps one
//! mutable merge state plus a per-depth **undo log**:
//!
//! * advancing one element merges its inverted list into dense counters and
//!   logs every bump;
//! * moving to the next set pops only the non-shared suffix by replaying
//!   the log backwards.
//!
//! With `m` sets sharing a prefix, the prefix lists are merged twice in
//! total (once + one undo) instead of `m` times — the same sharing the
//! paper's materialized tree achieves, with O(path) memory.

use mmjoin_storage::{Relation, Value};

/// One logged bump, so the merge can be undone.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    candidate: Value,
    /// True if this bump moved the candidate into the complete list.
    completed: bool,
}

/// Shared-prefix expansion engine over the light sets of a relation.
pub struct PrefixExpander<'a> {
    r: &'a Relation,
    /// Only partners with `|set| ≤ boundary` participate.
    boundary: usize,
    /// Overlap threshold.
    c: u32,
    /// `element → rank` in the global order (list length descending).
    rank: Vec<u32>,
    /// Dense multiplicity counters per candidate set.
    counts: Vec<u32>,
    /// Candidates with multiplicity ≥ c, in completion order.
    complete: Vec<Value>,
    /// Undo log of all bumps along the current path.
    log: Vec<LogEntry>,
    /// `marks[d]` = log length before depth-d's list was merged.
    marks: Vec<usize>,
    /// Current path (ordered element sequence merged so far).
    path: Vec<Value>,
    /// Statistics: list-merge operations actually performed.
    merge_ops: u64,
}

impl<'a> PrefixExpander<'a> {
    /// Builds the expander (computes the global element order).
    pub fn new(r: &'a Relation, boundary: usize, c: u32) -> Self {
        let ydom = r.y_domain();
        let mut order: Vec<Value> = (0..ydom as Value).collect();
        order.sort_unstable_by_key(|&e| (usize::MAX - r.y_degree(e), e));
        let mut rank = vec![0u32; ydom];
        for (i, &e) in order.iter().enumerate() {
            rank[e as usize] = i as u32;
        }
        Self {
            r,
            boundary,
            c: c.max(1),
            rank,
            counts: vec![0; r.x_domain()],
            complete: Vec::new(),
            log: Vec::new(),
            marks: Vec::new(),
            path: Vec::new(),
            merge_ops: 0,
        }
    }

    /// Ordered element sequence of a set.
    fn ranked_elems(&self, a: Value) -> Vec<Value> {
        if (a as usize) >= self.r.x_domain() {
            return Vec::new();
        }
        let mut elems: Vec<Value> = self.r.ys_of(a).to_vec();
        elems.sort_unstable_by_key(|&e| self.rank[e as usize]);
        elems
    }

    /// Merges `L[e]` (light members only) into the state at a new depth.
    fn push_list(&mut self, e: Value) {
        self.marks.push(self.log.len());
        self.path.push(e);
        for &s in self.r.xs_of(e) {
            if self.r.x_degree(s) > self.boundary {
                continue;
            }
            self.merge_ops += 1;
            let cnt = &mut self.counts[s as usize];
            *cnt += 1;
            let completed = *cnt == self.c;
            if completed {
                self.complete.push(s);
            }
            self.log.push(LogEntry {
                candidate: s,
                completed,
            });
        }
    }

    /// Pops the deepest merged list, undoing its bumps.
    fn pop_list(&mut self) {
        let mark = self.marks.pop().expect("pop on empty path");
        self.path.pop();
        while self.log.len() > mark {
            let entry = self.log.pop().unwrap();
            self.counts[entry.candidate as usize] -= 1;
            if entry.completed {
                let popped = self.complete.pop();
                debug_assert_eq!(popped, Some(entry.candidate));
            }
        }
    }

    /// Longest common prefix length of the current path and `elems`.
    fn common_prefix(&self, elems: &[Value]) -> usize {
        self.path
            .iter()
            .zip(elems)
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Expands every set in `probes` (any order), invoking
    /// `emit(set, partner)` for each light partner with overlap ≥ c.
    /// Partners are reported from both sides; callers normalise.
    ///
    /// Sorting the probes lexicographically (done internally) maximises
    /// prefix sharing.
    pub fn expand_all(&mut self, probes: &[Value], mut emit: impl FnMut(Value, Value)) {
        let mut seqs: Vec<(Vec<Value>, Value)> = probes
            .iter()
            .map(|&a| (self.ranked_elems(a), a))
            .filter(|(e, _)| !e.is_empty())
            .collect();
        // Rank-lexicographic sort: neighbors share prefixes.
        seqs.sort_unstable_by(|(e1, _), (e2, _)| {
            let r1 = e1.iter().map(|&e| self.rank[e as usize]);
            let r2 = e2.iter().map(|&e| self.rank[e as usize]);
            r1.cmp(r2)
        });
        for (elems, a) in seqs {
            let keep = self.common_prefix(&elems);
            while self.path.len() > keep {
                self.pop_list();
            }
            for &e in &elems[self.path.len()..] {
                self.push_list(e);
            }
            for &s in &self.complete {
                if s != a {
                    emit(a, s);
                }
            }
        }
        // Reset for reuse.
        while !self.path.is_empty() {
            self.pop_list();
        }
    }

    /// Single-probe variant (kept for targeted tests): expands `a` alone.
    pub fn similar_partners(&mut self, a: Value, mut emit: impl FnMut(Value, u32)) {
        let elems = self.ranked_elems(a);
        if elems.is_empty() {
            return;
        }
        let keep = self.common_prefix(&elems);
        while self.path.len() > keep {
            self.pop_list();
        }
        for &e in &elems[self.path.len()..] {
            self.push_list(e);
        }
        let complete = self.complete.clone();
        for s in complete {
            if s != a {
                let overlap =
                    mmjoin_storage::csr::intersect_count(self.r.ys_of(s), self.r.ys_of(a));
                emit(s, overlap as u32);
            }
        }
    }

    /// List-merge operations performed so far (observability: the Figure 8
    /// ablation checks sharing actually reduces work).
    pub fn merge_ops(&self) -> u64 {
        self.merge_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn finds_similar_partners() {
        // Sets: 0={0,1,2}, 1={0,1,3}, 2={4,5}, 3={0,1,2}.
        let r = rel(&[
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (1, 3),
            (2, 4),
            (2, 5),
            (3, 0),
            (3, 1),
            (3, 2),
        ]);
        let mut ex = PrefixExpander::new(&r, 100, 2);
        let mut partners = Vec::new();
        ex.similar_partners(0, |s, ov| partners.push((s, ov)));
        partners.sort_unstable();
        assert_eq!(partners, vec![(1, 2), (3, 3)]);
    }

    #[test]
    fn respects_boundary() {
        let mut edges = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        for e in 0..10u32 {
            edges.push((9, e));
        }
        let r = rel(&edges);
        let mut ex = PrefixExpander::new(&r, 5, 2);
        let mut partners = Vec::new();
        ex.similar_partners(0, |s, _| partners.push(s));
        assert_eq!(partners, vec![1]);
    }

    #[test]
    fn expand_all_matches_bruteforce() {
        let r = rel(&[
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (1, 1),
            (2, 1),
            (2, 2),
            (3, 0),
            (3, 2),
            (4, 7),
        ]);
        let sets: Vec<Value> = (0..5).collect();
        let mut ex = PrefixExpander::new(&r, 100, 2);
        let mut got: BTreeSet<(Value, Value)> = BTreeSet::new();
        ex.expand_all(&sets, |a, s| {
            got.insert((a.min(s), a.max(s)));
        });
        let mut expected = BTreeSet::new();
        for &a in &sets {
            for &b in &sets {
                if a < b && mmjoin_storage::csr::intersect_count(r.ys_of(a), r.ys_of(b)) >= 2 {
                    expected.insert((a, b));
                }
            }
        }
        assert_eq!(got, expected);
    }

    #[test]
    fn sharing_reduces_merge_ops() {
        // 20 sets with a long common prefix {0..5} plus a unique element.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            for e in 0..6u32 {
                edges.push((x, e));
            }
            edges.push((x, 100 + x));
        }
        let r = rel(&edges);
        let sets: Vec<Value> = (0..20).collect();
        let mut shared = PrefixExpander::new(&r, 100, 2);
        shared.expand_all(&sets, |_, _| {});
        let shared_ops = shared.merge_ops();
        // Baseline: independent expansion merges the 6 shared lists (20
        // members each) once per set: 20 sets × 6 lists × 20 = 2400, plus
        // the singleton lists. Sharing should cut this several-fold.
        assert!(
            shared_ops < 1200,
            "sharing performed {shared_ops} ops, expected far fewer than 2400"
        );
    }

    #[test]
    fn c1_reports_any_sharing() {
        let r = rel(&[(0, 0), (1, 0), (2, 9)]);
        let mut ex = PrefixExpander::new(&r, 100, 1);
        let mut partners = Vec::new();
        ex.similar_partners(0, |s, _| partners.push(s));
        assert_eq!(partners, vec![1]);
    }

    #[test]
    fn out_of_domain_probe_is_empty() {
        let r = rel(&[(0, 0), (1, 0)]);
        let mut ex = PrefixExpander::new(&r, 100, 1);
        let mut n = 0;
        ex.similar_partners(7, |_, _| n += 1);
        assert_eq!(n, 0);
    }
}
