//! Set-similarity joins (SSJ) — §4 of the paper.
//!
//! Given a family of sets encoded as a relation `R(x, y)` ("set `x` contains
//! element `y`") and an overlap threshold `c ≥ 1`, the SSJ reports all pairs
//! of distinct sets `{a, b}` with `|set(a) ∩ set(b)| ≥ c`. Pairs are
//! normalised as `a < b`.
//!
//! Three algorithm families are implemented, each packaged as a
//! [`SimilarityEngine`] behind the unified [`Engine`](mmjoin_api::Engine)
//! front door (`Query::similarity(&r, c)`):
//!
//! * [`SsjAlgorithm::SizeAware`] — Algorithm 2 of the paper, i.e. the
//!   size-aware join of Deng–Tao–Li \[20\]: a size boundary splits sets into
//!   heavy (verified by brute-force expansion) and light (all `c`-subsets
//!   are enumerated into an inverted index whose buckets are pair-scanned).
//! * [`SsjAlgorithm::SizeAwarePP`] — `SizeAware++` (§4): the three
//!   incremental optimizations of Figure 8 — `light` replaces the bucket
//!   pair-scan with a counting expansion join over light sets, `heavy`
//!   evaluates the heavy join with MMJoin counts, and `prefix` shares the
//!   light expansion across sets with common prefixes via the materialized
//!   prefix tree of Example 6.
//! * [`SsjAlgorithm::MmJoin`] — the paper's headline approach: the 2-path
//!   query with exact counts, delegated to
//!   [`MmJoinEngine`](mmjoin_core::MmJoinEngine).
//!
//! Both unordered enumeration and ordered (descending-overlap) variants are
//! provided (`Query::similarity(..).ordered()`); ordered output is where
//! the MM counts shine because the competing algorithms must re-verify
//! every pair to learn its overlap.
//!
//! Parallelism — like every other execution knob — comes from the one
//! [`JoinConfig`] the engine is constructed with; there is no separate
//! thread parameter.

pub mod prefix;
pub mod size_aware;
pub mod topk;

pub use topk::top_k_ssj;

use mmjoin_api::{Engine, EngineError, ExecStats, PairSink, Query, Sink, VecSink};
use mmjoin_core::{JoinConfig, MmJoinEngine};
use mmjoin_storage::{Relation, Value};

/// One similar pair with its exact overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SsjPair {
    /// Smaller set id.
    pub a: Value,
    /// Larger set id.
    pub b: Value,
    /// `|set(a) ∩ set(b)|`.
    pub overlap: u32,
}

/// Options for `SizeAware++` (the Figure 8 ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeAwarePPOpts {
    /// Replace the light bucket pair-scan with the counting expansion join.
    pub light: bool,
    /// Evaluate the heavy join with MMJoin counts.
    pub heavy: bool,
    /// Share light expansions through the materialized prefix tree
    /// (requires `light`).
    pub prefix: bool,
}

impl SizeAwarePPOpts {
    /// All optimizations on (the `Prefix` bar of Figure 8).
    pub fn all() -> Self {
        Self {
            light: true,
            heavy: true,
            prefix: true,
        }
    }

    /// All off — identical to plain SizeAware (the `NO-OP` bar).
    pub fn none() -> Self {
        Self {
            light: false,
            heavy: false,
            prefix: false,
        }
    }
}

/// Algorithm selector for the SSJ entry points. Pure strategy choice —
/// execution configuration (threads, cost model) is supplied separately
/// through [`JoinConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsjAlgorithm {
    /// Algorithm 2 (SizeAware) of \[20\].
    SizeAware,
    /// SizeAware++ with the given optimization flags.
    SizeAwarePP(SizeAwarePPOpts),
    /// Matrix-multiplication counting join (delegates to
    /// [`MmJoinEngine`]).
    MmJoin,
}

/// A set-similarity engine: one [`SsjAlgorithm`] plus one [`JoinConfig`],
/// executing `Query::SimilarityJoin` through the unified front door.
#[derive(Debug, Clone)]
pub struct SimilarityEngine {
    algo: SsjAlgorithm,
    config: JoinConfig,
    name: String,
}

impl SimilarityEngine {
    /// Engine running `algo` under `config`.
    pub fn new(algo: SsjAlgorithm, config: JoinConfig) -> Self {
        let name = match algo {
            SsjAlgorithm::SizeAware => "SizeAware".to_string(),
            SsjAlgorithm::SizeAwarePP(opts) if opts == SizeAwarePPOpts::all() => {
                "SizeAware++".to_string()
            }
            SsjAlgorithm::SizeAwarePP(opts) => format!(
                "SizeAware++[{}{}{}]",
                if opts.light { "L" } else { "-" },
                if opts.heavy { "H" } else { "-" },
                if opts.prefix { "P" } else { "-" },
            ),
            SsjAlgorithm::MmJoin => "MMJoin".to_string(),
        };
        Self { algo, config, name }
    }

    /// Plain SizeAware under the default configuration.
    pub fn size_aware() -> Self {
        Self::new(SsjAlgorithm::SizeAware, JoinConfig::default())
    }

    /// SizeAware++ with all optimizations under the default configuration.
    pub fn size_aware_pp() -> Self {
        Self::new(
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
            JoinConfig::default(),
        )
    }

    /// The algorithm this engine runs.
    pub fn algorithm(&self) -> &SsjAlgorithm {
        &self.algo
    }

    /// Unordered pairs for the non-MM algorithms.
    fn pairs_unordered(&self, r: &Relation, c: u32) -> Vec<(Value, Value)> {
        match self.algo {
            SsjAlgorithm::SizeAware => {
                size_aware::size_aware_pairs(r, c, SizeAwarePPOpts::none(), &self.config)
            }
            SsjAlgorithm::SizeAwarePP(opts) => {
                size_aware::size_aware_pairs(r, c, opts, &self.config)
            }
            SsjAlgorithm::MmJoin => unreachable!("MmJoin delegates to MmJoinEngine"),
        }
    }
}

impl Engine for SimilarityEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, query: &Query<'_>) -> bool {
        matches!(query, Query::SimilarityJoin { .. })
    }

    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError> {
        query.validate()?;
        let Query::SimilarityJoin { r, c, ordered } = *query else {
            return Err(self.unsupported(query));
        };
        if let SsjAlgorithm::MmJoin = self.algo {
            return MmJoinEngine::new(self.config.clone()).execute(query, sink);
        }
        if !ordered {
            let pairs = self.pairs_unordered(r, c);
            return Ok(ExecStats::new(
                self.name(),
                mmjoin_api::emit_pairs(sink, &pairs),
            ));
        }
        // Ordered: the non-MM algorithms discover pairs without counts, so
        // every overlap is re-verified by sorted-list intersection — the
        // extra cost §7.3 notes for SizeAware in the ordered setting.
        let mut pairs: Vec<SsjPair> = self
            .pairs_unordered(r, c)
            .into_iter()
            .map(|(a, b)| SsjPair {
                a,
                b,
                overlap: mmjoin_storage::csr::intersect_count(r.ys_of(a), r.ys_of(b)) as u32,
            })
            .collect();
        pairs.sort_unstable_by(|p, q| {
            q.overlap
                .cmp(&p.overlap)
                .then_with(|| (p.a, p.b).cmp(&(q.a, q.b)))
        });
        let triples: Vec<(Value, Value, u32)> =
            pairs.iter().map(|p| (p.a, p.b, p.overlap)).collect();
        Ok(ExecStats::new(
            self.name(),
            mmjoin_api::emit_counted_pairs(sink, &triples, true),
        ))
    }
}

/// Unordered SSJ: sorted distinct pairs `(a, b)`, `a < b`, with
/// `|set(a) ∩ set(b)| ≥ c`. Thin wrapper dispatching a
/// [`Query::SimilarityJoin`] through the [`Engine`] front door.
///
/// ```
/// use mmjoin_core::JoinConfig;
/// use mmjoin_ssj::{unordered_ssj, SsjAlgorithm};
/// use mmjoin_storage::Relation;
/// // Sets 0 = {1,2,3}, 1 = {2,3}, 2 = {9}.
/// let r = Relation::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 9)]);
/// let pairs = unordered_ssj(&r, 2, &SsjAlgorithm::MmJoin, &JoinConfig::default());
/// assert_eq!(pairs, vec![(0, 1)]); // only sets 0 and 1 share ≥ 2 elements
/// ```
pub fn unordered_ssj(
    r: &Relation,
    c: u32,
    algo: &SsjAlgorithm,
    config: &JoinConfig,
) -> Vec<(Value, Value)> {
    let query = Query::similarity(r, c)
        .build()
        .expect("similarity threshold must be >= 1");
    let engine = SimilarityEngine::new(*algo, config.clone());
    let mut sink = PairSink::new();
    engine
        .execute(&query, &mut sink)
        .expect("similarity join cannot fail on a valid query");
    sink.into_pairs()
}

/// Ordered SSJ: pairs sorted by descending overlap (ties by `(a, b)`).
/// Thin wrapper dispatching an ordered [`Query::SimilarityJoin`] through
/// the [`Engine`] front door.
pub fn ordered_ssj(r: &Relation, c: u32, algo: &SsjAlgorithm, config: &JoinConfig) -> Vec<SsjPair> {
    let query = Query::similarity(r, c)
        .ordered()
        .build()
        .expect("similarity threshold must be >= 1");
    let engine = SimilarityEngine::new(*algo, config.clone());
    let mut sink = VecSink::new();
    engine
        .execute(&query, &mut sink)
        .expect("similarity join cannot fail on a valid query");
    sink.rows
        .iter()
        .zip(&sink.counts)
        .map(|(row, &overlap)| SsjPair {
            a: row[0],
            b: row[1],
            overlap,
        })
        .collect()
}

/// Reference brute-force SSJ used by the test-suites of this crate and the
/// integration tests.
pub fn brute_force_ssj(r: &Relation, c: u32) -> Vec<SsjPair> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    let mut out = Vec::new();
    for (i, &a) in sets.iter().enumerate() {
        for &b in &sets[i + 1..] {
            let overlap = mmjoin_storage::csr::intersect_count(r.ys_of(a), r.ys_of(b)) as u32;
            if overlap >= c {
                out.push(SsjPair { a, b, overlap });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn cfg() -> JoinConfig {
        JoinConfig::default()
    }

    fn cfg_threads(threads: usize) -> JoinConfig {
        JoinConfig {
            threads,
            ..JoinConfig::default()
        }
    }

    fn sample_instance() -> Relation {
        // Sets: 0={0,1,2,3}, 1={1,2,3}, 2={2,3,9}, 3={9}, 4={0,1,2,3,9}.
        rel(&[
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 1),
            (1, 2),
            (1, 3),
            (2, 2),
            (2, 3),
            (2, 9),
            (3, 9),
            (4, 0),
            (4, 1),
            (4, 2),
            (4, 3),
            (4, 9),
        ])
    }

    fn all_algorithms() -> Vec<SsjAlgorithm> {
        vec![
            SsjAlgorithm::SizeAware,
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            }),
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts {
                light: true,
                heavy: true,
                prefix: false,
            }),
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
            SsjAlgorithm::MmJoin,
        ]
    }

    #[test]
    fn all_algorithms_match_bruteforce_c2() {
        let r = sample_instance();
        let expected: Vec<(Value, Value)> = brute_force_ssj(&r, 2)
            .into_iter()
            .map(|p| (p.a, p.b))
            .collect();
        for algo in all_algorithms() {
            let got = unordered_ssj(&r, 2, &algo, &cfg());
            assert_eq!(got, expected, "{algo:?}");
        }
    }

    #[test]
    fn all_algorithms_match_bruteforce_c1_and_c3() {
        let r = sample_instance();
        for c in [1u32, 3, 4] {
            let expected: Vec<(Value, Value)> = brute_force_ssj(&r, c)
                .into_iter()
                .map(|p| (p.a, p.b))
                .collect();
            for algo in all_algorithms() {
                assert_eq!(
                    unordered_ssj(&r, c, &algo, &cfg()),
                    expected,
                    "c={c} {algo:?}"
                );
            }
        }
    }

    #[test]
    fn ordered_output_sorted_by_overlap() {
        let r = sample_instance();
        for algo in all_algorithms() {
            let got = ordered_ssj(&r, 2, &algo, &cfg());
            for w in got.windows(2) {
                assert!(w[0].overlap >= w[1].overlap, "{algo:?}: {got:?}");
            }
            // Counts must be exact regardless of algorithm.
            let brute = brute_force_ssj(&r, 2);
            let mut sorted_got = got.clone();
            sorted_got.sort_unstable();
            let mut sorted_brute = brute;
            sorted_brute.sort_unstable();
            assert_eq!(sorted_got, sorted_brute, "{algo:?}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let empty = rel(&[]);
        for algo in all_algorithms() {
            assert!(
                unordered_ssj(&empty, 2, &algo, &cfg()).is_empty(),
                "{algo:?}"
            );
        }
        let single = rel(&[(0, 0)]);
        for algo in all_algorithms() {
            assert!(
                unordered_ssj(&single, 1, &algo, &cfg()).is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut edges = Vec::new();
        for i in 0..500u32 {
            edges.push(((i * 3) % 60, (i * 7) % 35));
        }
        let r = rel(&edges);
        for algo in all_algorithms() {
            let serial = unordered_ssj(&r, 2, &algo, &cfg());
            let parallel = unordered_ssj(&r, 2, &algo, &cfg_threads(4));
            assert_eq!(serial, parallel, "{algo:?}");
        }
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(Engine::name(&SimilarityEngine::size_aware()), "SizeAware");
        assert_eq!(
            Engine::name(&SimilarityEngine::size_aware_pp()),
            "SizeAware++"
        );
        let partial = SimilarityEngine::new(
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            }),
            JoinConfig::default(),
        );
        assert_eq!(Engine::name(&partial), "SizeAware++[L--]");
    }

    #[test]
    fn engine_rejects_other_families() {
        let r = rel(&[(0, 0)]);
        let q = Query::containment(&r).build().unwrap();
        let engine = SimilarityEngine::size_aware();
        assert!(!engine.supports(&q));
        let mut sink = PairSink::new();
        assert!(engine.execute(&q, &mut sink).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn algorithms_agree_with_bruteforce(
            edges in proptest::collection::vec((0u32..14, 0u32..12), 1..70),
            c in 1u32..4,
        ) {
            let r = rel(&edges);
            let expected: Vec<(Value, Value)> =
                brute_force_ssj(&r, c).into_iter().map(|p| (p.a, p.b)).collect();
            for algo in all_algorithms() {
                prop_assert_eq!(unordered_ssj(&r, c, &algo, &cfg()), expected.clone());
            }
        }
    }
}
