//! Set-similarity joins (SSJ) — §4 of the paper.
//!
//! Given a family of sets encoded as a relation `R(x, y)` ("set `x` contains
//! element `y`") and an overlap threshold `c ≥ 1`, the SSJ reports all pairs
//! of distinct sets `{a, b}` with `|set(a) ∩ set(b)| ≥ c`. Pairs are
//! normalised as `a < b`.
//!
//! Three algorithm families are implemented:
//!
//! * [`SsjAlgorithm::SizeAware`] — Algorithm 2 of the paper, i.e. the
//!   size-aware join of Deng–Tao–Li \[20\]: a size boundary splits sets into
//!   heavy (verified by brute-force expansion) and light (all `c`-subsets
//!   are enumerated into an inverted index whose buckets are pair-scanned).
//! * [`SsjAlgorithm::SizeAwarePP`] — `SizeAware++` (§4): the three
//!   incremental optimizations of Figure 8 — `light` replaces the bucket
//!   pair-scan with a counting expansion join over light sets, `heavy`
//!   evaluates the heavy join with MMJoin counts, and `prefix` shares the
//!   light expansion across sets with common prefixes via the materialized
//!   prefix tree of Example 6.
//! * [`SsjAlgorithm::MmJoin`] — the paper's headline approach: the 2-path
//!   query with exact counts ([`mmjoin_core::two_path_with_counts`]),
//!   thresholded at `c`.
//!
//! Both unordered enumeration and ordered (descending-overlap) variants are
//! provided; ordered output is where the MM counts shine because the
//! competing algorithms must re-verify every pair to learn its overlap.

pub mod prefix;
pub mod size_aware;
pub mod topk;

pub use topk::top_k_ssj;

use mmjoin_core::{two_path_with_counts, JoinConfig};
use mmjoin_storage::{Relation, Value};

/// One similar pair with its exact overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SsjPair {
    /// Smaller set id.
    pub a: Value,
    /// Larger set id.
    pub b: Value,
    /// `|set(a) ∩ set(b)|`.
    pub overlap: u32,
}

/// Options for `SizeAware++` (the Figure 8 ablation knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeAwarePPOpts {
    /// Replace the light bucket pair-scan with the counting expansion join.
    pub light: bool,
    /// Evaluate the heavy join with MMJoin counts.
    pub heavy: bool,
    /// Share light expansions through the materialized prefix tree
    /// (requires `light`).
    pub prefix: bool,
}

impl SizeAwarePPOpts {
    /// All optimizations on (the `Prefix` bar of Figure 8).
    pub fn all() -> Self {
        Self {
            light: true,
            heavy: true,
            prefix: true,
        }
    }

    /// All off — identical to plain SizeAware (the `NO-OP` bar).
    pub fn none() -> Self {
        Self {
            light: false,
            heavy: false,
            prefix: false,
        }
    }
}

/// Algorithm selector for the SSJ entry points.
#[derive(Debug, Clone)]
pub enum SsjAlgorithm {
    /// Algorithm 2 (SizeAware) of \[20\].
    SizeAware,
    /// SizeAware++ with the given optimization flags.
    SizeAwarePP(SizeAwarePPOpts),
    /// Matrix-multiplication join with the given execution config.
    MmJoin(Box<JoinConfig>),
}

impl SsjAlgorithm {
    /// MMJoin with default config on `threads` workers.
    pub fn mmjoin(threads: usize) -> Self {
        SsjAlgorithm::MmJoin(Box::new(JoinConfig {
            threads,
            ..JoinConfig::default()
        }))
    }
}

/// Unordered SSJ: sorted distinct pairs `(a, b)`, `a < b`, with
/// `|set(a) ∩ set(b)| ≥ c`.
///
/// ```
/// use mmjoin_ssj::{unordered_ssj, SsjAlgorithm};
/// use mmjoin_storage::Relation;
/// // Sets 0 = {1,2,3}, 1 = {2,3}, 2 = {9}.
/// let r = Relation::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 9)]);
/// let pairs = unordered_ssj(&r, 2, &SsjAlgorithm::mmjoin(1), 1);
/// assert_eq!(pairs, vec![(0, 1)]); // only sets 0 and 1 share ≥ 2 elements
/// ```
pub fn unordered_ssj(
    r: &Relation,
    c: u32,
    algo: &SsjAlgorithm,
    threads: usize,
) -> Vec<(Value, Value)> {
    match algo {
        SsjAlgorithm::SizeAware => size_aware::size_aware_pairs(r, c, SizeAwarePPOpts::none(), threads),
        SsjAlgorithm::SizeAwarePP(opts) => size_aware::size_aware_pairs(r, c, *opts, threads),
        SsjAlgorithm::MmJoin(cfg) => {
            let mut cfg = (**cfg).clone();
            cfg.threads = threads.max(cfg.threads);
            mm_ssj_with_counts(r, c, &cfg)
                .into_iter()
                .map(|p| (p.a, p.b))
                .collect()
        }
    }
}

/// Ordered SSJ: pairs sorted by descending overlap (ties by `(a, b)`).
///
/// For the non-MM algorithms the overlaps of pairs discovered without counts
/// are re-verified by sorted-list intersection — the extra cost §7.3 notes
/// for SizeAware in the ordered setting.
pub fn ordered_ssj(r: &Relation, c: u32, algo: &SsjAlgorithm, threads: usize) -> Vec<SsjPair> {
    let mut pairs: Vec<SsjPair> = match algo {
        SsjAlgorithm::MmJoin(cfg) => {
            let mut cfg = (**cfg).clone();
            cfg.threads = threads.max(cfg.threads);
            mm_ssj_with_counts(r, c, &cfg)
        }
        _ => {
            let raw = unordered_ssj(r, c, algo, threads);
            raw.into_iter()
                .map(|(a, b)| SsjPair {
                    a,
                    b,
                    overlap: mmjoin_storage::csr::intersect_count(r.ys_of(a), r.ys_of(b)) as u32,
                })
                .collect()
        }
    };
    pairs.sort_unstable_by(|p, q| {
        q.overlap
            .cmp(&p.overlap)
            .then_with(|| (p.a, p.b).cmp(&(q.a, q.b)))
    });
    pairs
}

/// MMJoin SSJ with exact counts.
fn mm_ssj_with_counts(r: &Relation, c: u32, cfg: &JoinConfig) -> Vec<SsjPair> {
    two_path_with_counts(r, r, c.max(1), cfg)
        .into_iter()
        .filter(|&(a, b, _)| a < b)
        .map(|(a, b, overlap)| SsjPair { a, b, overlap })
        .collect()
}

/// Reference brute-force SSJ used by the test-suites of this crate and the
/// integration tests.
pub fn brute_force_ssj(r: &Relation, c: u32) -> Vec<SsjPair> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    let mut out = Vec::new();
    for (i, &a) in sets.iter().enumerate() {
        for &b in &sets[i + 1..] {
            let overlap =
                mmjoin_storage::csr::intersect_count(r.ys_of(a), r.ys_of(b)) as u32;
            if overlap >= c {
                out.push(SsjPair { a, b, overlap });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn sample_instance() -> Relation {
        // Sets: 0={0,1,2,3}, 1={1,2,3}, 2={2,3,9}, 3={9}, 4={0,1,2,3,9}.
        rel(&[
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 1),
            (1, 2),
            (1, 3),
            (2, 2),
            (2, 3),
            (2, 9),
            (3, 9),
            (4, 0),
            (4, 1),
            (4, 2),
            (4, 3),
            (4, 9),
        ])
    }

    fn all_algorithms() -> Vec<SsjAlgorithm> {
        vec![
            SsjAlgorithm::SizeAware,
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            }),
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts {
                light: true,
                heavy: true,
                prefix: false,
            }),
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
            SsjAlgorithm::mmjoin(1),
        ]
    }

    #[test]
    fn all_algorithms_match_bruteforce_c2() {
        let r = sample_instance();
        let expected: Vec<(Value, Value)> =
            brute_force_ssj(&r, 2).into_iter().map(|p| (p.a, p.b)).collect();
        for algo in all_algorithms() {
            let got = unordered_ssj(&r, 2, &algo, 1);
            assert_eq!(got, expected, "{algo:?}");
        }
    }

    #[test]
    fn all_algorithms_match_bruteforce_c1_and_c3() {
        let r = sample_instance();
        for c in [1u32, 3, 4] {
            let expected: Vec<(Value, Value)> =
                brute_force_ssj(&r, c).into_iter().map(|p| (p.a, p.b)).collect();
            for algo in all_algorithms() {
                assert_eq!(unordered_ssj(&r, c, &algo, 1), expected, "c={c} {algo:?}");
            }
        }
    }

    #[test]
    fn ordered_output_sorted_by_overlap() {
        let r = sample_instance();
        for algo in all_algorithms() {
            let got = ordered_ssj(&r, 2, &algo, 1);
            for w in got.windows(2) {
                assert!(w[0].overlap >= w[1].overlap, "{algo:?}: {got:?}");
            }
            // Counts must be exact regardless of algorithm.
            let brute = brute_force_ssj(&r, 2);
            let mut sorted_got = got.clone();
            sorted_got.sort_unstable();
            let mut sorted_brute = brute;
            sorted_brute.sort_unstable();
            assert_eq!(sorted_got, sorted_brute, "{algo:?}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let empty = rel(&[]);
        for algo in all_algorithms() {
            assert!(unordered_ssj(&empty, 2, &algo, 1).is_empty(), "{algo:?}");
        }
        let single = rel(&[(0, 0)]);
        for algo in all_algorithms() {
            assert!(unordered_ssj(&single, 1, &algo, 1).is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut edges = Vec::new();
        for i in 0..500u32 {
            edges.push(((i * 3) % 60, (i * 7) % 35));
        }
        let r = rel(&edges);
        for algo in all_algorithms() {
            let serial = unordered_ssj(&r, 2, &algo, 1);
            let parallel = unordered_ssj(&r, 2, &algo, 4);
            assert_eq!(serial, parallel, "{algo:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn algorithms_agree_with_bruteforce(
            edges in proptest::collection::vec((0u32..14, 0u32..12), 1..70),
            c in 1u32..4,
        ) {
            let r = rel(&edges);
            let expected: Vec<(Value, Value)> =
                brute_force_ssj(&r, c).into_iter().map(|p| (p.a, p.b)).collect();
            for algo in all_algorithms() {
                prop_assert_eq!(unordered_ssj(&r, c, &algo, 1), expected.clone());
            }
        }
    }
}
