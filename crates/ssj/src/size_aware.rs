//! SizeAware (Algorithm 2, \[20\]) and SizeAware++ (§4).
//!
//! `GetSizeBoundary` sweeps candidate size boundaries and picks the one
//! minimizing the *estimated* total cost: light sets pay `Σ C(|s|, c)`
//! (c-subset enumeration) and heavy sets pay `Σ_{e ∈ s} |L[e]|` (expansion
//! verification), matching the balance criterion of \[20\].
//!
//! The heavy join enumerates, per heavy set `h`, the multiplicity of every
//! candidate partner through `h`'s inverted lists (a sort-merge-join
//! flavoured scan); `SizeAware++ (heavy)` swaps this for the MMJoin counting
//! join restricted to heavy sets on the probe side.
//!
//! The light join of plain SizeAware inserts every light set into the
//! inverted index of its `c`-subsets and pair-scans each bucket —
//! quadratic in bucket size, the cost §4 attacks. `SizeAware++ (light)`
//! replaces the bucket scan with the counting expansion join over light
//! sets, and `SizeAware++ (prefix)` additionally shares expansion work
//! between sets with a common prefix via the materialized prefix tree.

use crate::prefix::PrefixExpander;
use crate::SizeAwarePPOpts;
use mmjoin_core::{two_path_with_counts, JoinConfig};
use mmjoin_storage::{DedupBuffer, Relation, RelationBuilder, Value};
use std::collections::{HashMap, HashSet};

/// Entry point shared by SizeAware (all flags off) and SizeAware++:
/// sorted distinct similar pairs `(a, b)`, `a < b`.
pub fn size_aware_pairs(
    r: &Relation,
    c: u32,
    opts: SizeAwarePPOpts,
    config: &JoinConfig,
) -> Vec<(Value, Value)> {
    let c = c.max(1);
    let threads = config.effective_threads();
    let sets: Vec<(Value, usize)> = r
        .by_x()
        .iter_nonempty()
        .map(|(x, ys)| (x, ys.len()))
        .collect();
    if sets.len() < 2 {
        return Vec::new();
    }
    let boundary = get_size_boundary(r, &sets, c);
    let heavy: Vec<Value> = sets
        .iter()
        .filter(|&&(_, len)| len > boundary)
        .map(|&(x, _)| x)
        .collect();
    let light: Vec<Value> = sets
        .iter()
        .filter(|&&(_, len)| len <= boundary)
        .map(|&(x, _)| x)
        .collect();

    let mut out: Vec<(Value, Value)> = Vec::new();

    // ---- Heavy join: pairs (anything, heavy). ----
    if !heavy.is_empty() {
        if opts.heavy {
            heavy_join_mm(r, &heavy, c, config, &mut out);
        } else {
            heavy_join_brute(r, &heavy, boundary, c, threads, config.exec(), &mut out);
        }
    }

    // ---- Light join: pairs (light, light). ----
    if light.len() >= 2 {
        if opts.light {
            if opts.prefix {
                light_join_prefix(r, &light, boundary, c, &mut out);
            } else {
                light_join_expand(r, &light, boundary, c, &mut out);
            }
        } else {
            light_join_subsets(r, &light, c, &mut out);
        }
    }

    out.sort_unstable();
    out.dedup();
    out
}

/// `GetSizeBoundary`: sweep distinct set sizes, minimizing
/// `λ·Σ_{light} C(|s|, c) + Σ_{heavy} Σ_{e∈s} |L[e]|`, where `λ` estimates
/// the average inverted-index bucket size (sets per `c`-subset): the light
/// phase pair-scans every bucket, so its true cost is the subset count
/// times the expected collisions — \[20\] estimates this by sampling; we
/// use the closed-form `total subsets / distinct subsets available`.
fn get_size_boundary(r: &Relation, sets: &[(Value, usize)], c: u32) -> usize {
    // Per-set enumeration and expansion weights.
    let mut by_size: Vec<(usize, u64, u64)> = sets
        .iter()
        .map(|&(x, len)| {
            let subsets = binomial_capped(len as u64, c as u64, 1 << 40);
            let expansion: u64 = r.ys_of(x).iter().map(|&e| r.y_degree(e) as u64).sum();
            (len, subsets, expansion)
        })
        .collect();
    by_size.sort_unstable_by_key(|&(len, _, _)| len);
    let total_subsets: u64 = by_size.iter().map(|&(_, s, _)| s).sum();
    let distinct_available = binomial_capped(r.active_y_count() as u64, c as u64, u64::MAX).max(1);
    let lambda = (total_subsets / distinct_available.min(total_subsets).max(1)).max(1);
    // Prefix sums: light cost grows with boundary, heavy cost shrinks.
    // The all-heavy configuration (boundary below every size) is a valid
    // candidate and the initial best.
    let total_expansion: u64 = by_size.iter().map(|&(_, _, e)| e).sum();
    let mut best_boundary = 0usize;
    let mut best_cost = total_expansion;
    let mut light_cost = 0u64;
    let mut heavy_cost = total_expansion;
    let mut i = 0usize;
    while i < by_size.len() {
        let size = by_size[i].0;
        while i < by_size.len() && by_size[i].0 == size {
            light_cost = light_cost.saturating_add(by_size[i].1.saturating_mul(lambda));
            heavy_cost = heavy_cost.saturating_sub(by_size[i].2);
            i += 1;
        }
        let cost = light_cost.saturating_add(heavy_cost);
        if cost < best_cost {
            best_cost = cost;
            best_boundary = size;
        }
    }
    best_boundary.max(c as usize)
}

/// `C(n, k)` capped (avoids overflow for the boundary sweep).
fn binomial_capped(n: u64, k: u64, cap: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc.saturating_mul(n - i) / (i + 1);
        if acc >= cap {
            return cap;
        }
    }
    acc
}

/// Brute heavy join: per heavy set, count candidate multiplicities through
/// its inverted lists. Emits `(s, h)` pairs with overlap ≥ c, normalised,
/// deduped against double-counting heavy–heavy pairs.
fn heavy_join_brute(
    r: &Relation,
    heavy: &[Value],
    boundary: usize,
    c: u32,
    threads: usize,
    exec: &mmjoin_executor::Executor,
    out: &mut Vec<(Value, Value)>,
) {
    let run = |part: &[Value], out: &mut Vec<(Value, Value)>| {
        let mut counts = DedupBuffer::new(r.x_domain());
        let mut touched: Vec<Value> = Vec::new();
        for &h in part {
            counts.clear();
            touched.clear();
            for &e in r.ys_of(h) {
                for &s in r.xs_of(e) {
                    if s == h {
                        continue;
                    }
                    if counts.insert(s) {
                        touched.push(s);
                    }
                }
            }
            for &s in &touched {
                if counts.multiplicity(s) >= c {
                    // Emit heavy–heavy pairs once (from the larger id) and
                    // light–heavy pairs from the heavy side.
                    let s_heavy = r.x_degree(s) > boundary;
                    if !s_heavy || s < h {
                        out.push((s.min(h), s.max(h)));
                    }
                }
            }
        }
    };
    if threads <= 1 || heavy.len() < 2 {
        run(heavy, out);
    } else {
        let results = exec.map_chunks(threads, heavy, |part| {
            let mut local = Vec::new();
            run(part, &mut local);
            local
        });
        for mut v in results {
            out.append(&mut v);
        }
    }
}

/// MMJoin heavy join (`SizeAware++ heavy`): counting 2-path join of the full
/// relation against the heavy subset.
fn heavy_join_mm(
    r: &Relation,
    heavy: &[Value],
    c: u32,
    config: &JoinConfig,
    out: &mut Vec<(Value, Value)>,
) {
    let heavy_mask: HashSet<Value> = heavy.iter().copied().collect();
    let mut hb = RelationBuilder::with_domains(r.x_domain(), r.y_domain());
    for &h in heavy {
        for &e in r.ys_of(h) {
            hb.push(h, e);
        }
    }
    let hrel = hb.build();
    for (s, h, _) in two_path_with_counts(r, &hrel, c, config) {
        if s == h {
            continue;
        }
        // Heavy–heavy pairs appear twice ((h1,h2) and (h2,h1)); keep one.
        if heavy_mask.contains(&s) && s > h {
            continue;
        }
        out.push((s.min(h), s.max(h)));
    }
}

/// Plain SizeAware light join: enumerate `c`-subsets of every light set into
/// an inverted index, then pair-scan each bucket (lines 4–8 of Algorithm 2).
fn light_join_subsets(r: &Relation, light: &[Value], c: u32, out: &mut Vec<(Value, Value)>) {
    let c = c as usize;
    let mut index: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    let mut subset = vec![0 as Value; c];
    for &s in light {
        let elems = r.ys_of(s);
        if elems.len() < c {
            continue;
        }
        enumerate_subsets(elems, c, &mut subset, 0, 0, &mut |sub| {
            index.entry(sub.to_vec()).or_default().push(s);
        });
    }
    let mut emitted: HashSet<(Value, Value)> = HashSet::new();
    for bucket in index.values() {
        for (i, &a) in bucket.iter().enumerate() {
            for &b in &bucket[i + 1..] {
                let pair = (a.min(b), a.max(b));
                if emitted.insert(pair) {
                    out.push(pair);
                }
            }
        }
    }
}

/// Recursive `c`-subset enumeration over a sorted element slice.
fn enumerate_subsets(
    elems: &[Value],
    c: usize,
    subset: &mut Vec<Value>,
    depth: usize,
    start: usize,
    emit: &mut impl FnMut(&[Value]),
) {
    if depth == c {
        emit(subset);
        return;
    }
    // Prune: not enough elements left.
    let remaining = c - depth;
    for i in start..=elems.len().saturating_sub(remaining) {
        subset[depth] = elems[i];
        enumerate_subsets(elems, c, subset, depth + 1, i + 1, emit);
    }
}

/// `SizeAware++ light`: counting expansion join over light sets — merge the
/// (light-restricted) inverted lists of each light set and threshold the
/// multiplicities.
fn light_join_expand(
    r: &Relation,
    light: &[Value],
    boundary: usize,
    c: u32,
    out: &mut Vec<(Value, Value)>,
) {
    let mut counts = DedupBuffer::new(r.x_domain());
    let mut touched: Vec<Value> = Vec::new();
    for &a in light {
        counts.clear();
        touched.clear();
        for &e in r.ys_of(a) {
            for &s in r.xs_of(e) {
                // Restrict to light partners with larger id (each light
                // pair is found exactly once, from its smaller side).
                if s <= a || r.x_degree(s) > boundary {
                    continue;
                }
                if counts.insert(s) {
                    touched.push(s);
                }
            }
        }
        for &s in &touched {
            if counts.multiplicity(s) >= c {
                out.push((a, s));
            }
        }
    }
}

/// `SizeAware++ prefix`: the same counting expansion, but sharing partial
/// merge states across sets with a common prefix in the global element
/// order (Example 6 / Figure 2).
fn light_join_prefix(
    r: &Relation,
    light: &[Value],
    boundary: usize,
    c: u32,
    out: &mut Vec<(Value, Value)>,
) {
    let mut expander = PrefixExpander::new(r, boundary, c);
    expander.expand_all(light, |a, s| {
        // Both orientations are discovered; keep the normalised one.
        if s > a {
            out.push((a, s));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial_capped(5, 2, u64::MAX), 10);
        assert_eq!(binomial_capped(10, 3, u64::MAX), 120);
        assert_eq!(binomial_capped(3, 5, u64::MAX), 0);
        assert_eq!(binomial_capped(4, 0, u64::MAX), 1);
        assert_eq!(binomial_capped(100, 50, 1000), 1000, "cap applies");
    }

    #[test]
    fn subset_enumeration_complete() {
        let elems = [1, 2, 3, 4];
        let mut subs = Vec::new();
        let mut buf = vec![0; 2];
        enumerate_subsets(&elems, 2, &mut buf, 0, 0, &mut |s| subs.push(s.to_vec()));
        assert_eq!(subs.len(), 6);
        assert!(subs.contains(&vec![1, 4]));
        assert!(subs.contains(&vec![2, 3]));
    }

    #[test]
    fn boundary_respects_minimum() {
        let r = rel(&[(0, 0), (1, 0), (2, 0)]);
        let sets: Vec<(Value, usize)> = r
            .by_x()
            .iter_nonempty()
            .map(|(x, ys)| (x, ys.len()))
            .collect();
        assert!(get_size_boundary(&r, &sets, 3) >= 3);
    }

    #[test]
    fn heavy_and_light_paths_cover_mixed_instance() {
        // One huge set + several tiny ones sharing elements.
        let mut edges = vec![];
        for e in 0..30u32 {
            edges.push((0, e)); // heavy set 0
        }
        edges.extend_from_slice(&[(1, 0), (1, 1), (2, 0), (2, 1), (3, 28), (3, 29)]);
        let r = rel(&edges);
        let brute: Vec<(Value, Value)> = crate::brute_force_ssj(&r, 2)
            .into_iter()
            .map(|p| (p.a, p.b))
            .collect();
        for opts in [
            SizeAwarePPOpts::none(),
            SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            },
            SizeAwarePPOpts::all(),
        ] {
            assert_eq!(
                size_aware_pairs(&r, 2, opts, &JoinConfig::default()),
                brute,
                "{opts:?}"
            );
        }
    }
}
