//! Top-k ordered set-similarity join.
//!
//! Ordered SSJ (§4) sorts the whole result by overlap; interactive
//! applications usually want only the `k` most similar pairs. Because the
//! MM counting join already yields exact overlaps, top-k needs no global
//! sort: a bounded min-heap keeps the best `k` pairs in
//! `O(|OUT| log k)` — an extension over the paper's sort-everything
//! implementation, ablated against it in the `ssj` bench.

use crate::SsjPair;
use mmjoin_core::{two_path_with_counts, JoinConfig};
use mmjoin_storage::Relation;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Returns the `k` most similar pairs (overlap ≥ `c`), ordered by
/// descending overlap with `(a, b)` as the tie-breaker — a prefix of
/// [`crate::ordered_ssj`]'s output.
pub fn top_k_ssj(r: &Relation, c: u32, k: usize, config: &JoinConfig) -> Vec<SsjPair> {
    if k == 0 {
        return Vec::new();
    }
    // Min-heap of the current best k: the root is the weakest kept pair.
    // Order must mirror ordered_ssj: higher overlap first, then smaller
    // (a, b); so the heap keeps the (overlap, Reverse((a,b))) maxima.
    type HeapKey = Reverse<(u32, Reverse<(u32, u32)>)>;
    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::new();
    for (a, b, overlap) in two_path_with_counts(r, r, c.max(1), config) {
        if a >= b {
            continue;
        }
        let key = Reverse((overlap, Reverse((a, b))));
        if heap.len() < k {
            heap.push(key);
        } else if key < *heap.peek().expect("non-empty at capacity") {
            heap.pop();
            heap.push(key);
        }
    }
    let mut out: Vec<SsjPair> = heap
        .into_iter()
        .map(|Reverse((overlap, Reverse((a, b))))| SsjPair { a, b, overlap })
        .collect();
    out.sort_unstable_by(|p, q| {
        q.overlap
            .cmp(&p.overlap)
            .then_with(|| (p.a, p.b).cmp(&(q.a, q.b)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ordered_ssj, SsjAlgorithm};
    use mmjoin_storage::Value;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn top_k_is_prefix_of_ordered() {
        let mut edges = Vec::new();
        for x in 0..20u32 {
            for e in 0..(x % 7 + 1) {
                edges.push((x, e));
            }
        }
        let r = rel(&edges);
        let full = ordered_ssj(&r, 2, &SsjAlgorithm::MmJoin, &JoinConfig::default());
        for k in [0usize, 1, 3, 10, full.len(), full.len() + 5] {
            let top = top_k_ssj(&r, 2, k, &JoinConfig::default());
            assert_eq!(top, full[..k.min(full.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn empty_relation() {
        let r = rel(&[]);
        assert!(top_k_ssj(&r, 1, 5, &JoinConfig::default()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn always_prefix_of_ordered(
            edges in proptest::collection::vec((0u32..12, 0u32..10), 1..60),
            c in 1u32..4,
            k in 0usize..20,
        ) {
            let r = rel(&edges);
            let full = ordered_ssj(&r, c, &SsjAlgorithm::MmJoin, &JoinConfig::default());
            let top = top_k_ssj(&r, c, k, &JoinConfig::default());
            prop_assert_eq!(top, full[..k.min(full.len())].to_vec());
        }
    }
}
