//! Workspace-level integration-test and example host.
//!
//! This crate has no library code of its own: it exists so the repository
//! can keep its cross-crate integration tests in `/tests` and its runnable
//! examples in `/examples` (see the `[[test]]` / `[[example]]` sections of
//! its manifest) while depending on every other crate in the workspace.
//!
//! Run the examples with e.g.
//! `cargo run --release -p mmjoin-integration --example quickstart`.
