//! `mmjoin-serve` — the join service behind a line-oriented protocol.
//!
//! Reads commands from stdin, one per line, and answers on stdout; every
//! answer starts with a single `ok …` / `err …` line (followed by
//! indented row lines for `query … show`). Pipe a script in, or drive it
//! interactively:
//!
//! ```text
//! $ cargo run --release -p mmjoin-service --bin mmjoin-serve
//! gen R Jokes 0.05
//! ok relation R: 24734 tuples, 805 sets, 143 elements (epoch 1)
//! query twopath R R
//! ok rows 648025 engine MMJoin cached false 0.312s
//! query twopath R R
//! ok rows 648025 engine MMJoin cached true 0.000s
//! stats
//! ok served 2 (cache hits 1, 50.0%), …
//! ```
//!
//! Run with `--workers <n>` to size the pool (default 4). Type `help`
//! for the full command list.

use mmjoin_service::{AtomSpec, MaintenanceReport, Request, Service};
use mmjoin_storage::io::read_edge_list;
use mmjoin_storage::{Edge, Relation, RelationBuilder};
use std::io::BufRead;
use std::time::Instant;

fn main() {
    let workers = std::env::args()
        .skip_while(|a| a != "--workers")
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let service = Service::with_default_registry(workers);

    println!(
        "mmjoin-serve ready: {} workers, {} engines (type `help`)",
        service.workers(),
        service.registry().len()
    );
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            println!("ok bye");
            break;
        }
        match dispatch(&service, trimmed) {
            Ok(answer) => println!("{answer}"),
            Err(msg) => println!("err {msg}"),
        }
    }
}

fn dispatch(service: &Service, line: &str) -> Result<String, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens[0] {
        "help" => Ok(HELP.trim_end().to_string()),
        "register" => {
            let name = *tokens.get(1).ok_or("usage: register <name> <x,y> …")?;
            let rel = parse_edges(&tokens[2..])?;
            register_report(service, name, rel)
        }
        "load" => {
            let name = *tokens.get(1).ok_or("usage: load <name> <path>")?;
            let path = *tokens.get(2).ok_or("usage: load <name> <path>")?;
            let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            let rel = read_edge_list(file).map_err(|e| format!("parse {path}: {e}"))?;
            register_report(service, name, rel)
        }
        "gen" => {
            let name = *tokens.get(1).ok_or("usage: gen <name> <dataset> <scale>")?;
            let kind = parse_dataset(tokens.get(2).copied().ok_or("missing dataset")?)?;
            let scale: f64 = tokens
                .get(3)
                .and_then(|s| s.parse().ok())
                .ok_or("bad scale")?;
            let rel = mmjoin_datagen::generate(kind, scale, 2020);
            register_report(service, name, rel)
        }
        "update" => {
            let name = *tokens.get(1).ok_or("usage: update <name> add <x,y> …")?;
            if tokens.get(2) != Some(&"add") {
                return Err("usage: update <name> add <x,y> …".into());
            }
            let old = service
                .relation_edges(name)
                .ok_or_else(|| format!("no relation `{name}`"))?;
            let tuples_before = old.len();
            let extra = parse_edges(&tokens[3..])?;
            let mut b = RelationBuilder::new();
            for (x, y) in old.into_iter().chain(extra.edges().iter().copied()) {
                b.push(x, y);
            }
            let epoch = service.update(name, b.build()).map_err(|e| e.to_string())?;
            let profile = service.relation_profile(name).unwrap();
            Ok(format!(
                "ok relation {name}: {} tuples (was {tuples_before}), epoch {epoch}",
                profile.tuples
            ))
        }
        "insert" => {
            let name = *tokens.get(1).ok_or("usage: insert <name> <x,y> …")?;
            let edges = parse_edge_pairs(&tokens[2..])?;
            let report = service.insert(name, edges).map_err(|e| e.to_string())?;
            Ok(delta_report(service, name, &report))
        }
        "delete" => {
            let name = *tokens.get(1).ok_or("usage: delete <name> <x,y> …")?;
            let edges = parse_edge_pairs(&tokens[2..])?;
            let report = service.delete(name, edges).map_err(|e| e.to_string())?;
            Ok(delta_report(service, name, &report))
        }
        "catalog" => {
            let names = service.relation_names();
            if names.is_empty() {
                return Ok("ok catalog empty".into());
            }
            let mut out = format!(
                "ok {} relations (epoch {})",
                names.len(),
                service.catalog_epoch()
            );
            for name in names {
                let p = service.relation_profile(&name).unwrap();
                out.push_str(&format!(
                    "\n  {name}: {} tuples, {} sets, {} elements, max set {} / max element degree {}",
                    p.tuples, p.active_x, p.active_y, p.max_x_degree, p.max_y_degree
                ));
            }
            Ok(out)
        }
        "engines" => {
            let names = service.registry().names();
            Ok(format!("ok {} engines: {}", names.len(), names.join(", ")))
        }
        "stats" => Ok(format!("ok {}", service.metrics())),
        "query" => run_query(service, &tokens[1..]),
        "explain" => {
            let (request, _) = parse_request(&tokens[1..])?;
            let lines = service.explain(request).map_err(|e| e.to_string())?;
            Ok(format!("ok {}", lines.join("\n  ")))
        }
        other => Err(format!("unknown command `{other}` (type `help`)")),
    }
}

/// Parses everything after `query` / `explain` into a request plus the
/// `show` flag. Accepts the per-family keyword forms *and* a datalog-ish
/// general form `Q(x,w) :- R(x,y), S(y,z), T(z,w)`.
fn parse_request(tokens: &[&str]) -> Result<(Request, bool), String> {
    let family = *tokens.first().ok_or("usage: query <family|datalog> …")?;
    let mut rest: Vec<&str> = tokens[1..].to_vec();

    if family.contains('(') {
        // Datalog form: strip trailing flags, re-join, parse the rule.
        let mut rest: Vec<&str> = tokens.to_vec();
        let show = take_flag(&mut rest, "show");
        let limit = take_value(&mut rest, "limit")?;
        let engine = take_str_value(&mut rest, "engine")?;
        let mut request = parse_datalog(&rest.join(" "))?;
        if let Some(limit) = limit {
            request = request.limit(limit as u64);
        }
        if let Some(engine) = engine {
            request = request.on_engine(engine);
        }
        return Ok((request, show));
    }

    let show = take_flag(&mut rest, "show");
    let mut request = match family {
        "twopath" => {
            if rest.len() < 2 {
                return Err("usage: query twopath <R> <S> …".into());
            }
            let (r, s) = (rest.remove(0), rest.remove(0));
            let counts = take_flag(&mut rest, "counts");
            let min = take_value(&mut rest, "min")?;
            match (counts, min) {
                (_, Some(c)) => Request::two_path_counts(r, s, c),
                (true, None) => Request::two_path_counts(r, s, 1),
                (false, None) => Request::two_path(r, s),
            }
        }
        "star" => {
            let mut names = Vec::new();
            while !rest.is_empty() && !matches!(rest[0], "limit" | "engine") {
                names.push(rest.remove(0));
            }
            if names.is_empty() {
                return Err("usage: query star <R1> [… Rk] …".into());
            }
            Request::star(names)
        }
        "chain" => {
            let mut names = Vec::new();
            while !rest.is_empty() && !matches!(rest[0], "limit" | "engine") {
                names.push(rest.remove(0));
            }
            if names.is_empty() {
                return Err("usage: query chain <R1> [… Rk] …".into());
            }
            Request::chain(names)
        }
        "sim" => {
            if rest.len() < 2 {
                return Err("usage: query sim <R> <c> …".into());
            }
            let r = rest.remove(0);
            let c: u32 = rest.remove(0).parse().map_err(|_| "bad threshold c")?;
            let req = Request::similarity(r, c);
            if take_flag(&mut rest, "ordered") {
                req.ordered()
            } else {
                req
            }
        }
        "contain" => {
            if rest.is_empty() {
                return Err("usage: query contain <R> …".into());
            }
            Request::containment(rest.remove(0))
        }
        other => return Err(format!("unknown query family `{other}`")),
    };
    if let Some(limit) = take_value(&mut rest, "limit")? {
        request = request.limit(limit as u64);
    }
    if let Some(pos) = rest.iter().position(|&t| t == "engine") {
        let name = *rest
            .get(pos + 1)
            .ok_or("engine flag needs a registry name")?;
        request = request.on_engine(name);
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        return Err(format!("unrecognised trailing tokens: {rest:?}"));
    }
    Ok((request, show))
}

fn run_query(service: &Service, tokens: &[&str]) -> Result<String, String> {
    let (request, show) = parse_request(tokens)?;
    let t0 = Instant::now();
    let response = service.query(request).map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    let mut out = format!(
        "ok rows {} engine {} cached {}{} {:.3}s{}",
        response.rows.len(),
        response.stats.engine,
        response.cached,
        if response.maintained {
            " (maintained)"
        } else {
            ""
        },
        secs,
        if response.truncated {
            " (limit reached)"
        } else {
            ""
        }
    );
    if show {
        for (row, count) in response.rows.iter().zip(response.counts.iter()).take(20) {
            let cells: Vec<String> = row.iter().map(u32::to_string).collect();
            if *count > 0 {
                out.push_str(&format!("\n  ({}) x{count}", cells.join(", ")));
            } else {
                out.push_str(&format!("\n  ({})", cells.join(", ")));
            }
        }
        if response.rows.len() > 20 {
            out.push_str(&format!("\n  … {} more", response.rows.len() - 20));
        }
    }
    Ok(out)
}

fn register_report(service: &Service, name: &str, rel: Relation) -> Result<String, String> {
    let epoch = service.register(name, rel);
    let p = service.relation_profile(name).unwrap();
    Ok(format!(
        "ok relation {name}: {} tuples, {} sets, {} elements (epoch {epoch})",
        p.tuples, p.active_x, p.active_y
    ))
}

/// Parses `Q(x, w) :- R(x, y), S(y, z)` into a general request. The head
/// name is cosmetic; variables are arbitrary identifiers interned to ids
/// (canonicalization relabels them anyway).
fn parse_datalog(text: &str) -> Result<Request, String> {
    let (head, body) = text
        .split_once(":-")
        .ok_or("datalog query needs `Head(..) :- Body(..)`")?;
    let mut vars: Vec<String> = Vec::new();
    fn intern(vars: &mut Vec<String>, name: &str) -> u32 {
        match vars.iter().position(|v| v == name) {
            Some(i) => i as u32,
            None => {
                vars.push(name.to_string());
                vars.len() as u32 - 1
            }
        }
    }
    let mut atoms = Vec::new();
    for frag in body.split(')') {
        let frag = frag.trim().trim_start_matches(',').trim();
        if frag.is_empty() {
            continue;
        }
        let (name, vs) = parse_rule_atom(&format!("{frag})"))?;
        if vs.len() != 2 {
            return Err(format!(
                "atom `{name}` must have exactly 2 variables, got {}",
                vs.len()
            ));
        }
        let (x, y) = (intern(&mut vars, &vs[0]), intern(&mut vars, &vs[1]));
        atoms.push(AtomSpec {
            relation: name,
            x,
            y,
        });
    }
    if atoms.is_empty() {
        return Err("rule body has no atoms".into());
    }
    let (_, head_vars) = parse_rule_atom(head)?;
    let mut projection = Vec::with_capacity(head_vars.len());
    for v in &head_vars {
        if !vars.contains(v) {
            return Err(format!("head variable `{v}` does not occur in the body"));
        }
        projection.push(intern(&mut vars, v));
    }
    Ok(Request::general(atoms, projection))
}

/// `Name(v1, v2, …)` → `(name, vars)`.
fn parse_rule_atom(text: &str) -> Result<(String, Vec<String>), String> {
    let text = text.trim();
    let (name, rest) = text
        .split_once('(')
        .ok_or_else(|| format!("bad atom `{text}` (expected `Name(v, …)`)"))?;
    let inner = rest
        .trim()
        .strip_suffix(')')
        .ok_or_else(|| format!("bad atom `{text}` (missing `)`)"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("bad atom `{text}` (missing relation name)"));
    }
    let vars: Vec<String> = inner.split(',').map(|v| v.trim().to_string()).collect();
    if vars.iter().any(String::is_empty) {
        return Err(format!("bad atom `{text}` (empty variable name)"));
    }
    Ok((name.to_string(), vars))
}

fn parse_edges(tokens: &[&str]) -> Result<Relation, String> {
    let mut b = RelationBuilder::new();
    for (x, y) in parse_edge_pairs(tokens)? {
        b.push(x, y);
    }
    Ok(b.build())
}

fn parse_edge_pairs(tokens: &[&str]) -> Result<Vec<Edge>, String> {
    if tokens.is_empty() {
        return Err("no edges given (format: x,y)".into());
    }
    tokens
        .iter()
        .map(|t| {
            let (x, y) = t.split_once(',').ok_or_else(|| format!("bad edge `{t}`"))?;
            let x: u32 = x.trim().parse().map_err(|_| format!("bad edge `{t}`"))?;
            let y: u32 = y.trim().parse().map_err(|_| format!("bad edge `{t}`"))?;
            Ok((x, y))
        })
        .collect()
}

/// Renders the outcome of an insert/delete batch: what changed and how
/// each affected cached result was refreshed.
fn delta_report(service: &Service, name: &str, report: &MaintenanceReport) -> String {
    let profile = service.relation_profile(name).expect("relation exists");
    if report.is_noop() {
        return format!(
            "ok relation {name}: unchanged ({} tuples, epoch {}), cache untouched",
            profile.tuples, report.epoch
        );
    }
    format!(
        "ok relation {name}: +{} -{} tuples (now {}), epoch {}, \
         cache maintained {} recomputed {} invalidated {}",
        report.inserted,
        report.deleted,
        profile.tuples,
        report.epoch,
        report.maintained,
        report.recomputed,
        report.invalidated
    )
}

fn parse_dataset(name: &str) -> Result<mmjoin_datagen::DatasetKind, String> {
    use mmjoin_datagen::DatasetKind;
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown dataset `{name}` (one of: {})",
                DatasetKind::ALL.map(|k| k.name()).join(", ")
            )
        })
}

/// Removes `flag` from `rest` if present, reporting whether it was.
fn take_flag(rest: &mut Vec<&str>, flag: &str) -> bool {
    match rest.iter().position(|&t| t == flag) {
        Some(pos) => {
            rest.remove(pos);
            true
        }
        None => false,
    }
}

/// Removes `key <value>` from `rest` if present, returning the value.
fn take_str_value(rest: &mut Vec<&str>, key: &str) -> Result<Option<String>, String> {
    let Some(pos) = rest.iter().position(|&t| t == key) else {
        return Ok(None);
    };
    let value = rest
        .get(pos + 1)
        .map(|v| v.to_string())
        .ok_or_else(|| format!("`{key}` needs a value"))?;
    rest.drain(pos..=pos + 1);
    Ok(Some(value))
}

/// Removes `key <u32>` from `rest` if present.
fn take_value(rest: &mut Vec<&str>, key: &str) -> Result<Option<u32>, String> {
    let Some(pos) = rest.iter().position(|&t| t == key) else {
        return Ok(None);
    };
    let value = rest
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("`{key}` needs a number"))?;
    rest.drain(pos..=pos + 1);
    Ok(Some(value))
}

const HELP: &str = "ok commands:
  register <name> <x,y> [<x,y> …]     inline edge list
  load <name> <path>                  whitespace edge-list file
  gen <name> <dataset> <scale>        synthetic Table-2 dataset (DBLP, RoadNet, Jokes, Words, Protein, Image)
  update <name> add <x,y> [<x,y> …]   add tuples by full re-registration (bumps epoch, invalidates cache)
  insert <name> <x,y> [<x,y> …]       staged delta: cached results are maintained in place
  delete <name> <x,y> [<x,y> …]       staged delta: deletions tracked via support counts
  query twopath <R> <S> [counts] [min <c>] [limit <n>] [engine <E>] [show]
  query star <R1> <R2> [… Rk] [limit <n>] [show]
  query chain <R1> <R2> [… Rk] [limit <n>] [engine <E>] [show]
  query sim <R> <c> [ordered] [limit <n>] [show]
  query contain <R> [limit <n>] [show]
  query Q(x,w) :- R(x,y), S(y,z), T(z,w)   general acyclic query, datalog style
                                           ([limit <n>] [engine <E>] [show] after the rule)
  explain <query …>                        chosen engine + decomposition, without executing
  catalog | engines | stats | help | quit
";
