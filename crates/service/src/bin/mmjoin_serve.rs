//! `mmjoin-serve` — the join service behind a line-oriented protocol.
//!
//! Reads commands from stdin, one per line, and answers on stdout; every
//! answer starts with a single `ok …` / `err …` line (followed by
//! indented row lines for `query … show`). Pipe a script in, or drive it
//! interactively:
//!
//! ```text
//! $ cargo run --release -p mmjoin-service --bin mmjoin-serve
//! gen R Jokes 0.05
//! ok relation R: 24734 tuples, 805 sets, 143 elements (epoch 1)
//! query twopath R R
//! ok rows 648025 engine MMJoin cached false 0.312s
//! query twopath R R
//! ok rows 648025 engine MMJoin cached true 0.000s
//! stats
//! ok served 2 (cache hits 1, 50.0%), …
//! ```
//!
//! Run with `--workers <n>` to size the pool (default 4). Type `help`
//! for the full command list.
//!
//! The grammar and the interpreter live in
//! [`mmjoin_service::command`] — the exact same layer `mmjoin-netd`
//! dispatches over TCP, so the two transports can never drift. This
//! binary is only the stdin/stdout plumbing. Bad lines are answered
//! with `err … (offending token: …)`, never silently skipped.

use mmjoin_service::command::{self, Command};
use mmjoin_service::Service;
use std::io::BufRead;

fn main() {
    let workers = std::env::args()
        .skip_while(|a| a != "--workers")
        .nth(1)
        .and_then(|w| w.parse().ok())
        .unwrap_or(4);
    let service = Service::with_default_registry(workers);

    println!(
        "mmjoin-serve ready: {} workers, {} engines (type `help`)",
        service.workers(),
        service.registry().len()
    );
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match Command::parse(trimmed) {
            Ok(cmd) => {
                // On stdin, `shutdown` and `quit` both just end the
                // session — queries already ran to completion, so the
                // drain is trivially done.
                let terminal = cmd.is_terminal();
                match command::execute(&service, cmd) {
                    Ok(answer) => println!("{answer}"),
                    Err(msg) => println!("err {msg}"),
                }
                if terminal {
                    break;
                }
            }
            Err(err) => println!("err {err}"),
        }
    }
}
