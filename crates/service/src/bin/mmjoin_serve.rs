//! `mmjoin-serve` — the join service behind a line-oriented protocol.
//!
//! Reads commands from stdin, one per line, and answers on stdout; every
//! answer starts with a single `ok …` / `err …` line (followed by
//! indented row lines for `query … show`). Pipe a script in, or drive it
//! interactively:
//!
//! ```text
//! $ cargo run --release -p mmjoin-service --bin mmjoin-serve
//! gen R Jokes 0.05
//! ok relation R: 24734 tuples, 805 sets, 143 elements (epoch 1)
//! query twopath R R
//! ok rows 648025 engine MMJoin cached false 0.312s
//! query twopath R R
//! ok rows 648025 engine MMJoin cached true 0.000s
//! stats
//! ok served 2 (cache hits 1, 50.0%), …
//! ```
//!
//! Run with `--workers <n>` to size the inter-query pool (default 4),
//! `--threads <n>` to grant an intra-query thread budget (engines then
//! request the whole budget per query; default keeps engines serial),
//! `--calibrate` to measure the dispatched GEMM kernel at startup —
//! sweeping the cores axis up to the thread budget — and re-derive the
//! planner's strategy crossover from it, and `--calibration <path>` to
//! cache that measurement across restarts (stale kernel tags, or a
//! cores axis short of the configured budget, force a re-measure). Type
//! `help` for the full command list.
//!
//! The grammar and the interpreter live in
//! [`mmjoin_service::command`] — the exact same layer `mmjoin-netd`
//! dispatches over TCP, so the two transports can never drift. This
//! binary is only the stdin/stdout plumbing. Bad lines are answered
//! with `err … (offending token: …)`, never silently skipped.

use mmjoin_obs::trace::{chrome_json, span, Stage, Tracer};
use mmjoin_service::command::{self, Command};
use mmjoin_service::{Service, ServiceConfig};
use std::io::BufRead;

fn arg_value<T: std::str::FromStr>(flag: &str) -> Option<T> {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|v| v.parse().ok())
}

fn main() {
    let workers: usize = arg_value("--workers").unwrap_or(4);
    let threads: Option<usize> = arg_value("--threads");
    let trace_out: Option<String> = arg_value("--trace-out");
    let slow_query_us: u64 = arg_value("--slow-query").unwrap_or(0);
    let calibration_path: Option<std::path::PathBuf> = arg_value("--calibration");
    let calibrate_cost = calibration_path.is_some() || std::env::args().any(|a| a == "--calibrate");

    let tracer = Tracer::global();
    if trace_out.is_some() || slow_query_us > 0 {
        tracer.set_enabled(true);
    }

    let mut config = ServiceConfig {
        workers,
        slow_query_us,
        calibrate_cost,
        calibration_path,
        ..ServiceConfig::default()
    };
    if let Some(budget) = threads {
        // `--threads n` grants an intra-query budget of n and asks the
        // engines to use all of it (`join_config.threads = 0` means "the
        // executor's full budget"); 0 means machine parallelism. The
        // startup calibration sweeps its cores axis up to this budget.
        config.thread_budget = budget;
        config.join_config.threads = 0;
    }
    let service = Service::with_config(config);

    println!(
        "mmjoin-serve ready: {} workers, {} engines, {} kernel{} (type `help`)",
        service.workers(),
        service.registry().len(),
        mmjoin_matrix::active_kernel(),
        if calibrate_cost { ", calibrated" } else { "" }
    );
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Each line is one request: mint its root span here, at the
        // REPL boundary (the stdin analogue of the wire boundary).
        let root = tracer.begin(trimmed);
        let parse_span = span(Stage::Parse, "command-parse");
        let parsed = Command::parse(trimmed);
        drop(parse_span);
        match parsed {
            Ok(cmd) => {
                // On stdin, `shutdown` and `quit` both just end the
                // session — queries already ran to completion, so the
                // drain is trivially done.
                let terminal = cmd.is_terminal();
                match command::execute(&service, cmd) {
                    Ok(answer) => println!("{answer}"),
                    Err(msg) => println!("err {msg}"),
                }
                if terminal {
                    drop(root);
                    break;
                }
            }
            Err(err) => println!("err {err}"),
        }
        drop(root);
    }
    if let Some(path) = trace_out {
        let traces = tracer.last(usize::MAX);
        match std::fs::write(&path, chrome_json(&traces)) {
            Ok(()) => println!("wrote {} trace(s) to {path}", traces.len()),
            Err(e) => eprintln!("mmjoin-serve: write {path}: {e}"),
        }
    }
}
