//! Shared command layer: one grammar, two transports.
//!
//! Both the stdin REPL (`mmjoin-serve`) and the TCP server
//! (`mmjoin-netd`) speak the same line-oriented command language. This
//! module owns the grammar — [`Command::parse`] turns a line into a
//! typed [`Command`], reporting parse failures with the offending token
//! — and the interpreter — [`execute`] runs a command against a
//! [`Service`] and renders the single `ok …` / `err …` answer both
//! transports print verbatim. Transports only differ in how lines
//! arrive and where answers go.

use crate::metrics::MetricsSnapshot;
use crate::{AtomSpec, MaintenanceReport, Request, Service};
use mmjoin_executor::ExecutorStats;
use mmjoin_obs::trace::{self, chrome_json, Stage, Tracer};
use mmjoin_storage::io::read_edge_list;
use mmjoin_storage::{Edge, Relation, RelationBuilder};
use std::time::Instant;

/// A parse failure carrying the token that caused it, so transports can
/// point at the exact offender instead of swallowing bad lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The token (or fragment) that made the parse fail, when one is
    /// identifiable; `None` for structural errors like a missing
    /// argument.
    pub token: Option<String>,
    /// Human-readable description (usage string or reason).
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            token: None,
            message: message.into(),
        }
    }

    fn at(token: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            token: Some(token.into()),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.token {
            Some(token) => write!(f, "{} (offending token: `{token}`)", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed command. Parsing is pure (no catalog lookups, no I/O —
/// `load` keeps its path and opens it at execute time), so a `Command`
/// can be validated on one thread and executed on another.
#[derive(Debug)]
pub enum Command {
    /// `help`
    Help,
    /// `register <name> <x,y> …`
    Register { name: String, relation: Relation },
    /// `load <name> <path>`
    Load { name: String, path: String },
    /// `gen <name> <dataset> <scale>`
    Gen {
        name: String,
        dataset: mmjoin_datagen::DatasetKind,
        scale: f64,
    },
    /// `update <name> add <x,y> …` (full re-registration)
    Update { name: String, edges: Vec<Edge> },
    /// `insert <name> <x,y> …` (staged delta)
    Insert { name: String, edges: Vec<Edge> },
    /// `delete <name> <x,y> …` (staged delta)
    Delete { name: String, edges: Vec<Edge> },
    /// `catalog`
    Catalog,
    /// `engines`
    Engines,
    /// `stats [service|net|executor|cache] [--json]`
    Stats { scope: StatsScope, json: bool },
    /// `stats reset` — zero every counter, keep registrations.
    StatsReset,
    /// `trace on|off` / `trace sample <n>` / `trace last [n]` /
    /// `trace tree [n]`
    Trace(TraceCmd),
    /// `query …`; `show` carries the max rows to print (None = don't).
    Query {
        request: Request,
        show: Option<usize>,
    },
    /// `explain <query …>`
    Explain { request: Request },
    /// `quit` / `exit` — close this client's session.
    Quit,
    /// `shutdown` — stop the whole server, draining in-flight work.
    Shutdown,
}

/// Which subsystem `stats` reports on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsScope {
    /// Bare `stats` / `stats --json`: the service snapshot (plus the
    /// executor, cache and front end under `--json`).
    All,
    /// `stats service`
    Service,
    /// `stats net` — the transport front end, when one is attached.
    Net,
    /// `stats executor` — the shared intra-query pool.
    Executor,
    /// `stats cache` — the result cache's own counters.
    Cache,
}

/// A `trace …` subcommand against the process-global [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCmd {
    /// `trace on` — start tracing requests.
    On,
    /// `trace off` — back to the single-atomic-load fast path.
    Off,
    /// `trace sample <n>` — trace every n-th request.
    Sample(u64),
    /// `trace last [n]` — export the last n finished traces as Chrome
    /// trace-event JSON (load in `chrome://tracing` / Perfetto).
    Last(usize),
    /// `trace tree [n]` — render the last n finished traces as
    /// indented span trees with per-stage durations.
    Tree(usize),
}

impl Command {
    /// Parses one non-empty, non-comment line. The caller is expected
    /// to skip blank lines and `#` comments (transport concerns).
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some(&head) = tokens.first() else {
            return Err(ParseError::new("empty command"));
        };
        match head {
            "help" => Ok(Command::Help),
            "quit" | "exit" => Ok(Command::Quit),
            "shutdown" => Ok(Command::Shutdown),
            "catalog" => Ok(Command::Catalog),
            "engines" => Ok(Command::Engines),
            "stats" => parse_stats(&tokens[1..]),
            "trace" => parse_trace(&tokens[1..]),
            "register" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: register <name> <x,y> …"))?;
                let relation = parse_edges(&tokens[2..])?;
                Ok(Command::Register {
                    name: name.to_string(),
                    relation,
                })
            }
            "load" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: load <name> <path>"))?;
                let path = *tokens
                    .get(2)
                    .ok_or(ParseError::new("usage: load <name> <path>"))?;
                Ok(Command::Load {
                    name: name.to_string(),
                    path: path.to_string(),
                })
            }
            "gen" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: gen <name> <dataset> <scale>"))?;
                let dataset = parse_dataset(
                    tokens
                        .get(2)
                        .copied()
                        .ok_or(ParseError::new("missing dataset"))?,
                )?;
                let scale_token = tokens
                    .get(3)
                    .copied()
                    .ok_or(ParseError::new("missing scale"))?;
                let scale: f64 = scale_token
                    .parse()
                    .map_err(|_| ParseError::at(scale_token, "bad scale"))?;
                Ok(Command::Gen {
                    name: name.to_string(),
                    dataset,
                    scale,
                })
            }
            "update" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: update <name> add <x,y> …"))?;
                match tokens.get(2) {
                    Some(&"add") => {}
                    Some(&other) => {
                        return Err(ParseError::at(other, "usage: update <name> add <x,y> …"))
                    }
                    None => return Err(ParseError::new("usage: update <name> add <x,y> …")),
                }
                Ok(Command::Update {
                    name: name.to_string(),
                    edges: parse_edge_pairs(&tokens[3..])?,
                })
            }
            "insert" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: insert <name> <x,y> …"))?;
                Ok(Command::Insert {
                    name: name.to_string(),
                    edges: parse_edge_pairs(&tokens[2..])?,
                })
            }
            "delete" => {
                let name = *tokens
                    .get(1)
                    .ok_or(ParseError::new("usage: delete <name> <x,y> …"))?;
                Ok(Command::Delete {
                    name: name.to_string(),
                    edges: parse_edge_pairs(&tokens[2..])?,
                })
            }
            "query" => {
                let (request, show) = parse_request(&tokens[1..])?;
                Ok(Command::Query { request, show })
            }
            "explain" => {
                let (request, _) = parse_request(&tokens[1..])?;
                Ok(Command::Explain { request })
            }
            other => Err(ParseError::at(other, "unknown command (type `help`)")),
        }
    }

    /// Commands that end the session (`quit`) or the server (`shutdown`).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Command::Quit | Command::Shutdown)
    }
}

/// The transport hosting this command session, as far as `stats` is
/// concerned. The REPL has no network front end ([`NoFrontend`]); the
/// TCP server implements this over its `NetMetrics` so `stats net` and
/// `stats reset` reach the transport counters without the service crate
/// depending on the net crate.
pub trait Frontend {
    /// One-line human-readable transport stats, `None` when the
    /// transport has none (then `stats net` is an error).
    fn net_stats(&self) -> Option<String> {
        None
    }
    /// The same counters as a JSON object, `None` when absent.
    fn net_stats_json(&self) -> Option<String> {
        None
    }
    /// Zeroes the transport counters as part of `stats reset`.
    fn reset_stats(&self) {}
}

/// The frontend of transports without one (REPL, tests, direct calls).
pub struct NoFrontend;

impl Frontend for NoFrontend {}

/// Runs one command against the service. `Ok` answers already carry
/// their leading `ok`; transports wrap `Err` in a leading `err `.
/// Equivalent to [`execute_with`] over [`NoFrontend`].
pub fn execute(service: &Service, cmd: Command) -> Result<String, String> {
    execute_with(service, cmd, &NoFrontend)
}

/// Runs one command against the service, with `frontend` answering for
/// the transport in `stats net` / `stats reset`.
pub fn execute_with(
    service: &Service,
    cmd: Command,
    frontend: &dyn Frontend,
) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(HELP.trim_end().to_string()),
        Command::Register { name, relation } => register_report(service, &name, relation),
        Command::Load { name, path } => {
            let file = std::fs::File::open(&path).map_err(|e| format!("open {path}: {e}"))?;
            let rel = read_edge_list(file).map_err(|e| format!("parse {path}: {e}"))?;
            register_report(service, &name, rel)
        }
        Command::Gen {
            name,
            dataset,
            scale,
        } => {
            let rel = mmjoin_datagen::generate(dataset, scale, 2020);
            register_report(service, &name, rel)
        }
        Command::Update { name, edges } => {
            let old = service
                .relation_edges(&name)
                .ok_or_else(|| format!("no relation `{name}`"))?;
            let tuples_before = old.len();
            let mut b = RelationBuilder::new();
            for (x, y) in old.into_iter().chain(edges) {
                b.push(x, y);
            }
            let epoch = service
                .update(&name, b.build())
                .map_err(|e| e.to_string())?;
            let profile = service.relation_profile(&name).unwrap();
            Ok(format!(
                "ok relation {name}: {} tuples (was {tuples_before}), epoch {epoch}",
                profile.tuples
            ))
        }
        Command::Insert { name, edges } => {
            let report = service.insert(&name, edges).map_err(|e| e.to_string())?;
            Ok(delta_report(service, &name, &report))
        }
        Command::Delete { name, edges } => {
            let report = service.delete(&name, edges).map_err(|e| e.to_string())?;
            Ok(delta_report(service, &name, &report))
        }
        Command::Catalog => {
            let names = service.relation_names();
            if names.is_empty() {
                return Ok("ok catalog empty".into());
            }
            let mut out = format!(
                "ok {} relations (epoch {})",
                names.len(),
                service.catalog_epoch()
            );
            for name in names {
                let p = service.relation_profile(&name).unwrap();
                out.push_str(&format!(
                    "\n  {name}: {} tuples, {} sets, {} elements, max set {} / max element degree {}",
                    p.tuples, p.active_x, p.active_y, p.max_x_degree, p.max_y_degree
                ));
            }
            Ok(out)
        }
        Command::Engines => {
            let names = service.registry().names();
            Ok(format!("ok {} engines: {}", names.len(), names.join(", ")))
        }
        Command::Stats { scope, json } => run_stats(service, scope, json, frontend),
        Command::StatsReset => {
            service.reset_metrics();
            frontend.reset_stats();
            Ok("ok stats reset (registrations kept)".into())
        }
        Command::Trace(tc) => run_trace(tc),
        Command::Query { request, show } => run_query(service, request, show),
        Command::Explain { request } => {
            let lines = service.explain(request).map_err(|e| e.to_string())?;
            Ok(format!("ok {}", lines.join("\n  ")))
        }
        Command::Quit => Ok("ok bye".into()),
        Command::Shutdown => Ok("ok shutting down".into()),
    }
}

/// Parses one line end to end and executes it — the convenience every
/// transport dispatcher calls. Parse errors come back as the same
/// `Err(String)` shape as execution errors (with the offending token).
pub fn run_line(service: &Service, line: &str) -> Result<String, String> {
    let cmd = Command::parse(line).map_err(|e| e.to_string())?;
    execute(service, cmd)
}

/// Parses everything after `stats`.
fn parse_stats(tokens: &[&str]) -> Result<Command, ParseError> {
    const USAGE: &str = "usage: stats [service|net|executor|cache] [--json] | stats reset";
    let mut scope = StatsScope::All;
    let mut json = false;
    for &t in tokens {
        match t {
            "reset" if tokens.len() == 1 => return Ok(Command::StatsReset),
            "service" => scope = StatsScope::Service,
            "net" => scope = StatsScope::Net,
            "executor" => scope = StatsScope::Executor,
            "cache" => scope = StatsScope::Cache,
            "--json" | "json" => json = true,
            other => return Err(ParseError::at(other, USAGE)),
        }
    }
    Ok(Command::Stats { scope, json })
}

/// Parses everything after `trace`.
fn parse_trace(tokens: &[&str]) -> Result<Command, ParseError> {
    const USAGE: &str = "usage: trace on|off | trace sample <n> | trace last [n] | trace tree [n]";
    let count = |tokens: &[&str], default: usize| -> Result<usize, ParseError> {
        match tokens.first() {
            None => Ok(default),
            Some(&t) => t.parse().map_err(|_| ParseError::at(t, USAGE)),
        }
    };
    match tokens.first() {
        Some(&"on") => Ok(Command::Trace(TraceCmd::On)),
        Some(&"off") => Ok(Command::Trace(TraceCmd::Off)),
        Some(&"sample") => {
            let t = *tokens.get(1).ok_or(ParseError::new(USAGE))?;
            let n: u64 = t.parse().map_err(|_| ParseError::at(t, USAGE))?;
            Ok(Command::Trace(TraceCmd::Sample(n)))
        }
        Some(&"last") => Ok(Command::Trace(TraceCmd::Last(count(&tokens[1..], 1)?))),
        Some(&"tree") => Ok(Command::Trace(TraceCmd::Tree(count(&tokens[1..], 1)?))),
        Some(other) => Err(ParseError::at(*other, USAGE)),
        None => Err(ParseError::new(USAGE)),
    }
}

/// Parses everything after `query` / `explain` into a request plus the
/// `show [n]` row budget. Accepts the per-family keyword forms *and* a
/// datalog-ish general form `Q(x,w) :- R(x,y), S(y,z), T(z,w)`.
fn parse_request(tokens: &[&str]) -> Result<(Request, Option<usize>), ParseError> {
    let family = *tokens
        .first()
        .ok_or(ParseError::new("usage: query <family|datalog> …"))?;
    let mut rest: Vec<&str> = tokens[1..].to_vec();

    if family.contains('(') {
        // Datalog form: strip trailing flags, re-join, parse the rule.
        let mut rest: Vec<&str> = tokens.to_vec();
        let show = take_show(&mut rest);
        let limit = take_value(&mut rest, "limit")?;
        let engine = take_str_value(&mut rest, "engine")?;
        let mut request = parse_datalog(&rest.join(" "))?;
        if let Some(limit) = limit {
            request = request.limit(limit as u64);
        }
        if let Some(engine) = engine {
            request = request.on_engine(engine);
        }
        return Ok((request, show));
    }

    let show = take_show(&mut rest);
    let mut request = match family {
        "twopath" => {
            if rest.len() < 2 {
                return Err(ParseError::new("usage: query twopath <R> <S> …"));
            }
            let (r, s) = (rest.remove(0), rest.remove(0));
            let counts = take_flag(&mut rest, "counts");
            let min = take_value(&mut rest, "min")?;
            match (counts, min) {
                (_, Some(c)) => Request::two_path_counts(r, s, c),
                (true, None) => Request::two_path_counts(r, s, 1),
                (false, None) => Request::two_path(r, s),
            }
        }
        "star" => {
            let mut names = Vec::new();
            while !rest.is_empty() && !matches!(rest[0], "limit" | "engine") {
                names.push(rest.remove(0));
            }
            if names.is_empty() {
                return Err(ParseError::new("usage: query star <R1> [… Rk] …"));
            }
            Request::star(names)
        }
        "chain" => {
            let mut names = Vec::new();
            while !rest.is_empty() && !matches!(rest[0], "limit" | "engine") {
                names.push(rest.remove(0));
            }
            if names.is_empty() {
                return Err(ParseError::new("usage: query chain <R1> [… Rk] …"));
            }
            Request::chain(names)
        }
        "sim" => {
            if rest.len() < 2 {
                return Err(ParseError::new("usage: query sim <R> <c> …"));
            }
            let r = rest.remove(0);
            let c_token = rest.remove(0);
            let c: u32 = c_token
                .parse()
                .map_err(|_| ParseError::at(c_token, "bad threshold c"))?;
            let req = Request::similarity(r, c);
            if take_flag(&mut rest, "ordered") {
                req.ordered()
            } else {
                req
            }
        }
        "contain" => {
            if rest.is_empty() {
                return Err(ParseError::new("usage: query contain <R> …"));
            }
            Request::containment(rest.remove(0))
        }
        other => return Err(ParseError::at(other, "unknown query family")),
    };
    if let Some(limit) = take_value(&mut rest, "limit")? {
        request = request.limit(limit as u64);
    }
    if let Some(pos) = rest.iter().position(|&t| t == "engine") {
        let name = *rest.get(pos + 1).ok_or(ParseError::at(
            "engine",
            "engine flag needs a registry name",
        ))?;
        request = request.on_engine(name);
        rest.drain(pos..=pos + 1);
    }
    if !rest.is_empty() {
        return Err(ParseError::at(
            rest.join(" "),
            "unrecognised trailing tokens",
        ));
    }
    Ok((request, show))
}

/// Executes `stats [scope] [--json]`.
fn run_stats(
    service: &Service,
    scope: StatsScope,
    json: bool,
    frontend: &dyn Frontend,
) -> Result<String, String> {
    let cache = || {
        let (hits, misses, evictions, invalidations) = service.cache_counters();
        (hits, misses, evictions, invalidations, service.cache_len())
    };
    if json {
        let body = match scope {
            StatsScope::Service => service_json(&service.metrics()),
            StatsScope::Net => frontend
                .net_stats_json()
                .ok_or("no network front end attached (stats net needs mmjoin-netd)")?,
            StatsScope::Executor => executor_json(&service.executor_stats()),
            StatsScope::Cache => cache_json(cache()),
            StatsScope::All => {
                let mut body = format!(
                    "{{\"service\":{},\"executor\":{},\"cache\":{}",
                    service_json(&service.metrics()),
                    executor_json(&service.executor_stats()),
                    cache_json(cache()),
                );
                if let Some(net) = frontend.net_stats_json() {
                    body.push_str(&format!(",\"net\":{net}"));
                }
                body.push('}');
                body
            }
        };
        return Ok(format!("ok {body}"));
    }
    match scope {
        StatsScope::All | StatsScope::Service => Ok(format!("ok {}", service.metrics())),
        StatsScope::Net => frontend
            .net_stats()
            .map(|s| format!("ok {s}"))
            .ok_or_else(|| "no network front end attached (stats net needs mmjoin-netd)".into()),
        StatsScope::Executor => Ok(format!("ok {}", service.executor_stats())),
        StatsScope::Cache => {
            let (hits, misses, evictions, invalidations, entries) = cache();
            Ok(format!(
                "ok cache hits {hits}, misses {misses}, evictions {evictions}, \
                 invalidations {invalidations}, entries {entries}"
            ))
        }
    }
}

/// The service snapshot as a JSON object (field names match the struct).
fn service_json(m: &MetricsSnapshot) -> String {
    format!(
        "{{\"queries_served\":{},\"cache_hits\":{},\"cache_hit_rate\":{:.4},\"errors\":{},\
         \"rejected\":{},\"slow_queries\":{},\"queue_depth\":{},\"max_queue_depth\":{},\
         \"updates\":{},\"maintained\":{},\"recomputed\":{},\"invalidated\":{},\
         \"cache_invalidations\":{},\"mean_latency_us\":{},\"p50_latency_us\":{},\
         \"p99_latency_us\":{},\"max_latency_us\":{}}}",
        m.queries_served,
        m.cache_hits,
        m.cache_hit_rate,
        m.errors,
        m.rejected,
        m.slow_queries,
        m.queue_depth,
        m.max_queue_depth,
        m.updates,
        m.maintained,
        m.recomputed,
        m.invalidated,
        m.cache_invalidations,
        m.mean_latency_us,
        m.p50_latency_us,
        m.p99_latency_us,
        m.max_latency_us,
    )
}

/// The executor snapshot as a JSON object.
fn executor_json(e: &ExecutorStats) -> String {
    format!(
        "{{\"budget\":{},\"tokens_free\":{},\"batches\":{},\"tasks\":{},\"stolen_tasks\":{},\
         \"granted_tokens\":{},\"inline_serial\":{}}}",
        e.budget,
        e.tokens_free,
        e.batches,
        e.tasks,
        e.stolen_tasks,
        e.granted_tokens,
        e.inline_serial,
    )
}

/// The result-cache counters as a JSON object.
fn cache_json(
    (hits, misses, evictions, invalidations, entries): (u64, u64, u64, u64, usize),
) -> String {
    format!(
        "{{\"hits\":{hits},\"misses\":{misses},\"evictions\":{evictions},\
         \"invalidations\":{invalidations},\"entries\":{entries}}}"
    )
}

/// Executes a `trace …` subcommand against the global tracer.
fn run_trace(cmd: TraceCmd) -> Result<String, String> {
    let tracer = Tracer::global();
    match cmd {
        TraceCmd::On => {
            tracer.set_enabled(true);
            Ok("ok tracing on".into())
        }
        TraceCmd::Off => {
            tracer.set_enabled(false);
            Ok("ok tracing off".into())
        }
        TraceCmd::Sample(n) => {
            tracer.set_sample_every(n);
            tracer.set_enabled(true);
            Ok(format!("ok tracing on, sampling every {}", n.max(1)))
        }
        TraceCmd::Last(n) => {
            let traces = tracer.last(n.max(1));
            if traces.is_empty() {
                return Err("no finished traces (is tracing on? try `trace on`)".into());
            }
            Ok(format!("ok {}", chrome_json(&traces)))
        }
        TraceCmd::Tree(n) => {
            let traces = tracer.last(n.max(1));
            if traces.is_empty() {
                return Err("no finished traces (is tracing on? try `trace on`)".into());
            }
            let trees: Vec<String> = traces.iter().map(|t| t.render()).collect();
            Ok(format!("ok {}", trees.join("\n").trim_end()))
        }
    }
}

fn run_query(service: &Service, request: Request, show: Option<usize>) -> Result<String, String> {
    let t0 = Instant::now();
    let response = service.query(request).map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    let _ser_span = trace::span(Stage::Serialize, "render-response");
    let mut out = format!(
        "ok rows {} engine {} cached {}{} {:.3}s{}",
        response.rows.len(),
        response.stats.engine,
        response.cached,
        if response.maintained {
            " (maintained)"
        } else {
            ""
        },
        secs,
        if response.truncated {
            " (limit reached)"
        } else {
            ""
        }
    );
    if let Some(max_rows) = show {
        for (row, count) in response
            .rows
            .iter()
            .zip(response.counts.iter())
            .take(max_rows)
        {
            let cells: Vec<String> = row.iter().map(u32::to_string).collect();
            if *count > 0 {
                out.push_str(&format!("\n  ({}) x{count}", cells.join(", ")));
            } else {
                out.push_str(&format!("\n  ({})", cells.join(", ")));
            }
        }
        if response.rows.len() > max_rows {
            out.push_str(&format!("\n  … {} more", response.rows.len() - max_rows));
        }
    }
    Ok(out)
}

fn register_report(service: &Service, name: &str, rel: Relation) -> Result<String, String> {
    let epoch = service.register(name, rel);
    let p = service.relation_profile(name).unwrap();
    Ok(format!(
        "ok relation {name}: {} tuples, {} sets, {} elements (epoch {epoch})",
        p.tuples, p.active_x, p.active_y
    ))
}

/// Parses `Q(x, w) :- R(x, y), S(y, z)` into a general request. The head
/// name is cosmetic; variables are arbitrary identifiers interned to ids
/// (canonicalization relabels them anyway).
fn parse_datalog(text: &str) -> Result<Request, ParseError> {
    let (head, body) = text.split_once(":-").ok_or(ParseError::new(
        "datalog query needs `Head(..) :- Body(..)`",
    ))?;
    let mut vars: Vec<String> = Vec::new();
    fn intern(vars: &mut Vec<String>, name: &str) -> u32 {
        match vars.iter().position(|v| v == name) {
            Some(i) => i as u32,
            None => {
                vars.push(name.to_string());
                vars.len() as u32 - 1
            }
        }
    }
    let mut atoms = Vec::new();
    for frag in body.split(')') {
        let frag = frag.trim().trim_start_matches(',').trim();
        if frag.is_empty() {
            continue;
        }
        let (name, vs) = parse_rule_atom(&format!("{frag})"))?;
        if vs.len() != 2 {
            return Err(ParseError::at(
                frag,
                format!(
                    "atom `{name}` must have exactly 2 variables, got {}",
                    vs.len()
                ),
            ));
        }
        let (x, y) = (intern(&mut vars, &vs[0]), intern(&mut vars, &vs[1]));
        atoms.push(AtomSpec {
            relation: name,
            x,
            y,
        });
    }
    if atoms.is_empty() {
        return Err(ParseError::new("rule body has no atoms"));
    }
    let (_, head_vars) = parse_rule_atom(head)?;
    let mut projection = Vec::with_capacity(head_vars.len());
    for v in &head_vars {
        if !vars.contains(v) {
            return Err(ParseError::at(
                v,
                "head variable does not occur in the body",
            ));
        }
        projection.push(intern(&mut vars, v));
    }
    Ok(Request::general(atoms, projection))
}

/// `Name(v1, v2, …)` → `(name, vars)`.
fn parse_rule_atom(text: &str) -> Result<(String, Vec<String>), ParseError> {
    let text = text.trim();
    let (name, rest) = text
        .split_once('(')
        .ok_or_else(|| ParseError::at(text, "bad atom (expected `Name(v, …)`)"))?;
    let inner = rest
        .trim()
        .strip_suffix(')')
        .ok_or_else(|| ParseError::at(text, "bad atom (missing `)`)"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(ParseError::at(text, "bad atom (missing relation name)"));
    }
    let vars: Vec<String> = inner.split(',').map(|v| v.trim().to_string()).collect();
    if vars.iter().any(String::is_empty) {
        return Err(ParseError::at(text, "bad atom (empty variable name)"));
    }
    Ok((name.to_string(), vars))
}

fn parse_edges(tokens: &[&str]) -> Result<Relation, ParseError> {
    let mut b = RelationBuilder::new();
    for (x, y) in parse_edge_pairs(tokens)? {
        b.push(x, y);
    }
    Ok(b.build())
}

fn parse_edge_pairs(tokens: &[&str]) -> Result<Vec<Edge>, ParseError> {
    if tokens.is_empty() {
        return Err(ParseError::new("no edges given (format: x,y)"));
    }
    tokens
        .iter()
        .map(|t| {
            let bad = || ParseError::at(*t, "bad edge (format: x,y)");
            let (x, y) = t.split_once(',').ok_or_else(bad)?;
            let x: u32 = x.trim().parse().map_err(|_| bad())?;
            let y: u32 = y.trim().parse().map_err(|_| bad())?;
            Ok((x, y))
        })
        .collect()
}

/// Renders the outcome of an insert/delete batch: what changed and how
/// each affected cached result was refreshed.
fn delta_report(service: &Service, name: &str, report: &MaintenanceReport) -> String {
    let profile = service.relation_profile(name).expect("relation exists");
    if report.is_noop() {
        return format!(
            "ok relation {name}: unchanged ({} tuples, epoch {}), cache untouched",
            profile.tuples, report.epoch
        );
    }
    format!(
        "ok relation {name}: +{} -{} tuples (now {}), epoch {}, \
         cache maintained {} recomputed {} invalidated {}",
        report.inserted,
        report.deleted,
        profile.tuples,
        report.epoch,
        report.maintained,
        report.recomputed,
        report.invalidated
    )
}

fn parse_dataset(name: &str) -> Result<mmjoin_datagen::DatasetKind, ParseError> {
    use mmjoin_datagen::DatasetKind;
    DatasetKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            ParseError::at(
                name,
                format!(
                    "unknown dataset (one of: {})",
                    DatasetKind::ALL.map(|k| k.name()).join(", ")
                ),
            )
        })
}

/// Removes `flag` from `rest` if present, reporting whether it was.
fn take_flag(rest: &mut Vec<&str>, flag: &str) -> bool {
    match rest.iter().position(|&t| t == flag) {
        Some(pos) => {
            rest.remove(pos);
            true
        }
        None => false,
    }
}

/// Removes `show [n]` from `rest`: `Some(n)` if the flag was present
/// (default 20 rows when no count follows), `None` otherwise.
fn take_show(rest: &mut Vec<&str>) -> Option<usize> {
    let pos = rest.iter().position(|&t| t == "show")?;
    rest.remove(pos);
    match rest.get(pos).and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => {
            rest.remove(pos);
            Some(n)
        }
        None => Some(20),
    }
}

/// Removes `key <value>` from `rest` if present, returning the value.
fn take_str_value(rest: &mut Vec<&str>, key: &str) -> Result<Option<String>, ParseError> {
    let Some(pos) = rest.iter().position(|&t| t == key) else {
        return Ok(None);
    };
    let value = rest
        .get(pos + 1)
        .map(|v| v.to_string())
        .ok_or_else(|| ParseError::at(key, "flag needs a value"))?;
    rest.drain(pos..=pos + 1);
    Ok(Some(value))
}

/// Removes `key <u32>` from `rest` if present.
fn take_value(rest: &mut Vec<&str>, key: &str) -> Result<Option<u32>, ParseError> {
    let Some(pos) = rest.iter().position(|&t| t == key) else {
        return Ok(None);
    };
    let value = rest
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseError::at(key, "flag needs a number"))?;
    rest.drain(pos..=pos + 1);
    Ok(Some(value))
}

/// The `help` text shared by both transports.
pub const HELP: &str = "ok commands:
  register <name> <x,y> [<x,y> …]     inline edge list
  load <name> <path>                  whitespace edge-list file
  gen <name> <dataset> <scale>        synthetic Table-2 dataset (DBLP, RoadNet, Jokes, Words, Protein, Image)
  update <name> add <x,y> [<x,y> …]   add tuples by full re-registration (bumps epoch, invalidates cache)
  insert <name> <x,y> [<x,y> …]       staged delta: cached results are maintained in place
  delete <name> <x,y> [<x,y> …]       staged delta: deletions tracked via support counts
  query twopath <R> <S> [counts] [min <c>] [limit <n>] [engine <E>] [show [n]]
  query star <R1> <R2> [… Rk] [limit <n>] [show [n]]
  query chain <R1> <R2> [… Rk] [limit <n>] [engine <E>] [show [n]]
  query sim <R> <c> [ordered] [limit <n>] [show [n]]
  query contain <R> [limit <n>] [show [n]]
  query Q(x,w) :- R(x,y), S(y,z), T(z,w)   general acyclic query, datalog style
                                           ([limit <n>] [engine <E>] [show [n]] after the rule)
  explain <query …>                        chosen engine + decomposition, without executing
  stats [service|net|executor|cache] [--json]   subsystem counters (bare stats = service)
  stats reset                              zero every counter, keep registrations
  trace on | off | sample <n>              per-request span tracing (n = every n-th request)
  trace last [n]                           last n finished traces as Chrome trace-event JSON
  trace tree [n]                           last n finished traces as indented span trees
  catalog | engines | help | quit | shutdown
";

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        let s = Service::with_default_registry(1);
        s.register(
            "R",
            Relation::from_edges((0..30u32).map(|i| (i % 6, i % 5))),
        );
        s.register(
            "S",
            Relation::from_edges((0..30u32).map(|i| (i % 5, i % 7))),
        );
        s
    }

    #[test]
    fn parse_errors_carry_offending_token() {
        let err = Command::parse("frobnicate R S").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("frobnicate"));
        assert!(err.to_string().contains("`frobnicate`"));

        let err = Command::parse("insert R 1,2 nope 3,4").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("nope"));

        let err = Command::parse("query twopath R S bogus").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("bogus"));

        let err = Command::parse("query warp R S").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("warp"));

        let err = Command::parse("gen G Jokes huge").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("huge"));
    }

    #[test]
    fn show_takes_an_optional_row_budget() {
        let (_, show) = parse_request(&["twopath", "R", "S", "show"]).unwrap();
        assert_eq!(show, Some(20));
        let (_, show) = parse_request(&["twopath", "R", "S", "show", "3"]).unwrap();
        assert_eq!(show, Some(3));
        let (_, show) = parse_request(&["twopath", "R", "S"]).unwrap();
        assert_eq!(show, None);
        // `show` followed by a non-number leaves that token for its
        // own flag (here: counts).
        let (req, show) = parse_request(&["twopath", "R", "S", "show", "counts"]).unwrap();
        assert_eq!(show, Some(20));
        drop(req);
    }

    #[test]
    fn run_line_round_trips_through_the_service() {
        let s = service();
        let ans = run_line(&s, "query twopath R S").unwrap();
        assert!(ans.starts_with("ok rows "), "{ans}");
        let ans = run_line(&s, "query twopath R S show 2").unwrap();
        assert!(ans.lines().count() >= 2, "{ans}");
        let err = run_line(&s, "query twopath R missing").unwrap_err();
        assert!(err.contains("missing"), "{err}");
        let err = run_line(&s, "nonsense").unwrap_err();
        assert!(err.contains("`nonsense`"), "{err}");
    }

    #[test]
    fn terminal_commands() {
        assert!(Command::parse("quit").unwrap().is_terminal());
        assert!(Command::parse("exit").unwrap().is_terminal());
        assert!(Command::parse("shutdown").unwrap().is_terminal());
        assert!(!Command::parse("stats").unwrap().is_terminal());
        assert_eq!(
            execute(&service(), Command::Shutdown).unwrap(),
            "ok shutting down"
        );
    }

    #[test]
    fn datalog_form_still_parses() {
        let s = service();
        let ans = run_line(&s, "query Q(x,z) :- R(x,y), S(y,z)").unwrap();
        assert!(ans.starts_with("ok rows "), "{ans}");
        let err = run_line(&s, "query Q(x,z) :- R(x,y,w)").unwrap_err();
        assert!(err.contains("exactly 2 variables"), "{err}");
    }
}
