//! Service-level metrics: queries served, cache hit rate, latency
//! percentiles, and relation-update maintenance outcomes.

use crate::maintain::MaintenanceReport;

/// Rolling metrics recorder. Latencies are kept in a fixed-size ring so a
/// long-lived service never grows unbounded; p50/p99 are computed over
/// the most recent `LATENCY_WINDOW` samples.
#[derive(Debug)]
pub struct ServiceMetrics {
    queries: u64,
    cache_hits: u64,
    errors: u64,
    rejected: u64,
    max_queue_depth: u64,
    updates: u64,
    maintained: u64,
    recomputed: u64,
    invalidated: u64,
    total_busy_secs: f64,
    latencies_us: Vec<u64>,
    next_slot: usize,
}

/// Samples retained for the latency percentiles.
const LATENCY_WINDOW: usize = 4096;

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self {
            queries: 0,
            cache_hits: 0,
            errors: 0,
            rejected: 0,
            max_queue_depth: 0,
            updates: 0,
            maintained: 0,
            recomputed: 0,
            invalidated: 0,
            total_busy_secs: 0.0,
            latencies_us: Vec::with_capacity(256),
            next_slot: 0,
        }
    }
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one served query (`latency_secs` = queue wait + service
    /// time as observed by the worker).
    pub fn record_query(&mut self, latency_secs: f64, cached: bool) {
        self.queries += 1;
        if cached {
            self.cache_hits += 1;
        }
        self.total_busy_secs += latency_secs;
        let us = (latency_secs * 1e6).round() as u64;
        if self.latencies_us.len() < LATENCY_WINDOW {
            self.latencies_us.push(us);
        } else {
            self.latencies_us[self.next_slot] = us;
            self.next_slot = (self.next_slot + 1) % LATENCY_WINDOW;
        }
    }

    /// Records a failed query.
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Records an admission-queue rejection.
    pub fn record_rejected(&mut self) {
        self.rejected += 1;
    }

    /// Records the queue depth observed after an admission, keeping the
    /// high-water mark (the bounded queue's proof of boundedness).
    pub fn record_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth as u64);
    }

    /// Records the maintenance outcome of one effective relation update.
    pub fn record_update(&mut self, report: &MaintenanceReport) {
        self.updates += 1;
        self.maintained += report.maintained as u64;
        self.recomputed += report.recomputed as u64;
        self.invalidated += report.invalidated as u64;
    }

    /// An immutable snapshot for reporting. The recorder cannot see the
    /// result cache or the live admission queue, so the churn counter
    /// and current queue depth are passed in by the caller (the
    /// `Service::metrics` seam) rather than patched up afterwards.
    pub fn snapshot(&self, cache_invalidations: u64, queue_depth: usize) -> MetricsSnapshot {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        MetricsSnapshot {
            queries_served: self.queries,
            cache_hits: self.cache_hits,
            errors: self.errors,
            rejected: self.rejected,
            queue_depth: queue_depth as u64,
            max_queue_depth: self.max_queue_depth,
            updates: self.updates,
            maintained: self.maintained,
            recomputed: self.recomputed,
            invalidated: self.invalidated,
            cache_invalidations,
            cache_hit_rate: if self.queries == 0 {
                0.0
            } else {
                self.cache_hits as f64 / self.queries as f64
            },
            mean_latency_us: if self.queries == 0 {
                0
            } else {
                (self.total_busy_secs * 1e6 / self.queries as f64).round() as u64
            },
            p50_latency_us: pct(0.50),
            p99_latency_us: pct(0.99),
        }
    }
}

/// Point-in-time service statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Successfully answered queries (cached or executed).
    pub queries_served: u64,
    /// Of those, how many came from the result cache.
    pub cache_hits: u64,
    /// Failed queries.
    pub errors: u64,
    /// Requests bounced by the admission queue.
    pub rejected: u64,
    /// Jobs sitting in the admission queue at snapshot time.
    pub queue_depth: u64,
    /// Largest queue depth ever observed at admission — must never
    /// exceed the configured queue capacity.
    pub max_queue_depth: u64,
    /// Effective (non-no-op) relation updates applied.
    pub updates: u64,
    /// Cache entries patched in place by delta maintenance.
    pub maintained: u64,
    /// Cache entries eagerly re-executed during an update.
    pub recomputed: u64,
    /// Cache entries dropped by updates.
    pub invalidated: u64,
    /// Cache slots displaced by update-driven draining or `clear()` —
    /// the result cache's own churn counter (supplied to
    /// [`ServiceMetrics::snapshot`] by the caller holding the cache).
    /// Unlike `invalidated` (entries that ended an update dropped), this
    /// also counts slots whose refreshed successor was re-inserted.
    pub cache_invalidations: u64,
    /// `cache_hits / queries_served` (0 when idle).
    pub cache_hit_rate: f64,
    /// Mean service latency in microseconds.
    pub mean_latency_us: u64,
    /// Median latency over the recent window, microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile latency over the recent window, microseconds.
    pub p99_latency_us: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache hits {}, {:.1}%), errors {}, rejected {}, \
             updates {} (maintained {}, recomputed {}, invalidated {}), \
             cache churn {}, latency mean {}us p50 {}us p99 {}us",
            self.queries_served,
            self.cache_hits,
            self.cache_hit_rate * 100.0,
            self.errors,
            self.rejected,
            self.updates,
            self.maintained,
            self.recomputed,
            self.invalidated,
            self.cache_invalidations,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p99_latency_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_percentiles() {
        let mut m = ServiceMetrics::new();
        for i in 1..=100u64 {
            m.record_query(i as f64 * 1e-6, i % 4 == 0);
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.queries_served, 100);
        assert_eq!(s.cache_hits, 25);
        assert!((s.cache_hit_rate - 0.25).abs() < 1e-9);
        assert_eq!(s.p50_latency_us, 51); // nearest-rank on 1..=100
        assert_eq!(s.p99_latency_us, 99);
        assert_eq!(s.mean_latency_us, 51); // mean of 1..=100 rounded
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot(0, 0);
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn update_counters_accumulate() {
        let mut m = ServiceMetrics::new();
        m.record_update(&MaintenanceReport {
            epoch: 2,
            inserted: 1,
            deleted: 0,
            maintained: 2,
            recomputed: 1,
            invalidated: 3,
        });
        let s = m.snapshot(0, 0);
        assert_eq!(
            (s.updates, s.maintained, s.recomputed, s.invalidated),
            (1, 2, 1, 3)
        );
        assert!(format!("{s}").contains("maintained 2"));
    }

    #[test]
    fn ring_window_bounds_memory() {
        let mut m = ServiceMetrics::new();
        for _ in 0..(LATENCY_WINDOW + 500) {
            m.record_query(1e-6, false);
        }
        assert_eq!(m.latencies_us.len(), LATENCY_WINDOW);
    }
}
