//! Service-level metrics: queries served, cache hit rate, latency
//! percentiles, and relation-update maintenance outcomes.
//!
//! Since PR 7 the recorder is a façade over the [`mmjoin_obs`] metrics
//! registry: every instrument is a named atomic (counter/gauge) or a
//! log-bucketed [`Histogram`], so recording needs no lock and the
//! latency distribution covers **all-time** samples — mean, p50 and p99
//! all come from the same histogram (the old 4096-sample ring reported
//! an all-time mean next to window-local percentiles). Percentiles are
//! bucket-midpoint approximations with relative error ≤ 1/16 (6.25%);
//! count, sum/mean and max are exact.

use crate::maintain::MaintenanceReport;
use mmjoin_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Lock-free metrics recorder backed by a shared [`Registry`] (the
/// instruments below are also reachable by name through
/// [`ServiceMetrics::registry`], e.g. for `stats --json`).
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    queries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    errors: Arc<Counter>,
    rejected: Arc<Counter>,
    slow: Arc<Counter>,
    max_queue_depth: Arc<Gauge>,
    updates: Arc<Counter>,
    maintained: Arc<Counter>,
    recomputed: Arc<Counter>,
    invalidated: Arc<Counter>,
    latency_us: Arc<Histogram>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics over a private registry.
    pub fn new() -> Self {
        let registry = Arc::new(Registry::new());
        Self {
            queries: registry.counter("service.queries_served"),
            cache_hits: registry.counter("service.cache_hits"),
            errors: registry.counter("service.errors"),
            rejected: registry.counter("service.rejected"),
            slow: registry.counter("service.slow_queries"),
            max_queue_depth: registry.gauge("service.max_queue_depth"),
            updates: registry.counter("service.updates"),
            maintained: registry.counter("service.maintained"),
            recomputed: registry.counter("service.recomputed"),
            invalidated: registry.counter("service.invalidated"),
            latency_us: registry.histogram("service.latency_us"),
            registry,
        }
    }

    /// The registry holding every instrument, for name-addressed export.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Records one served query (`latency_secs` = queue wait + service
    /// time as observed by the worker).
    pub fn record_query(&self, latency_secs: f64, cached: bool) {
        self.queries.inc();
        if cached {
            self.cache_hits.inc();
        }
        self.latency_us.record((latency_secs * 1e6).round() as u64);
    }

    /// Records a failed query.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Records an admission-queue rejection.
    pub fn record_rejected(&self) {
        self.rejected.inc();
    }

    /// Records a query that crossed the slow-query threshold.
    pub fn record_slow(&self) {
        self.slow.inc();
    }

    /// Records the queue depth observed after an admission, keeping the
    /// high-water mark (the bounded queue's proof of boundedness).
    pub fn record_depth(&self, depth: usize) {
        self.max_queue_depth.record_max(depth as u64);
    }

    /// Records the maintenance outcome of one effective relation update.
    pub fn record_update(&self, report: &MaintenanceReport) {
        self.updates.inc();
        self.maintained.add(report.maintained as u64);
        self.recomputed.add(report.recomputed as u64);
        self.invalidated.add(report.invalidated as u64);
    }

    /// Zeroes every instrument (`stats reset`) while keeping all
    /// registrations and handles valid. The high-water queue depth is
    /// included — this is its reset path for before/after experiments.
    pub fn reset(&self) {
        self.registry.reset();
    }

    /// An immutable snapshot for reporting. The recorder cannot see the
    /// result cache or the live admission queue, so the churn counter
    /// and current queue depth are passed in by the caller (the
    /// `Service::metrics` seam) rather than patched up afterwards.
    pub fn snapshot(&self, cache_invalidations: u64, queue_depth: usize) -> MetricsSnapshot {
        let queries = self.queries.get();
        let cache_hits = self.cache_hits.get();
        let latency = self.latency_us.snapshot();
        MetricsSnapshot {
            queries_served: queries,
            cache_hits,
            errors: self.errors.get(),
            rejected: self.rejected.get(),
            slow_queries: self.slow.get(),
            queue_depth: queue_depth as u64,
            max_queue_depth: self.max_queue_depth.get(),
            updates: self.updates.get(),
            maintained: self.maintained.get(),
            recomputed: self.recomputed.get(),
            invalidated: self.invalidated.get(),
            cache_invalidations,
            cache_hit_rate: if queries == 0 {
                0.0
            } else {
                cache_hits as f64 / queries as f64
            },
            mean_latency_us: latency.mean,
            p50_latency_us: latency.p50,
            p99_latency_us: latency.p99,
            max_latency_us: latency.max,
        }
    }
}

/// Point-in-time service statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Successfully answered queries (cached or executed).
    pub queries_served: u64,
    /// Of those, how many came from the result cache.
    pub cache_hits: u64,
    /// Failed queries.
    pub errors: u64,
    /// Requests bounced by the admission queue.
    pub rejected: u64,
    /// Queries whose latency crossed the configured slow-query
    /// threshold (0 when no threshold is set).
    pub slow_queries: u64,
    /// Jobs sitting in the admission queue at snapshot time.
    pub queue_depth: u64,
    /// Largest queue depth ever observed at admission — must never
    /// exceed the configured queue capacity. Zeroed by `stats reset`.
    pub max_queue_depth: u64,
    /// Effective (non-no-op) relation updates applied.
    pub updates: u64,
    /// Cache entries patched in place by delta maintenance.
    pub maintained: u64,
    /// Cache entries eagerly re-executed during an update.
    pub recomputed: u64,
    /// Cache entries dropped by updates.
    pub invalidated: u64,
    /// Cache slots displaced by update-driven draining or `clear()` —
    /// the result cache's own churn counter (supplied to
    /// [`ServiceMetrics::snapshot`] by the caller holding the cache).
    /// Unlike `invalidated` (entries that ended an update dropped), this
    /// also counts slots whose refreshed successor was re-inserted.
    pub cache_invalidations: u64,
    /// `cache_hits / queries_served` (0 when idle).
    pub cache_hit_rate: f64,
    /// Mean service latency in microseconds — exact, over **all**
    /// samples (same histogram as the percentiles).
    pub mean_latency_us: u64,
    /// All-time median latency in microseconds (log-bucket midpoint,
    /// relative error ≤ 6.25%).
    pub p50_latency_us: u64,
    /// All-time 99th-percentile latency, microseconds (same bound).
    pub p99_latency_us: u64,
    /// Largest latency ever observed, microseconds (exact).
    pub max_latency_us: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache hits {}, {:.1}%), errors {}, rejected {}, \
             updates {} (maintained {}, recomputed {}, invalidated {}), \
             cache churn {}, latency mean {}us p50 {}us p99 {}us max {}us, slow {}",
            self.queries_served,
            self.cache_hits,
            self.cache_hit_rate * 100.0,
            self.errors,
            self.rejected,
            self.updates,
            self.maintained,
            self.recomputed,
            self.invalidated,
            self.cache_invalidations,
            self.mean_latency_us,
            self.p50_latency_us,
            self.p99_latency_us,
            self.max_latency_us,
            self.slow_queries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_percentiles() {
        let m = ServiceMetrics::new();
        for i in 1..=100u64 {
            m.record_query(i as f64 * 1e-6, i % 4 == 0);
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.queries_served, 100);
        assert_eq!(s.cache_hits, 25);
        assert!((s.cache_hit_rate - 0.25).abs() < 1e-9);
        // Histogram percentiles: within the documented 1/16 bound of the
        // exact nearest-rank values (51 and 99 on 1..=100).
        assert!(
            s.p50_latency_us.abs_diff(51) <= 51 / 16 + 1,
            "{}",
            s.p50_latency_us
        );
        assert!(
            s.p99_latency_us.abs_diff(99) <= 99 / 16 + 1,
            "{}",
            s.p99_latency_us
        );
        // Mean and max are exact.
        assert_eq!(s.mean_latency_us, 51); // mean of 1..=100 rounded
        assert_eq!(s.max_latency_us, 100);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = ServiceMetrics::new().snapshot(0, 0);
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
    }

    #[test]
    fn update_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record_update(&MaintenanceReport {
            epoch: 2,
            inserted: 1,
            deleted: 0,
            maintained: 2,
            recomputed: 1,
            invalidated: 3,
        });
        let s = m.snapshot(0, 0);
        assert_eq!(
            (s.updates, s.maintained, s.recomputed, s.invalidated),
            (1, 2, 1, 3)
        );
        assert!(format!("{s}").contains("maintained 2"));
    }

    #[test]
    fn percentiles_cover_all_time_not_a_window() {
        // One early outlier followed by far more samples than the old
        // 4096-entry ring held: the outlier must still be visible in the
        // max and keep its weight in the distribution.
        let m = ServiceMetrics::new();
        m.record_query(0.5, false); // 500_000us
        for _ in 0..10_000 {
            m.record_query(10e-6, false);
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.queries_served, 10_001);
        assert_eq!(s.max_latency_us, 500_000, "all-time max survives");
        assert!(s.p50_latency_us <= 11, "bulk of the mass is small");
    }

    #[test]
    fn reset_zeroes_counters_and_high_water() {
        let m = ServiceMetrics::new();
        m.record_query(1e-3, true);
        m.record_error();
        m.record_rejected();
        m.record_depth(42);
        m.record_slow();
        assert_eq!(m.snapshot(0, 0).max_queue_depth, 42);
        m.reset();
        let s = m.snapshot(0, 0);
        assert_eq!(s.queries_served, 0);
        assert_eq!(s.errors, 0);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.slow_queries, 0);
        assert_eq!(s.max_queue_depth, 0, "high-water mark has a reset path");
        assert_eq!(s.p99_latency_us, 0);
        // Instruments still record after the reset.
        m.record_query(1e-6, false);
        assert_eq!(m.snapshot(0, 0).queries_served, 1);
    }
}
