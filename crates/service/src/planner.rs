//! Engine auto-selection — the service-level payoff of the paper's
//! cost-based plan choice.
//!
//! The paper's Algorithm 3 decides, per query, between the combinatorial
//! (WCOJ/expansion) path and the matrix-partitioned path. A single
//! engine applies that choice internally; the *service* applies the same
//! estimate one level up to pick **which registered engine** runs the
//! query: when the full join is output-like (the optimizer would fall
//! back to plain WCOJ anyway) the purely combinatorial engines win by
//! skipping the planning machinery, and when duplication is heavy the
//! matrix-capable `MMJoin` engine is the right tool. Per-family
//! overrides and per-request pins take precedence for callers that know
//! better.

use crate::error::ServiceError;
use mmjoin_api::{Engine, EngineError, EngineRegistry, Query, QueryFamily};
use mmjoin_core::{choose_thresholds, plan_general, JoinConfig, PlanChoice, PlanStep};
use std::collections::HashMap;

/// Why the planner picked the engine it picked (reported per response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionReason {
    /// The request pinned the engine by name.
    Pinned,
    /// A service-level per-family override applied.
    FamilyOverride,
    /// The cost estimate chose between the combinatorial and matrix
    /// paths.
    CostBased {
        /// `true` when the estimate favoured the combinatorial path.
        combinatorial: bool,
        /// Exact full-join size that drove the estimate.
        full_join: u64,
        /// Estimated projected output size.
        estimated_out: u64,
    },
    /// The cost-preferred engine was unavailable or does not support
    /// this query variant; a supporting engine ran instead.
    Fallback,
}

/// The planner's decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Registry name of the chosen engine.
    pub engine: String,
    /// How the choice was made.
    pub reason: SelectionReason,
}

/// Cost-based engine selector with per-family overrides.
#[derive(Debug, Clone, Default)]
pub struct Planner {
    /// Per-family forced engine names (checked after per-request pins).
    pub overrides: HashMap<QueryFamily, String>,
    /// Configuration for the cost model driving the estimates.
    pub config: JoinConfig,
}

impl Planner {
    /// A planner with no overrides on `config`.
    pub fn new(config: JoinConfig) -> Self {
        Self {
            overrides: HashMap::new(),
            config,
        }
    }

    /// Forces `engine` for every query of `family`.
    pub fn with_override(mut self, family: QueryFamily, engine: impl Into<String>) -> Self {
        self.overrides.insert(family, engine.into());
        self
    }

    /// Picks the engine for `query`. `pinned` is the per-request
    /// override, checked first; family overrides second; the cost-based
    /// choice last.
    pub fn select(
        &self,
        registry: &EngineRegistry,
        query: &Query<'_>,
        pinned: Option<&str>,
    ) -> Result<Selection, ServiceError> {
        if let Some(name) = pinned {
            let engine = self.expect_engine(registry, query, name)?;
            return Ok(Selection {
                engine: engine.name().to_string(),
                reason: SelectionReason::Pinned,
            });
        }
        if let Some(name) = self.overrides.get(&query.family()) {
            let engine = self.expect_engine(registry, query, name)?;
            return Ok(Selection {
                engine: engine.name().to_string(),
                reason: SelectionReason::FamilyOverride,
            });
        }

        // General queries go through the decomposing planner: only the
        // composed MMJoin executor evaluates them, and the plan's §5
        // estimates (total full-join mass across steps, final output)
        // back the reported cost decision. An unplannable graph fails
        // here with the planner's reason instead of a generic
        // "unsupported" from the engine.
        if let Query::General { graph } = query {
            let plan = plan_general(graph)
                .map_err(|e| ServiceError::Engine(EngineError::Plan(e.to_string())))?;
            let full_join: u64 = plan
                .steps
                .iter()
                .map(|s| match s {
                    PlanStep::Join { estimate, .. } => estimate.full_join,
                    PlanStep::Semijoin { .. } => 0,
                })
                .sum();
            // `MmJoinEngine::supports` would just re-run plan_general —
            // which already succeeded above — so the registry lookup
            // alone settles it.
            if let Some(engine) = registry.get("MMJoin") {
                return Ok(Selection {
                    engine: engine.name().to_string(),
                    reason: SelectionReason::CostBased {
                        // "Matrix-capable composed executor chosen"; the
                        // expand-vs-matrix call happens per step.
                        combinatorial: false,
                        full_join,
                        estimated_out: plan.estimated_rows,
                    },
                });
            }
            return match registry.engines_for(query).first() {
                Some(engine) => Ok(Selection {
                    engine: engine.name().to_string(),
                    reason: SelectionReason::Fallback,
                }),
                None => Err(ServiceError::NoEngineFor(QueryFamily::General)),
            };
        }

        // Cost-based: estimate on the (pair of) relations the query joins.
        let (r, s) = match query {
            Query::TwoPath { r, s, .. } => (*r, *s),
            Query::SimilarityJoin { r, .. } | Query::ContainmentJoin { r } => (*r, *r),
            Query::Star { relations } => (relations[0], *relations.get(1).unwrap_or(&relations[0])),
            Query::General { .. } => unreachable!("handled above"),
        };
        let plan = choose_thresholds(r, s, &self.config);
        let combinatorial = plan.choice == PlanChoice::Wcoj;
        let preferred = match (query.family(), combinatorial) {
            // General queries returned above; unreachable here.
            (QueryFamily::TwoPath | QueryFamily::Star | QueryFamily::General, true) => "Non-MMJoin",
            (QueryFamily::Similarity, true) => "SizeAware++",
            (QueryFamily::Containment, true) => "PRETTI",
            (_, false) => "MMJoin",
        };
        // The preferred engine may be absent (custom registry) or not
        // support this exact variant (e.g. Non-MMJoin has no counting
        // 2-path); try MMJoin next, then anything that supports it. Only
        // the engine the estimate actually asked for gets the CostBased
        // reason — a fallthrough is reported as Fallback so telemetry
        // never claims the combinatorial path served a query it didn't.
        for candidate in [preferred, "MMJoin"] {
            if let Some(engine) = registry.get(candidate) {
                if engine.supports(query) {
                    let reason = if candidate == preferred {
                        SelectionReason::CostBased {
                            combinatorial,
                            full_join: plan.estimate.full_join,
                            estimated_out: plan.estimate.estimate,
                        }
                    } else {
                        SelectionReason::Fallback
                    };
                    return Ok(Selection {
                        engine: engine.name().to_string(),
                        reason,
                    });
                }
            }
        }
        match registry.engines_for(query).first() {
            Some(engine) => Ok(Selection {
                engine: engine.name().to_string(),
                reason: SelectionReason::Fallback,
            }),
            None => Err(ServiceError::NoEngineFor(query.family())),
        }
    }

    /// Resolves a forced engine name, verifying it exists and supports
    /// the query.
    fn expect_engine<'reg>(
        &self,
        registry: &'reg EngineRegistry,
        query: &Query<'_>,
        name: &str,
    ) -> Result<&'reg dyn Engine, ServiceError> {
        let engine = registry
            .get(name)
            .ok_or_else(|| ServiceError::UnknownEngine(name.to_string()))?;
        if !engine.supports(query) {
            return Err(ServiceError::Engine(engine.unsupported(query)));
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::default_registry;
    use mmjoin_storage::{Relation, Value};

    fn planner() -> Planner {
        Planner::new(JoinConfig::default())
    }

    /// Sparse matching: output-like join, the combinatorial path wins.
    fn sparse() -> Relation {
        Relation::from_edges((0..200u32).map(|i| (i, i)))
    }

    /// Single hub: maximal duplication, the matrix path wins.
    fn dense() -> Relation {
        let mut edges: Vec<(Value, Value)> = Vec::new();
        for x in 0..120u32 {
            for y in 0..30u32 {
                edges.push((x, y));
            }
        }
        Relation::from_edges(edges)
    }

    #[test]
    fn sparse_two_path_picks_combinatorial() {
        let registry = default_registry(1);
        let r = sparse();
        let q = Query::two_path(&r, &r).build().unwrap();
        let sel = planner().select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "Non-MMJoin");
        assert!(matches!(
            sel.reason,
            SelectionReason::CostBased {
                combinatorial: true,
                ..
            }
        ));
    }

    #[test]
    fn dense_two_path_picks_mmjoin() {
        let registry = default_registry(1);
        let r = dense();
        let q = Query::two_path(&r, &r).build().unwrap();
        let sel = planner().select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "MMJoin");
        assert!(matches!(
            sel.reason,
            SelectionReason::CostBased {
                combinatorial: false,
                ..
            }
        ));
    }

    #[test]
    fn counted_two_path_never_lands_on_non_mm() {
        let registry = default_registry(1);
        let r = sparse();
        let q = Query::two_path(&r, &r).with_counts().build().unwrap();
        let sel = planner().select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "MMJoin", "only MMJoin counts witnesses");
        assert_eq!(
            sel.reason,
            SelectionReason::Fallback,
            "the combinatorial preference did not actually run"
        );
    }

    #[test]
    fn pins_and_overrides_win() {
        let registry = default_registry(1);
        let r = dense();
        let q = Query::two_path(&r, &r).build().unwrap();

        let sel = planner().select(&registry, &q, Some("WCOJ")).unwrap();
        assert_eq!(sel.engine, "WCOJ");
        assert_eq!(sel.reason, SelectionReason::Pinned);

        let p = planner().with_override(QueryFamily::TwoPath, "SystemX");
        let sel = p.select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "SystemX");
        assert_eq!(sel.reason, SelectionReason::FamilyOverride);

        // Pin still beats the override.
        let sel = p.select(&registry, &q, Some("WCOJ")).unwrap();
        assert_eq!(sel.engine, "WCOJ");
    }

    #[test]
    fn bad_pin_is_an_error() {
        let registry = default_registry(1);
        let r = sparse();
        let q = Query::two_path(&r, &r).build().unwrap();
        assert!(matches!(
            planner().select(&registry, &q, Some("nope")),
            Err(ServiceError::UnknownEngine(_))
        ));
        // PRETTI is containment-only: pinning it on a 2-path fails.
        assert!(matches!(
            planner().select(&registry, &q, Some("PRETTI")),
            Err(ServiceError::Engine(_))
        ));
    }

    #[test]
    fn similarity_and_containment_choose_specialists_when_sparse() {
        let registry = default_registry(1);
        let r = sparse();
        let q = Query::similarity(&r, 2).build().unwrap();
        let sel = planner().select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "SizeAware++");

        let q = Query::containment(&r).build().unwrap();
        let sel = planner().select(&registry, &q, None).unwrap();
        assert_eq!(sel.engine, "PRETTI");
    }
}
