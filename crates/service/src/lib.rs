//! `mmjoin-service` — the long-lived concurrent join service.
//!
//! The engine crates answer one query at a time for a caller that
//! already holds its relations; this crate is the layer that makes the
//! reproduction look like a *system*:
//!
//! * [`Catalog`] — named relations, profiled **once** at registration
//!   (degree histograms, duplication mass, CSR already inside
//!   [`Relation`](mmjoin_storage::Relation)), with an epoch bumped on
//!   every update.
//! * [`Request`] — an owned query over catalog *names*, canonicalized so
//!   semantically equal requests share one 64-bit fingerprint.
//! * [`Planner`] — cost-based engine auto-selection: the paper's
//!   combinatorial-vs-matrix estimate applied one level up, choosing
//!   *which registered engine* runs each query, with per-family
//!   overrides and per-request pins.
//! * [`ResultCache`] — an LRU keyed by `(fingerprint, relation epochs)`,
//!   so repeats are O(1) and updates can never serve stale rows.
//! * [`maintain`] — incremental view maintenance: staged relation deltas
//!   ([`Service::apply_delta`]) patch affected cached results in place
//!   via signed delta joins over per-tuple support counts
//!   ([`DeltaResult`]), with a cost-driven maintain / recompute /
//!   invalidate decision per entry ([`MaintenancePolicy`]).
//! * [`Service`] — a `std::thread` worker pool behind a bounded
//!   admission queue, reporting per-query [`ExecStats`](mmjoin_api::ExecStats)
//!   and service-level [metrics](MetricsSnapshot) (queries served, cache
//!   hit rate, p50/p99 latency).
//!
//! The `mmjoin-serve` binary wraps a [`Service`] in a line-oriented
//! REPL; the `mmjoin` facade re-exports everything here.
//!
//! ```
//! use mmjoin_service::{Request, Service};
//! use mmjoin_storage::Relation;
//!
//! let service = Service::with_default_registry(2);
//! service.register("R", Relation::from_edges([(0, 0), (1, 0), (2, 1)]));
//!
//! let response = service.query(Request::two_path("R", "R").limit(3))?;
//! assert!(response.rows.len() <= 3);
//! println!("{} rows via {}", response.rows.len(), response.stats.engine);
//! # Ok::<(), mmjoin_service::ServiceError>(())
//! ```

pub mod cache;
pub mod catalog;
pub mod command;
pub mod error;
pub mod maintain;
pub mod metrics;
pub mod planner;
pub mod request;
pub mod roster;
pub mod service;

pub use cache::{CachedResult, ResultCache};
pub use catalog::{Catalog, CatalogEntry, RelationProfile, ShardedCatalog, StagedUpdate};
pub use command::{Command, ParseError};
pub use error::ServiceError;
pub use maintain::{DeltaResult, MaintenancePolicy, MaintenanceReport};
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use planner::{Planner, Selection, SelectionReason};
pub use request::{AtomSpec, QuerySpec, Request};
pub use roster::{default_registry, registry_with_config};
pub use service::{Response, Service, ServiceConfig, Ticket};
