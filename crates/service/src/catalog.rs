//! The relation catalog: named, immutable, stat-profiled relations with
//! an epoch per entry — plus the sharded, lock-striped wrapper the
//! concurrent service reads through.
//!
//! Registration pays the indexing and profiling cost **once** — the
//! degree histograms the §5 threshold machinery needs are computed here,
//! not per query — and every update replaces the whole entry under a new
//! epoch. Epochs make cache invalidation free: the result cache keys on
//! `(fingerprint, epochs of referenced relations)`, so a stale entry is
//! simply never looked up again and ages out of the LRU.
//!
//! [`ShardedCatalog`] stripes the name space over `N` independent
//! [`Catalog`]s, each behind its own `RwLock` with its own epoch
//! counter. A query [pins](ShardedCatalog::pin) an *epoch vector*: it
//! read-locks every shard it touches (ascending shard order, so pinning
//! is deadlock-free), copies out `(relation handle, epoch)` per name,
//! and releases — a consistent cross-shard cut, because any update to a
//! touched relation would need that shard's write lock. Updates publish
//! a new epoch on their own shard only, so an update to relation `A`
//! never stalls readers of relation `B` on another shard, and — since
//! the result cache keys on per-relation epochs — never invalidates
//! `B`'s cache entries either.

use crate::error::ServiceError;
use crate::request::Fnv1a;
use mmjoin_storage::{DegreeHistogram, Edge, NormalizedDelta, Relation, RelationDelta};
use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};

/// The per-relation statistics profile, computed once at registration.
#[derive(Debug, Clone)]
pub struct RelationProfile {
    /// Tuples `N` (after deduplication).
    pub tuples: usize,
    /// Distinct active `x` values (sets).
    pub active_x: usize,
    /// Distinct active `y` values (elements).
    pub active_y: usize,
    /// Largest `x` degree (biggest set).
    pub max_x_degree: u32,
    /// Largest `y` degree (most popular element).
    pub max_y_degree: u32,
    /// Full self-join size `Σ_y deg(y)²` — the duplication mass that
    /// drives the combinatorial-vs-matrix plan choice on self joins.
    pub self_join_size: u64,
    /// Degree histogram over `x` (unit metric).
    pub x_degrees: DegreeHistogram,
    /// Degree histogram over `y` (unit metric).
    pub y_degrees: DegreeHistogram,
}

impl RelationProfile {
    /// Profiles `relation` in `O(N log N)`.
    pub fn compute(relation: &Relation) -> Self {
        let x_degrees = DegreeHistogram::build(relation.by_x(), |_| 1);
        let y_degrees = DegreeHistogram::build(relation.by_y(), |_| 1);
        Self {
            tuples: relation.len(),
            active_x: x_degrees.active(),
            active_y: y_degrees.active(),
            max_x_degree: x_degrees.max_degree(),
            max_y_degree: y_degrees.max_degree(),
            self_join_size: relation.full_join_size(relation),
            x_degrees,
            y_degrees,
        }
    }
}

/// One catalog slot: the relation, its cached profile, and the epoch it
/// was installed at.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The relation itself (shared with in-flight queries).
    pub relation: Arc<Relation>,
    /// Statistics computed at registration.
    pub profile: Arc<RelationProfile>,
    /// Monotonically increasing install epoch (catalog-wide counter).
    pub epoch: u64,
}

/// The context of one applied delta batch, as the maintenance path needs
/// it: the relation as it was (delta joins are expressed over the old
/// state), both epochs, and the effective delta.
#[derive(Debug, Clone)]
pub struct StagedUpdate {
    /// The relation before the update.
    pub old: Arc<Relation>,
    /// Its epoch before the update.
    pub old_epoch: u64,
    /// The epoch after the update (`== old_epoch` for no-op batches).
    pub new_epoch: u64,
    /// The effective delta (empty for no-op batches).
    pub delta: NormalizedDelta,
}

/// Named-relation catalog with epoch bookkeeping.
///
/// `BTreeMap` keeps `names()` deterministic for the REPL and tests.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
    epoch: u64,
}

impl Catalog {
    /// Empty catalog at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `name`, profiling the relation and bumping
    /// the catalog epoch. Returns the entry's new epoch.
    ///
    /// The name is trimmed of surrounding whitespace — request
    /// canonicalization trims names before lookup, so an untrimmed
    /// catalog key would be permanently unreachable.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) -> u64 {
        let name = name.into().trim().to_string();
        self.epoch += 1;
        let entry = CatalogEntry {
            profile: Arc::new(RelationProfile::compute(&relation)),
            relation: Arc::new(relation),
            epoch: self.epoch,
        };
        self.entries.insert(name, entry);
        self.epoch
    }

    /// Replaces an *existing* relation, bumping epochs; unknown names are
    /// an error (use [`Catalog::register`] to create).
    ///
    /// A replacement whose tuples equal the current entry's is a no-op:
    /// the existing epoch is returned unchanged, so an empty staged delta
    /// never cold-starts the result cache.
    pub fn update(&mut self, name: &str, relation: Relation) -> Result<u64, ServiceError> {
        let name = name.trim();
        let Some(entry) = self.entries.get(name) else {
            return Err(ServiceError::UnknownRelation(name.to_string()));
        };
        if entry.relation.edges() == relation.edges() {
            return Ok(entry.epoch);
        }
        Ok(self.register(name, relation))
    }

    /// Applies a staged tuple batch to an existing relation, returning
    /// the update context the maintenance path needs: the pre-update
    /// relation and epoch, the post-update epoch, and the effective
    /// (normalized) delta.
    ///
    /// A batch that normalizes to nothing is a complete no-op — no epoch
    /// bump, `new_epoch == old_epoch` — which keeps every cached result
    /// addressable.
    pub fn apply_delta(
        &mut self,
        name: &str,
        delta: &RelationDelta,
    ) -> Result<StagedUpdate, ServiceError> {
        let name = name.trim();
        let Some(entry) = self.entries.get(name) else {
            return Err(ServiceError::UnknownRelation(name.to_string()));
        };
        let old = Arc::clone(&entry.relation);
        let old_epoch = entry.epoch;
        let delta = delta.normalize(&old);
        if delta.is_empty() {
            return Ok(StagedUpdate {
                old,
                old_epoch,
                new_epoch: old_epoch,
                delta,
            });
        }
        let new_epoch = self.register(name, old.apply_normalized(&delta));
        Ok(StagedUpdate {
            old,
            old_epoch,
            new_epoch,
            delta,
        })
    }

    /// Removes `name`, bumping the catalog epoch if it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let removed = self.entries.remove(name).is_some();
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Looks an entry up.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Resolves `name` or errors.
    pub fn resolve(&self, name: &str) -> Result<&CatalogEntry, ServiceError> {
        self.get(name)
            .ok_or_else(|| ServiceError::UnknownRelation(name.to_string()))
    }

    /// The catalog-wide epoch: bumped by every register/update/remove.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A lock-striped catalog: `N` independent [`Catalog`] shards, each with
/// its own `RwLock` and epoch counter, keyed by a stable hash of the
/// (trimmed) relation name.
///
/// Every lock acquisition recovers from poisoning — the shard state is
/// always valid across a panic because [`Catalog`] commits entries
/// atomically (see the service-level rationale on `Inner`).
#[derive(Debug)]
pub struct ShardedCatalog {
    shards: Vec<RwLock<Catalog>>,
}

impl ShardedCatalog {
    /// A catalog striped over `shards` locks (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(Catalog::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `name` lives on. Stable across runs (FNV-1a of
    /// the trimmed name), so tests and benches can pick names on
    /// distinct shards deliberately.
    pub fn shard_of(&self, name: &str) -> usize {
        let mut h = Fnv1a::new();
        h.bytes(name.trim().as_bytes());
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn read_shard(&self, name: &str) -> RwLockReadGuard<'_, Catalog> {
        self.shards[self.shard_of(name)]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or replaces) `name` on its shard. See
    /// [`Catalog::register`].
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> u64 {
        let name = name.into();
        self.shards[self.shard_of(&name)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .register(name, relation)
    }

    /// Replaces an existing relation on its shard. See
    /// [`Catalog::update`].
    pub fn update(&self, name: &str, relation: Relation) -> Result<u64, ServiceError> {
        self.shards[self.shard_of(name)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .update(name, relation)
    }

    /// Applies a staged tuple batch on the owning shard, holding only
    /// that shard's write lock. See [`Catalog::apply_delta`].
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &RelationDelta,
    ) -> Result<StagedUpdate, ServiceError> {
        self.shards[self.shard_of(name)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .apply_delta(name, delta)
    }

    /// Removes `name` from its shard.
    pub fn remove(&self, name: &str) -> bool {
        self.shards[self.shard_of(name)]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name)
    }

    /// The catalog-wide epoch: the sum of the per-shard epoch counters.
    /// Monotone under every effective register/update/remove, unchanged
    /// by no-ops — but updates on one shard are invisible to entry
    /// epochs on another.
    pub fn epoch(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).epoch())
            .sum()
    }

    /// All registered names, merged and sorted across shards.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .names()
                    .into_iter()
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        names
    }

    /// Total registered relations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether no relation is registered on any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached statistics profile of `name`, if registered.
    pub fn profile(&self, name: &str) -> Option<Arc<RelationProfile>> {
        self.read_shard(name)
            .get(name)
            .map(|e| Arc::clone(&e.profile))
    }

    /// A snapshot of `name`'s current tuples, if registered.
    pub fn edges(&self, name: &str) -> Option<Vec<Edge>> {
        self.read_shard(name)
            .get(name)
            .map(|e| e.relation.edges().to_vec())
    }

    /// The current epoch of `name`'s entry, if registered.
    pub fn entry_epoch(&self, name: &str) -> Option<u64> {
        self.read_shard(name).get(name).map(|e| e.epoch)
    }

    /// Pins an epoch vector for a query: read-locks every shard the
    /// names touch **simultaneously** (ascending shard order —
    /// deadlock-free because every pinner uses the same order), copies
    /// out the relation handles and epochs in request order, and
    /// releases. The result is a consistent cross-shard cut: no touched
    /// relation can change while the guards are held, and execution
    /// proceeds on the pinned `Arc` handles without any lock.
    pub fn pin(&self, names: &[&str]) -> Result<(Vec<Arc<Relation>>, Vec<u64>), ServiceError> {
        let guards = self.lock_touched(names);
        let mut handles = Vec::with_capacity(names.len());
        let mut epochs = Vec::with_capacity(names.len());
        for name in names {
            let entry = guards[self.shard_of(name)]
                .as_ref()
                .expect("touched shard is locked")
                .resolve(name)?;
            handles.push(Arc::clone(&entry.relation));
            epochs.push(entry.epoch);
        }
        Ok((handles, epochs))
    }

    /// [`ShardedCatalog::pin`] for maintenance paths that must observe
    /// missing entries instead of erroring: per name, `Some((relation,
    /// epoch))` or `None` if unregistered, read under the same
    /// simultaneous multi-shard cut.
    pub fn snapshot(&self, names: &[&str]) -> Vec<Option<(Arc<Relation>, u64)>> {
        let guards = self.lock_touched(names);
        names
            .iter()
            .map(|name| {
                guards[self.shard_of(name)]
                    .as_ref()
                    .expect("touched shard is locked")
                    .get(name)
                    .map(|e| (Arc::clone(&e.relation), e.epoch))
            })
            .collect()
    }

    /// Read-locks the shards `names` touch in ascending index order,
    /// returning a shard-indexed guard table.
    fn lock_touched(&self, names: &[&str]) -> Vec<Option<RwLockReadGuard<'_, Catalog>>> {
        let mut guards: Vec<Option<RwLockReadGuard<'_, Catalog>>> =
            (0..self.shards.len()).map(|_| None).collect();
        let mut touched: Vec<usize> = names.iter().map(|n| self.shard_of(n)).collect();
        touched.sort_unstable();
        touched.dedup();
        for index in touched {
            guards[index] = Some(
                self.shards[index]
                    .read()
                    .unwrap_or_else(PoisonError::into_inner),
            );
        }
        guards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(u32, u32)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn register_profiles_and_bumps_epoch() {
        let mut c = Catalog::new();
        assert_eq!(c.epoch(), 0);
        let e1 = c.register("R", rel(&[(0, 0), (1, 0), (2, 1)]));
        assert_eq!(e1, 1);
        let entry = c.get("R").unwrap();
        assert_eq!(entry.profile.tuples, 3);
        assert_eq!(entry.profile.active_x, 3);
        assert_eq!(entry.profile.active_y, 2);
        assert_eq!(entry.profile.max_y_degree, 2);
        // self_join_size = 2² + 1² = 5
        assert_eq!(entry.profile.self_join_size, 5);
    }

    #[test]
    fn update_requires_existing_name() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.update("nope", rel(&[(0, 0)])),
            Err(ServiceError::UnknownRelation(_))
        ));
        c.register("R", rel(&[(0, 0)]));
        let old_epoch = c.get("R").unwrap().epoch;
        let new_epoch = c.update("R", rel(&[(0, 0), (1, 0)])).unwrap();
        assert!(new_epoch > old_epoch);
        assert_eq!(c.get("R").unwrap().profile.tuples, 2);
    }

    #[test]
    fn identical_update_is_a_noop() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0), (1, 0)]));
        let epoch = c.get("R").unwrap().epoch;
        let again = c.update("R", rel(&[(0, 0), (1, 0)])).unwrap();
        assert_eq!(again, epoch, "empty staged delta must not bump the epoch");
        assert_eq!(c.epoch(), epoch);
    }

    #[test]
    fn apply_delta_installs_and_reports_context() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0), (1, 0)]));
        let mut delta = RelationDelta::new();
        delta.insert(2, 1).delete(1, 0);
        let staged = c.apply_delta("R", &delta).unwrap();
        assert_eq!(staged.old.edges(), &[(0, 0), (1, 0)]);
        assert!(staged.new_epoch > staged.old_epoch);
        assert_eq!(staged.delta.inserts, vec![(2, 1)]);
        assert_eq!(staged.delta.deletes, vec![(1, 0)]);
        let entry = c.get("R").unwrap();
        assert_eq!(entry.relation.edges(), &[(0, 0), (2, 1)]);
        assert_eq!(entry.epoch, staged.new_epoch);
        assert_eq!(entry.profile.tuples, 2, "profile recomputed");
    }

    #[test]
    fn apply_delta_noop_batch_keeps_epoch() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0)]));
        let epoch = c.epoch();
        // Insert of a present tuple + delete of an absent one: nets out.
        let mut delta = RelationDelta::new();
        delta.insert(0, 0).delete(9, 9);
        let staged = c.apply_delta("R", &delta).unwrap();
        assert!(staged.delta.is_empty());
        assert_eq!(staged.new_epoch, staged.old_epoch);
        assert_eq!(c.epoch(), epoch);
        assert!(matches!(
            c.apply_delta("nope", &RelationDelta::new()),
            Err(ServiceError::UnknownRelation(_))
        ));
    }

    #[test]
    fn remove_bumps_epoch() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0)]));
        let e = c.epoch();
        assert!(c.remove("R"));
        assert!(c.epoch() > e);
        assert!(!c.remove("R"));
        assert!(c.is_empty());
    }

    #[test]
    fn names_trimmed_to_match_request_canonicalization() {
        let mut c = Catalog::new();
        c.register(" R \t", rel(&[(0, 0)]));
        assert!(
            c.get("R").is_some(),
            "padded registration must be reachable"
        );
        assert_eq!(c.names(), vec!["R"]);
        assert!(c.update(" R ", rel(&[(0, 0), (1, 0)])).is_ok());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register("b", rel(&[(0, 0)]));
        c.register("a", rel(&[(0, 0)]));
        assert_eq!(c.names(), vec!["a", "b"]);
        assert_eq!(c.len(), 2);
    }

    /// Two names guaranteed to land on different shards of `c`.
    fn names_on_distinct_shards(c: &ShardedCatalog) -> (String, String) {
        let a = "r0".to_string();
        let b = (0..100)
            .map(|i| format!("s{i}"))
            .find(|n| c.shard_of(n) != c.shard_of(&a))
            .expect("some name lands on another shard");
        (a, b)
    }

    #[test]
    fn sharded_register_resolve_round_trip() {
        let c = ShardedCatalog::new(8);
        assert_eq!(c.shard_count(), 8);
        assert!(c.is_empty());
        let e1 = c.register("R", rel(&[(0, 0), (1, 0)]));
        let e2 = c.register("S", rel(&[(2, 1)]));
        assert!(e1 >= 1 && e2 >= 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["R", "S"]);
        assert_eq!(c.profile("R").unwrap().tuples, 2);
        assert_eq!(c.edges("S").unwrap(), vec![(2, 1)]);
        let (handles, epochs) = c.pin(&["R", "S", "R"]).unwrap();
        assert_eq!(handles.len(), 3);
        assert_eq!(epochs[0], epochs[2], "same entry pins the same epoch");
        assert!(matches!(
            c.pin(&["R", "nope"]),
            Err(ServiceError::UnknownRelation(_))
        ));
        assert!(c.remove("R"));
        assert!(c.snapshot(&["R", "S"])[0].is_none());
        assert!(c.snapshot(&["S"])[0].is_some());
    }

    #[test]
    fn sharded_update_bumps_only_its_shard() {
        let c = ShardedCatalog::new(8);
        let (a, b) = names_on_distinct_shards(&c);
        c.register(&a, rel(&[(0, 0)]));
        c.register(&b, rel(&[(1, 1)]));
        let b_epoch = c.entry_epoch(&b).unwrap();
        let a_epoch = c.entry_epoch(&a).unwrap();
        for step in 0..4 {
            c.update(&a, rel(&[(0, 0), (step + 1, 0)])).unwrap();
        }
        assert!(c.entry_epoch(&a).unwrap() > a_epoch, "A's epoch advances");
        assert_eq!(
            c.entry_epoch(&b).unwrap(),
            b_epoch,
            "B's epoch must be untouched by updates to A's shard"
        );
    }

    #[test]
    fn sharded_shard_of_is_stable_and_trims() {
        let c = ShardedCatalog::new(5);
        assert_eq!(c.shard_of("R"), c.shard_of(" R \t"));
        let d = ShardedCatalog::new(5);
        assert_eq!(c.shard_of("whatever"), d.shard_of("whatever"));
    }

    #[test]
    fn single_shard_degenerates_to_plain_catalog() {
        let c = ShardedCatalog::new(1);
        c.register("a", rel(&[(0, 0)]));
        c.register("b", rel(&[(1, 0)]));
        assert_eq!(c.shard_of("a"), 0);
        assert_eq!(c.epoch(), 2);
        let (_, epochs) = c.pin(&["a", "b"]).unwrap();
        assert_eq!(epochs, vec![1, 2]);
    }
}
