//! The relation catalog: named, immutable, stat-profiled relations with
//! an epoch per entry.
//!
//! Registration pays the indexing and profiling cost **once** — the
//! degree histograms the §5 threshold machinery needs are computed here,
//! not per query — and every update replaces the whole entry under a new
//! epoch. Epochs make cache invalidation free: the result cache keys on
//! `(fingerprint, epochs of referenced relations)`, so a stale entry is
//! simply never looked up again and ages out of the LRU.

use crate::error::ServiceError;
use mmjoin_storage::{DegreeHistogram, NormalizedDelta, Relation, RelationDelta};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The per-relation statistics profile, computed once at registration.
#[derive(Debug, Clone)]
pub struct RelationProfile {
    /// Tuples `N` (after deduplication).
    pub tuples: usize,
    /// Distinct active `x` values (sets).
    pub active_x: usize,
    /// Distinct active `y` values (elements).
    pub active_y: usize,
    /// Largest `x` degree (biggest set).
    pub max_x_degree: u32,
    /// Largest `y` degree (most popular element).
    pub max_y_degree: u32,
    /// Full self-join size `Σ_y deg(y)²` — the duplication mass that
    /// drives the combinatorial-vs-matrix plan choice on self joins.
    pub self_join_size: u64,
    /// Degree histogram over `x` (unit metric).
    pub x_degrees: DegreeHistogram,
    /// Degree histogram over `y` (unit metric).
    pub y_degrees: DegreeHistogram,
}

impl RelationProfile {
    /// Profiles `relation` in `O(N log N)`.
    pub fn compute(relation: &Relation) -> Self {
        let x_degrees = DegreeHistogram::build(relation.by_x(), |_| 1);
        let y_degrees = DegreeHistogram::build(relation.by_y(), |_| 1);
        Self {
            tuples: relation.len(),
            active_x: x_degrees.active(),
            active_y: y_degrees.active(),
            max_x_degree: x_degrees.max_degree(),
            max_y_degree: y_degrees.max_degree(),
            self_join_size: relation.full_join_size(relation),
            x_degrees,
            y_degrees,
        }
    }
}

/// One catalog slot: the relation, its cached profile, and the epoch it
/// was installed at.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The relation itself (shared with in-flight queries).
    pub relation: Arc<Relation>,
    /// Statistics computed at registration.
    pub profile: Arc<RelationProfile>,
    /// Monotonically increasing install epoch (catalog-wide counter).
    pub epoch: u64,
}

/// The context of one applied delta batch, as the maintenance path needs
/// it: the relation as it was (delta joins are expressed over the old
/// state), both epochs, and the effective delta.
#[derive(Debug, Clone)]
pub struct StagedUpdate {
    /// The relation before the update.
    pub old: Arc<Relation>,
    /// Its epoch before the update.
    pub old_epoch: u64,
    /// The epoch after the update (`== old_epoch` for no-op batches).
    pub new_epoch: u64,
    /// The effective delta (empty for no-op batches).
    pub delta: NormalizedDelta,
}

/// Named-relation catalog with epoch bookkeeping.
///
/// `BTreeMap` keeps `names()` deterministic for the REPL and tests.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
    epoch: u64,
}

impl Catalog {
    /// Empty catalog at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) `name`, profiling the relation and bumping
    /// the catalog epoch. Returns the entry's new epoch.
    ///
    /// The name is trimmed of surrounding whitespace — request
    /// canonicalization trims names before lookup, so an untrimmed
    /// catalog key would be permanently unreachable.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) -> u64 {
        let name = name.into().trim().to_string();
        self.epoch += 1;
        let entry = CatalogEntry {
            profile: Arc::new(RelationProfile::compute(&relation)),
            relation: Arc::new(relation),
            epoch: self.epoch,
        };
        self.entries.insert(name, entry);
        self.epoch
    }

    /// Replaces an *existing* relation, bumping epochs; unknown names are
    /// an error (use [`Catalog::register`] to create).
    ///
    /// A replacement whose tuples equal the current entry's is a no-op:
    /// the existing epoch is returned unchanged, so an empty staged delta
    /// never cold-starts the result cache.
    pub fn update(&mut self, name: &str, relation: Relation) -> Result<u64, ServiceError> {
        let name = name.trim();
        let Some(entry) = self.entries.get(name) else {
            return Err(ServiceError::UnknownRelation(name.to_string()));
        };
        if entry.relation.edges() == relation.edges() {
            return Ok(entry.epoch);
        }
        Ok(self.register(name, relation))
    }

    /// Applies a staged tuple batch to an existing relation, returning
    /// the update context the maintenance path needs: the pre-update
    /// relation and epoch, the post-update epoch, and the effective
    /// (normalized) delta.
    ///
    /// A batch that normalizes to nothing is a complete no-op — no epoch
    /// bump, `new_epoch == old_epoch` — which keeps every cached result
    /// addressable.
    pub fn apply_delta(
        &mut self,
        name: &str,
        delta: &RelationDelta,
    ) -> Result<StagedUpdate, ServiceError> {
        let name = name.trim();
        let Some(entry) = self.entries.get(name) else {
            return Err(ServiceError::UnknownRelation(name.to_string()));
        };
        let old = Arc::clone(&entry.relation);
        let old_epoch = entry.epoch;
        let delta = delta.normalize(&old);
        if delta.is_empty() {
            return Ok(StagedUpdate {
                old,
                old_epoch,
                new_epoch: old_epoch,
                delta,
            });
        }
        let new_epoch = self.register(name, old.apply_normalized(&delta));
        Ok(StagedUpdate {
            old,
            old_epoch,
            new_epoch,
            delta,
        })
    }

    /// Removes `name`, bumping the catalog epoch if it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let removed = self.entries.remove(name).is_some();
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Looks an entry up.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.get(name)
    }

    /// Resolves `name` or errors.
    pub fn resolve(&self, name: &str) -> Result<&CatalogEntry, ServiceError> {
        self.get(name)
            .ok_or_else(|| ServiceError::UnknownRelation(name.to_string()))
    }

    /// The catalog-wide epoch: bumped by every register/update/remove.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(u32, u32)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn register_profiles_and_bumps_epoch() {
        let mut c = Catalog::new();
        assert_eq!(c.epoch(), 0);
        let e1 = c.register("R", rel(&[(0, 0), (1, 0), (2, 1)]));
        assert_eq!(e1, 1);
        let entry = c.get("R").unwrap();
        assert_eq!(entry.profile.tuples, 3);
        assert_eq!(entry.profile.active_x, 3);
        assert_eq!(entry.profile.active_y, 2);
        assert_eq!(entry.profile.max_y_degree, 2);
        // self_join_size = 2² + 1² = 5
        assert_eq!(entry.profile.self_join_size, 5);
    }

    #[test]
    fn update_requires_existing_name() {
        let mut c = Catalog::new();
        assert!(matches!(
            c.update("nope", rel(&[(0, 0)])),
            Err(ServiceError::UnknownRelation(_))
        ));
        c.register("R", rel(&[(0, 0)]));
        let old_epoch = c.get("R").unwrap().epoch;
        let new_epoch = c.update("R", rel(&[(0, 0), (1, 0)])).unwrap();
        assert!(new_epoch > old_epoch);
        assert_eq!(c.get("R").unwrap().profile.tuples, 2);
    }

    #[test]
    fn identical_update_is_a_noop() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0), (1, 0)]));
        let epoch = c.get("R").unwrap().epoch;
        let again = c.update("R", rel(&[(0, 0), (1, 0)])).unwrap();
        assert_eq!(again, epoch, "empty staged delta must not bump the epoch");
        assert_eq!(c.epoch(), epoch);
    }

    #[test]
    fn apply_delta_installs_and_reports_context() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0), (1, 0)]));
        let mut delta = RelationDelta::new();
        delta.insert(2, 1).delete(1, 0);
        let staged = c.apply_delta("R", &delta).unwrap();
        assert_eq!(staged.old.edges(), &[(0, 0), (1, 0)]);
        assert!(staged.new_epoch > staged.old_epoch);
        assert_eq!(staged.delta.inserts, vec![(2, 1)]);
        assert_eq!(staged.delta.deletes, vec![(1, 0)]);
        let entry = c.get("R").unwrap();
        assert_eq!(entry.relation.edges(), &[(0, 0), (2, 1)]);
        assert_eq!(entry.epoch, staged.new_epoch);
        assert_eq!(entry.profile.tuples, 2, "profile recomputed");
    }

    #[test]
    fn apply_delta_noop_batch_keeps_epoch() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0)]));
        let epoch = c.epoch();
        // Insert of a present tuple + delete of an absent one: nets out.
        let mut delta = RelationDelta::new();
        delta.insert(0, 0).delete(9, 9);
        let staged = c.apply_delta("R", &delta).unwrap();
        assert!(staged.delta.is_empty());
        assert_eq!(staged.new_epoch, staged.old_epoch);
        assert_eq!(c.epoch(), epoch);
        assert!(matches!(
            c.apply_delta("nope", &RelationDelta::new()),
            Err(ServiceError::UnknownRelation(_))
        ));
    }

    #[test]
    fn remove_bumps_epoch() {
        let mut c = Catalog::new();
        c.register("R", rel(&[(0, 0)]));
        let e = c.epoch();
        assert!(c.remove("R"));
        assert!(c.epoch() > e);
        assert!(!c.remove("R"));
        assert!(c.is_empty());
    }

    #[test]
    fn names_trimmed_to_match_request_canonicalization() {
        let mut c = Catalog::new();
        c.register(" R \t", rel(&[(0, 0)]));
        assert!(
            c.get("R").is_some(),
            "padded registration must be reachable"
        );
        assert_eq!(c.names(), vec!["R"]);
        assert!(c.update(" R ", rel(&[(0, 0), (1, 0)])).is_ok());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.register("b", rel(&[(0, 0)]));
        c.register("a", rel(&[(0, 0)]));
        assert_eq!(c.names(), vec!["a", "b"]);
        assert_eq!(c.len(), 2);
    }
}
