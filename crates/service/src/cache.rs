//! The LRU result cache.
//!
//! Keyed by `(canonical query fingerprint, epochs of the referenced
//! relations)` — see [`crate::Request::fingerprint`] and
//! [`crate::Catalog`]. Because the epoch is part of the key, an update
//! never *serves* a stale result; the superseded entry just stops being
//! addressable and is evicted by recency like any other cold entry.
//! Cached rows are shared out as `Arc`s, so a hit is O(1) regardless of
//! result size and hits are byte-identical to the cold execution that
//! populated them.

use crate::maintain::DeltaResult;
use crate::request::Request;
use mmjoin_api::ExecStats;
use mmjoin_storage::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A materialised query result, shared between the cache and responses.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Output arity.
    pub arity: usize,
    /// The rows, in the engine's emission order (maintained entries:
    /// sorted canonical order).
    pub rows: Arc<Vec<Vec<Value>>>,
    /// Per-row witness counts (0 where the query family emits none).
    pub counts: Arc<Vec<u32>>,
    /// The stats of the execution that produced this result.
    pub stats: ExecStats,
    /// Whether a row limit cut the stream short.
    pub truncated: bool,
    /// Per-tuple support counts, present once the entry has been through
    /// the maintenance path — what makes future updates patchable.
    pub support: Option<Arc<DeltaResult>>,
    /// Whether this entry was last refreshed by an in-place delta patch
    /// (as opposed to an execution, cold or eager).
    pub maintained: bool,
}

#[derive(Debug)]
struct Slot {
    /// The canonical request (+ relation epochs) this result answers.
    /// Checked on every hit: the 64-bit key is a hash, and a hash
    /// collision must degrade to a miss, never to serving foreign rows.
    request: Request,
    epochs: Vec<u64>,
    value: CachedResult,
    /// Last-touch tick for LRU ordering.
    stamp: u64,
}

/// Fixed-capacity least-recently-used map from cache key to result.
#[derive(Debug)]
pub struct ResultCache {
    slots: HashMap<u64, Slot>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: HashMap::with_capacity(capacity.min(1024)),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// Looks `key` up, refreshing its recency on a hit. The canonical
    /// `request` and `epochs` must match what the slot was filled with —
    /// a key collision between distinct requests is answered as a miss.
    pub fn get(&mut self, key: u64, request: &Request, epochs: &[u64]) -> Option<CachedResult> {
        self.tick += 1;
        match self.slots.get_mut(&key) {
            Some(slot) if slot.request == *request && slot.epochs == epochs => {
                slot.stamp = self.tick;
                self.hits += 1;
                Some(slot.value.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` would hit, without touching recency or the hit/miss
    /// counters (the `explain` path observes the cache; it must not
    /// perturb it).
    pub fn peek(&self, key: u64, request: &Request, epochs: &[u64]) -> bool {
        matches!(
            self.slots.get(&key),
            Some(slot) if slot.request == *request && slot.epochs == epochs
        )
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry if at capacity.
    pub fn insert(&mut self, key: u64, request: Request, epochs: Vec<u64>, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.slots.contains_key(&key) && self.slots.len() >= self.capacity {
            // O(n) victim scan: capacities are small (hundreds), and this
            // only runs on insert-at-capacity. Swap for a list-based LRU
            // if profiles ever show it.
            if let Some((&victim, _)) = self.slots.iter().min_by_key(|(_, s)| s.stamp) {
                self.slots.remove(&victim);
                self.evictions += 1;
            }
        }
        self.slots.insert(
            key,
            Slot {
                request,
                epochs,
                value,
                stamp: self.tick,
            },
        );
    }

    /// Removes and returns every entry whose request references relation
    /// `name` (already-canonical names match exactly). The maintenance
    /// path patches the drained entries and re-inserts the survivors
    /// under their post-update keys; anything not re-inserted is thereby
    /// invalidated. Every drained slot counts as update-driven
    /// `invalidations` churn (a re-inserted survivor is a *new* entry
    /// under a new key) — distinct from capacity `evictions`.
    pub fn drain_referencing(&mut self, name: &str) -> Vec<(u64, Request, Vec<u64>, CachedResult)> {
        let keys: Vec<u64> = self
            .slots
            .iter()
            .filter(|(_, slot)| slot.request.relation_names().contains(&name))
            .map(|(&key, _)| key)
            .collect();
        self.invalidations += keys.len() as u64;
        keys.into_iter()
            .map(|key| {
                let slot = self.slots.remove(&key).expect("key just enumerated");
                (key, slot.request, slot.epochs, slot.value)
            })
            .collect()
    }

    /// Drops every entry (used when a caller wants a hard reset; epoch
    /// keying makes this unnecessary for correctness). Counted as
    /// invalidations, not evictions.
    pub fn clear(&mut self) {
        self.invalidations += self.slots.len() as u64;
        self.slots.clear();
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `(hits, misses, evictions, invalidations)` counters since
    /// construction. `evictions` is capacity pressure (LRU victims);
    /// `invalidations` is update-driven churn (drained or cleared
    /// entries) — the quantity that makes heavy write traffic visible.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.evictions, self.invalidations)
    }

    /// Zeroes the hit/miss/eviction/invalidation counters without
    /// touching cached entries (`stats reset`).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.invalidations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: u32) -> CachedResult {
        CachedResult {
            arity: 2,
            rows: Arc::new(vec![vec![tag, tag]]),
            counts: Arc::new(vec![0]),
            stats: ExecStats::new("test", 1),
            truncated: false,
            support: None,
            maintained: false,
        }
    }

    fn req(tag: u32) -> Request {
        Request::similarity("R", tag.max(1))
    }

    fn put(c: &mut ResultCache, key: u64, tag: u32) {
        c.insert(key, req(tag), vec![1], result(tag));
    }

    fn probe(c: &mut ResultCache, key: u64, tag: u32) -> Option<CachedResult> {
        c.get(key, &req(tag), &[1])
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = ResultCache::new(4);
        assert!(probe(&mut c, 1, 1).is_none());
        put(&mut c, 1, 1);
        let hit = probe(&mut c, 1, 1).unwrap();
        assert_eq!(hit.rows[0], vec![1, 1]);
        assert_eq!(c.counters(), (1, 1, 0, 0));
    }

    #[test]
    fn colliding_key_with_different_request_is_a_miss() {
        let mut c = ResultCache::new(4);
        put(&mut c, 1, 1);
        assert!(
            probe(&mut c, 1, 2).is_none(),
            "same key, different request: must miss"
        );
        assert!(
            c.get(1, &req(1), &[9]).is_none(),
            "same key + request, different epochs: must miss"
        );
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        put(&mut c, 1, 1);
        put(&mut c, 2, 2);
        probe(&mut c, 1, 1); // 2 is now the LRU
        put(&mut c, 3, 3);
        assert!(probe(&mut c, 2, 2).is_none(), "LRU entry evicted");
        assert!(probe(&mut c, 1, 1).is_some());
        assert!(probe(&mut c, 3, 3).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = ResultCache::new(0);
        put(&mut c, 1, 1);
        assert!(c.is_empty());
        assert!(probe(&mut c, 1, 1).is_none());
    }

    #[test]
    fn drain_referencing_removes_only_matching_entries() {
        let mut c = ResultCache::new(4);
        c.insert(1, Request::similarity("R", 1), vec![1], result(1));
        c.insert(2, Request::similarity("S", 1), vec![2], result(2));
        let drained = c.drain_referencing("R");
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, 1, "key of the drained slot");
        assert_eq!(drained[0].2, vec![1], "epochs travel with the slot");
        assert_eq!(c.len(), 1);
        assert!(c.get(2, &Request::similarity("S", 1), &[2]).is_some());
        assert!(c.drain_referencing("R").is_empty(), "already drained");
    }

    #[test]
    fn drain_and_clear_count_invalidations() {
        let mut c = ResultCache::new(4);
        c.insert(1, Request::similarity("R", 1), vec![1], result(1));
        c.insert(2, Request::similarity("R", 2), vec![1], result(2));
        c.insert(3, Request::similarity("S", 1), vec![2], result(3));
        assert_eq!(c.drain_referencing("R").len(), 2);
        assert_eq!(c.counters().3, 2, "drained entries are invalidations");
        c.clear();
        assert_eq!(c.counters().3, 3, "clear() counts the dropped entry");
        assert_eq!(c.counters().2, 0, "no LRU eviction happened");
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let mut c = ResultCache::new(2);
        put(&mut c, 1, 1);
        put(&mut c, 2, 2);
        c.insert(1, req(1), vec![1], result(9));
        assert_eq!(c.len(), 2);
        assert_eq!(probe(&mut c, 1, 1).unwrap().rows[0], vec![9, 9]);
        assert!(probe(&mut c, 2, 2).is_some());
    }
}
