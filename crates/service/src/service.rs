//! The concurrent join service: admission queue, worker pool, and the
//! query path tying catalog + planner + cache + registry together.

use crate::cache::{CachedResult, ResultCache};
use crate::catalog::{RelationProfile, ShardedCatalog, StagedUpdate};
use crate::error::ServiceError;
use crate::maintain::{
    accumulate_two_path_delta, decide, delta_cost, Decision, DeltaResult, MaintenancePolicy,
    MaintenanceReport,
};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::planner::{Planner, Selection, SelectionReason};
use crate::request::{Fnv1a, QuerySpec, Request};
use mmjoin_api::ir::{Atom, QueryGraph};
use mmjoin_api::{DeltaSink, EngineRegistry, ExecStats, LimitSink, Query, QueryFamily, VecSink};
use mmjoin_core::plan::{FinalStage, GeneralPlan, NodeSource, PlanStep, ProjCols};
use mmjoin_core::{choose_thresholds, plan_general, JoinConfig, PlanChoice};
use mmjoin_executor::{Executor, ExecutorStats};
use mmjoin_obs::trace::{self, Stage, Tracer};
use mmjoin_storage::{Edge, Relation, RelationDelta, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Construction-time service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the admission queue (min 1). These are
    /// the *inter*-query threads; intra-query parallelism comes out of
    /// [`ServiceConfig::thread_budget`].
    pub workers: usize,
    /// Global intra-query thread budget: the service builds one shared
    /// [`Executor`] of this size and every engine's parallel work
    /// (light passes, GEMM bands, plan wavefronts) runs on it, with
    /// token arbitration splitting the budget across in-flight queries
    /// instead of each assuming it owns `join_config.threads` cores.
    /// `0` means "the machine's available parallelism".
    ///
    /// The budget caps parallelism; `join_config.threads` *requests* it
    /// per query (`0` ⇒ the whole budget, `1` ⇒ serial — the default).
    /// With the all-default configuration (serial engines, budget 0) no
    /// per-service pool is built at all, so idle services cost no
    /// threads. Ignored when [`ServiceConfig::join_config`] already
    /// carries an executor.
    pub thread_budget: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Catalog lock stripes (min 1). Relations hash to a shard by name;
    /// each shard has its own `RwLock` and epoch counter, so updates to
    /// one shard never block readers (or invalidate cache entries) of
    /// another. `1` degenerates to the old single-lock catalog — the
    /// baseline the saturation benchmark compares against.
    pub catalog_shards: usize,
    /// Admission-queue capacity; submissions beyond it are rejected with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Configuration shared by the planner's cost model (and by
    /// [`Service::with_config`]'s default registry).
    pub join_config: JoinConfig,
    /// Per-family engine overrides for the planner.
    pub engine_overrides: HashMap<QueryFamily, String>,
    /// Incremental-maintenance policy for the result cache under
    /// [`Service::apply_delta`] updates.
    pub maintenance: MaintenancePolicy,
    /// Slow-query threshold in microseconds; `0` disables the slow-query
    /// log. A query whose total latency (queue wait + service) crosses
    /// the threshold bumps the `slow_queries` counter and, when the
    /// global tracer is enabled, dumps its span tree to stderr with
    /// per-stage durations. When no trace context arrived with the
    /// request, workers mint one themselves (bypassing sampling) so the
    /// tree is available if the query turns out slow.
    pub slow_query_us: u64,
    /// Calibrate the matmul cost model against the dispatched GEMM kernel
    /// at startup (`CostModel::calibrate_quick`) and re-derive the
    /// combinatorial/matrix crossover from the measurement
    /// (`JoinConfig::install_measured_model`). Costs tens of milliseconds
    /// once; off by default so unit tests stay deterministic.
    pub calibrate_cost: bool,
    /// Cost-model manifest path. With [`ServiceConfig::calibrate_cost`]:
    /// load a matching manifest instead of re-measuring (a stale kernel
    /// tag forces a re-measure), and save freshly measured models here.
    pub calibration_path: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(1, 8),
            thread_budget: 0,
            cache_capacity: 256,
            catalog_shards: 8,
            queue_capacity: 1024,
            join_config: JoinConfig::default(),
            engine_overrides: HashMap::new(),
            maintenance: MaintenancePolicy::default(),
            slow_query_us: 0,
            calibrate_cost: false,
            calibration_path: None,
        }
    }
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct Response {
    /// Output rows, in the engine's emission order. Shared with the
    /// cache, so a hit returns the *same* buffer the cold run produced.
    pub rows: Arc<Vec<Vec<Value>>>,
    /// Per-row witness counts (0 where the family emits none).
    pub counts: Arc<Vec<u32>>,
    /// Output arity.
    pub arity: usize,
    /// The stats of the execution that produced these rows (for a cache
    /// hit: the original cold execution).
    pub stats: ExecStats,
    /// How the engine was selected (`None` on cache hits — no planning
    /// ran; the engine name is still in [`ExecStats::engine`]).
    pub selection: Option<SelectionReason>,
    /// Whether this response came from the result cache.
    pub cached: bool,
    /// Whether the serving cache entry was last refreshed by in-place
    /// delta maintenance rather than an execution (implies `cached`).
    pub maintained: bool,
    /// Whether the row limit was reached (the stream *may* have been cut
    /// short; an output of exactly `limit` rows also reports `true`).
    pub truncated: bool,
    /// The cache key this result is stored under (fingerprint ⊕ epochs).
    pub cache_key: u64,
}

struct Job {
    request: Request,
    enqueued: Instant,
    /// Trace context captured at submission — the worker thread re-joins
    /// the submitter's trace across the queue hop, so queue wait and all
    /// downstream stages land under the request's root span.
    ctx: Option<trace::Ctx>,
    tx: mpsc::Sender<Result<Response, ServiceError>>,
}

/// Handle to an in-flight submission.
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServiceError>>,
}

impl Ticket {
    /// Blocks until the response is ready.
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::ShuttingDown))
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Shared service state. Every mutex/rwlock acquisition recovers from
/// poisoning via `unwrap_or_else(PoisonError::into_inner)`: a panicking
/// engine already fails its own query (see `worker_loop`), and the
/// guarded state stays valid across a panic — the cache is epoch-keyed
/// (a half-finished refresh is merely unreachable), metrics are plain
/// counters, and the catalog commits entries atomically — so abandoning
/// the whole service over a poisoned lock would turn one bad query into
/// a permanent outage.
struct Inner {
    registry: EngineRegistry,
    planner: Planner,
    policy: MaintenancePolicy,
    catalog: ShardedCatalog,
    cache: Mutex<ResultCache>,
    queue: Mutex<QueueState>,
    available: Condvar,
    /// Lock-free since PR 7: every instrument is atomic, so recording
    /// needs no mutex (and can never poison).
    metrics: ServiceMetrics,
    queue_capacity: usize,
    slow_query_us: u64,
    shutting_down: AtomicBool,
}

/// A long-lived, thread-safe join service.
///
/// ```
/// use mmjoin_service::{Request, Service, ServiceConfig};
/// use mmjoin_storage::Relation;
///
/// let service = Service::with_default_registry(2);
/// service.register("friends", Relation::from_edges([(0, 0), (1, 0), (2, 1)]));
///
/// let cold = service.query(Request::two_path("friends", "friends"))?;
/// let warm = service.query(Request::two_path("friends", "friends"))?;
/// assert!(!cold.cached && warm.cached);
/// assert_eq!(cold.rows, warm.rows);
/// # Ok::<(), mmjoin_service::ServiceError>(())
/// ```
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

/// The core count the startup calibration should sweep up to: the
/// installed per-service executor's budget when there is one, else the
/// configured [`ServiceConfig::thread_budget`], else the process-global
/// pool's budget (machine parallelism). Deliberately *not*
/// `join_config.effective_threads()` — that defaults to 1 (serial
/// engines) and used to reduce `--calibrate` to a single-core sweep even
/// on an 8-thread budget.
fn calibration_cores(config: &ServiceConfig) -> usize {
    if let Some(exec) = &config.join_config.executor {
        exec.budget()
    } else if config.thread_budget > 0 {
        config.thread_budget
    } else {
        Executor::global().budget()
    }
}

/// Applies [`ServiceConfig::calibrate_cost`]: installs a measured cost
/// model into `config.join_config` (loading a manifest with a matching
/// kernel tag when one is given, measuring and saving otherwise) and
/// clears the flag so the calibration runs at most once per config. The
/// measurement sweeps the cores axis up to [`calibration_cores`]; a
/// cached manifest whose samples stop short of that budget (e.g. one
/// written by a pre-sweep build, or measured under a smaller budget) is
/// treated as stale and re-measured.
fn apply_calibration(config: &mut ServiceConfig) {
    if !config.calibrate_cost {
        return;
    }
    config.calibrate_cost = false;
    let kernel = mmjoin_matrix::active_kernel().name();
    let budget = calibration_cores(config);
    let cached = config.calibration_path.as_deref().and_then(|path| {
        let model = mmjoin_matrix::CostModel::load(path).ok()?;
        (model.kernel() == kernel && model.max_cores() >= budget).then_some(model)
    });
    let model = cached.unwrap_or_else(|| {
        let model = mmjoin_matrix::CostModel::calibrate_quick(budget);
        if let Some(path) = &config.calibration_path {
            if let Err(e) = model.save(path) {
                eprintln!("mmjoin: could not save calibration to {path:?}: {e}");
            }
        }
        model
    });
    config.join_config.install_measured_model(model);
}

impl Service {
    /// A service over `registry` with the given configuration.
    pub fn new(registry: EngineRegistry, mut config: ServiceConfig) -> Self {
        apply_calibration(&mut config);
        let planner = Planner {
            overrides: config.engine_overrides.clone(),
            config: config.join_config.clone(),
        };
        let inner = Arc::new(Inner {
            registry,
            planner,
            policy: config.maintenance.clone(),
            catalog: ShardedCatalog::new(config.catalog_shards),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            metrics: ServiceMetrics::new(),
            queue_capacity: config.queue_capacity.max(1),
            slow_query_us: config.slow_query_us,
            shutting_down: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                // lint:allow(thread-spawn): the service's long-lived,
                // named worker pool is the sanctioned entry point that
                // feeds the shared executor; per-query compute still
                // routes through its token arbitration.
                std::thread::Builder::new()
                    .name(format!("mmjoin-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn service worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// A service with the full default engine roster and `workers` pool
    /// threads. Engines run serially; the service parallelises *across*
    /// queries. For intra-query parallelism use [`Service::with_config`]
    /// with a multi-threaded [`JoinConfig`].
    pub fn with_default_registry(workers: usize) -> Self {
        Self::with_config(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        })
    }

    /// A service with the full default engine roster, all knobs explicit.
    /// Installs the service's shared intra-query [`Executor`] (sized by
    /// [`ServiceConfig::thread_budget`]) into the configuration before
    /// building the roster, so every engine draws from one budget.
    pub fn with_config(mut config: ServiceConfig) -> Self {
        // Build the pool only when something can use it: engines stay
        // serial under the default `threads == 1` unless the caller also
        // asked for a budget, and a fully-serial service must not pay
        // for `available_parallelism() − 1` permanently idle workers.
        let wants_pool = config.join_config.threads != 1 || config.thread_budget != 0;
        if config.join_config.executor.is_none() && wants_pool {
            config.join_config.executor = Some(Arc::new(Executor::new(config.thread_budget)));
        }
        // Calibrate before building the roster so engines and planner see
        // the same measured model and re-derived crossover.
        apply_calibration(&mut config);
        let registry = crate::roster::registry_with_config(&config.join_config);
        Self::new(registry, config)
    }

    /// The intra-query thread budget of the executor governing this
    /// service's engines (the process-global pool's budget when no
    /// per-service executor is installed).
    pub fn thread_budget(&self) -> usize {
        self.inner.planner.config.exec().budget()
    }

    /// Registers (or replaces) a named relation, profiling it once.
    /// Returns the shard epoch of the new entry.
    pub fn register(&self, name: impl Into<String>, relation: Relation) -> u64 {
        self.inner.catalog.register(name, relation)
    }

    /// Replaces an existing relation (bumping its epoch, which makes all
    /// cached results over it unreachable).
    pub fn update(&self, name: &str, relation: Relation) -> Result<u64, ServiceError> {
        self.inner.catalog.update(name, relation)
    }

    /// Stages a batch of tuple inserts, maintaining affected cached
    /// results instead of invalidating them where the cost estimate says
    /// it pays off. See [`Service::apply_delta`].
    pub fn insert(
        &self,
        name: &str,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<MaintenanceReport, ServiceError> {
        self.apply_delta(name, &RelationDelta::inserting(edges))
    }

    /// Stages a batch of tuple deletes; the cached-result counterpart of
    /// [`Service::insert`].
    pub fn delete(
        &self,
        name: &str,
        edges: impl IntoIterator<Item = Edge>,
    ) -> Result<MaintenanceReport, ServiceError> {
        self.apply_delta(name, &RelationDelta::deleting(edges))
    }

    /// Applies a staged insert/delete batch to a registered relation.
    ///
    /// The batch is normalized against the current relation (no-op
    /// batches change nothing — not even the epoch) and merged into a
    /// fresh indexed [`Relation`]. Every cached result over the relation
    /// is then refreshed per the maintain / recompute / invalidate
    /// decision rule (see [`crate::maintain`]): two-path entries are
    /// patched in place via delta joins over their per-tuple support
    /// counts, upgraded by an eager counting re-execution, or dropped.
    pub fn apply_delta(
        &self,
        name: &str,
        delta: &RelationDelta,
    ) -> Result<MaintenanceReport, ServiceError> {
        let staged = self.inner.catalog.apply_delta(name, delta)?;
        let mut report = MaintenanceReport {
            epoch: staged.new_epoch,
            inserted: staged.delta.inserts.len(),
            deleted: staged.delta.deletes.len(),
            ..MaintenanceReport::default()
        };
        if staged.delta.is_empty() {
            // Nothing changed: cached entries stay addressable as-is.
            return Ok(report);
        }
        let name = name.trim();
        let _span = trace::span_dyn(Stage::Maintain, || format!("update {name}"));
        let drained = self
            .inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain_referencing(name);
        for (_, request, epochs, value) in drained {
            match refresh_entry(&self.inner, name, &staged, request, epochs, value) {
                Decision::Maintain => report.maintained += 1,
                Decision::Recompute => report.recomputed += 1,
                Decision::Invalidate => report.invalidated += 1,
            }
        }
        self.inner.metrics.record_update(&report);
        Ok(report)
    }

    /// Removes a relation from the catalog.
    pub fn remove(&self, name: &str) -> bool {
        self.inner.catalog.remove(name)
    }

    /// Current catalog-wide epoch (the sum of the per-shard counters).
    pub fn catalog_epoch(&self) -> u64 {
        self.inner.catalog.epoch()
    }

    /// Number of catalog lock stripes.
    pub fn catalog_shards(&self) -> usize {
        self.inner.catalog.shard_count()
    }

    /// The shard index `name` hashes to (stable across runs — tests and
    /// benches use it to place relations on distinct shards).
    pub fn shard_of(&self, name: &str) -> usize {
        self.inner.catalog.shard_of(name)
    }

    /// The current epoch of a relation's catalog entry, if registered.
    /// Updates to relations on *other* shards never change it.
    pub fn relation_epoch(&self, name: &str) -> Option<u64> {
        self.inner.catalog.entry_epoch(name)
    }

    /// Registered relation names, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.inner.catalog.names()
    }

    /// The cached statistics profile of a relation, if registered.
    pub fn relation_profile(&self, name: &str) -> Option<Arc<RelationProfile>> {
        self.inner.catalog.profile(name)
    }

    /// A snapshot of a relation's current tuples (for read-modify-write
    /// updates, e.g. the REPL's `update … add`).
    pub fn relation_edges(&self, name: &str) -> Option<Vec<(Value, Value)>> {
        self.inner.catalog.edges(name)
    }

    /// Enqueues a request; returns immediately with a [`Ticket`].
    /// Rejected submissions (queue full, shutting down) resolve the
    /// ticket with the corresponding error.
    pub fn submit(&self, request: Request) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let mut q = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // lint:allow(seqcst): the shutdown latch must be globally
        // ordered with the queue mutex so no submission slips between
        // the latch flip and the queue's shutdown flag.
        if q.shutdown || self.inner.shutting_down.load(Ordering::SeqCst) {
            let _ = tx.send(Err(ServiceError::ShuttingDown));
        } else if q.jobs.len() >= self.inner.queue_capacity {
            drop(q);
            self.inner.metrics.record_rejected();
            let _ = tx.send(Err(ServiceError::Overloaded {
                capacity: self.inner.queue_capacity,
            }));
        } else {
            q.jobs.push_back(Job {
                request,
                enqueued: Instant::now(),
                ctx: trace::current_if_enabled(),
                tx,
            });
            let depth = q.jobs.len();
            drop(q);
            self.inner.metrics.record_depth(depth);
            self.inner.available.notify_one();
        }
        Ticket { rx }
    }

    /// Submits and blocks for the answer — the synchronous front door.
    pub fn query(&self, request: Request) -> Result<Response, ServiceError> {
        self.submit(request).wait()
    }

    /// Explains how `request` would run — the chosen engine, cache
    /// status, and (for general queries) the full decomposition with
    /// per-step strategies, thresholds and §5 size estimates — without
    /// executing any join. Returns display-ready lines.
    pub fn explain(&self, request: Request) -> Result<Vec<String>, ServiceError> {
        let request = request.canonical();
        let (handles, epochs) = resolve_handles(&self.inner, &request)?;
        let fingerprint = request.fingerprint_assuming_canonical();
        let key = cache_key(fingerprint, &epochs);
        let cached = self
            .inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .peek(key, &request, &epochs);
        let query = build_query(&request.spec, &handles)?;
        let selection =
            self.inner
                .planner
                .select(&self.inner.registry, &query, request.engine.as_deref())?;

        let mut lines = Vec::new();
        lines.push(format!(
            "engine {} ({})",
            selection.engine,
            match &selection.reason {
                SelectionReason::Pinned => "pinned".to_string(),
                SelectionReason::FamilyOverride => "family override".to_string(),
                SelectionReason::CostBased {
                    combinatorial,
                    full_join,
                    estimated_out,
                } => {
                    // Composed plans decide expand-vs-matrix per step
                    // (shown below); a single path label would lie.
                    let path = if matches!(request.spec, QuerySpec::General { .. }) {
                        "composed"
                    } else if *combinatorial {
                        "combinatorial"
                    } else {
                        "matrix"
                    };
                    format!(
                        "cost-based: {path} path, full join {full_join}, est out {estimated_out}"
                    )
                }
                SelectionReason::Fallback => "fallback".to_string(),
            }
        ));
        lines.push(format!(
            "fingerprint {fingerprint:016x}, cache {}",
            if cached { "hit" } else { "miss" }
        ));
        match &query {
            Query::General { graph } => {
                let plan = plan_general(graph).map_err(|e| {
                    ServiceError::Engine(mmjoin_api::EngineError::Plan(e.to_string()))
                })?;
                explain_plan(
                    &plan,
                    graph,
                    &request.spec,
                    &self.inner.planner.config,
                    &mut lines,
                );
            }
            Query::TwoPath { r, s, .. } => {
                lines.push(explain_thresholds(r, s, &self.inner.planner.config));
            }
            Query::SimilarityJoin { r, .. } | Query::ContainmentJoin { r } => {
                lines.push(explain_thresholds(r, r, &self.inner.planner.config));
            }
            Query::Star { relations } => {
                if relations.len() >= 2 {
                    lines.push(explain_thresholds(
                        relations[0],
                        relations[1],
                        &self.inner.planner.config,
                    ));
                }
            }
        }
        Ok(lines)
    }

    /// Service-level metrics snapshot, including the result cache's
    /// update-driven invalidation churn.
    pub fn metrics(&self) -> MetricsSnapshot {
        let cache_invalidations = self.cache_counters().3;
        let queue_depth = self
            .inner
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len();
        self.inner
            .metrics
            .snapshot(cache_invalidations, queue_depth)
    }

    /// Snapshot of the shared intra-query executor's counters (batches,
    /// tasks, steals, token grants, inline degradations).
    pub fn executor_stats(&self) -> ExecutorStats {
        self.inner.planner.config.exec().stats()
    }

    /// Zeroes the service metrics, the executor counters, and the result
    /// cache's hit/miss/eviction/invalidation counters, keeping every
    /// registration and cached entry (`stats reset`). The queue-depth
    /// high-water mark restarts from the current depth's next admission.
    pub fn reset_metrics(&self) {
        self.inner.metrics.reset();
        self.inner.planner.config.exec().reset_stats();
        self.inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .reset_counters();
    }

    /// `(hits, misses, evictions, invalidations)` of the result cache.
    pub fn cache_counters(&self) -> (u64, u64, u64, u64) {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .counters()
    }

    /// Results currently cached.
    pub fn cache_len(&self) -> usize {
        self.inner
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The engine registry this service executes on.
    pub fn registry(&self) -> &EngineRegistry {
        &self.inner.registry
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // lint:allow(seqcst): pairs with the SeqCst load in `submit`;
        // after this store no new job may enter the queue being drained.
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        {
            let mut q = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.shutdown = true;
            // Fail any still-queued jobs instead of silently dropping them.
            for job in q.jobs.drain(..) {
                let _ = job.tx.send(Err(ServiceError::ShuttingDown));
            }
        }
        self.inner.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Engine name reported by cache entries refreshed via delta patching
/// (no engine ran; the rows come from the maintained support counts).
const MAINTAINED_ENGINE: &str = "delta-maintain";

/// Combines the canonical request fingerprint with the epochs of the
/// referenced relations into the result-cache key.
fn cache_key(fingerprint: u64, epochs: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(fingerprint);
    for &epoch in epochs {
        h.u64(epoch);
    }
    h.finish()
}

/// One line describing the classic-family threshold decision.
fn explain_thresholds(r: &Relation, s: &Relation, config: &JoinConfig) -> String {
    let plan = choose_thresholds(r, s, config);
    match plan.choice {
        PlanChoice::Wcoj => format!(
            "plan: expand (WCOJ) — full join {} is output-like (est out {})",
            plan.estimate.full_join, plan.estimate.estimate
        ),
        PlanChoice::Mm { delta1, delta2 } => format!(
            "plan: matrix-partitioned Δ1={delta1} Δ2={delta2} — full join {}, est out {}",
            plan.estimate.full_join, plan.estimate.estimate
        ),
    }
}

/// Renders a composed plan's step DAG into display lines, resolving
/// node names from the request's atoms and computing per-step `(Δ1, Δ2)`
/// where both inputs are base relations (derived inputs decide at
/// runtime).
fn explain_plan(
    plan: &GeneralPlan,
    graph: &QueryGraph<'_>,
    spec: &QuerySpec,
    config: &JoinConfig,
    lines: &mut Vec<String>,
) {
    use std::borrow::Cow;
    let QuerySpec::General { atoms, projection } = spec else {
        return;
    };
    let node_name = |id: usize| -> String {
        match plan.nodes[id].source {
            NodeSource::Atom(i) => atoms[i].relation.clone(),
            NodeSource::Step(j) => format!("t{j}"),
        }
    };
    let node_desc = |id: usize| -> String {
        let n = &plan.nodes[id];
        format!("{}(v{}, v{})", node_name(id), n.a, n.b)
    };
    lines.push(format!(
        "decomposition: {} step(s), estimated output {} row(s)",
        plan.steps.len() + 1,
        plan.estimated_rows
    ));
    for (i, step) in plan.steps.iter().enumerate() {
        match *step {
            PlanStep::Semijoin {
                target,
                filter,
                on,
                result,
            } => lines.push(format!(
                "  step {i}: semijoin {} ⋉ {} on v{on} -> {}",
                node_desc(target),
                node_desc(filter),
                node_desc(result),
            )),
            PlanStep::Join {
                left,
                right,
                on,
                result,
                estimate,
            } => {
                // Both inputs materialised base atoms: the 2-path
                // primitive's threshold choice is known now. Transposing
                // to the primitive's orientation is linear and
                // explain-only — no join runs.
                let strategy = match (plan.nodes[left].source, plan.nodes[right].source) {
                    (NodeSource::Atom(l), NodeSource::Atom(r)) => {
                        let oriented = |id: usize, i: usize| -> Cow<'_, Relation> {
                            let rel = graph.atoms()[i].relation;
                            if plan.nodes[id].b == on {
                                Cow::Borrowed(rel)
                            } else {
                                Cow::Owned(rel.transposed())
                            }
                        };
                        let (lr, rr) = (oriented(left, l), oriented(right, r));
                        match choose_thresholds(&lr, &rr, config).choice {
                            PlanChoice::Wcoj => " [expand]".to_string(),
                            PlanChoice::Mm { delta1, delta2 } => {
                                format!(" [matrix Δ1={delta1} Δ2={delta2}]")
                            }
                        }
                    }
                    _ => " [strategy decided at runtime]".to_string(),
                };
                lines.push(format!(
                    "  step {i}: join {} ⋈ {} on v{on} -> {} [est rows {}, full join {}]{}",
                    node_desc(left),
                    node_desc(right),
                    node_desc(result),
                    estimate.rows,
                    estimate.full_join,
                    strategy,
                ));
            }
        }
    }
    match &plan.final_stage {
        FinalStage::Project { node, cols } => {
            let n = &plan.nodes[*node];
            let out = match cols {
                ProjCols::Ab => format!("(v{}, v{})", n.a, n.b),
                ProjCols::Ba => format!("(v{}, v{})", n.b, n.a),
                ProjCols::A => format!("(v{})", n.a),
                ProjCols::B => format!("(v{})", n.b),
            };
            lines.push(format!("  final: project {} -> {out}", node_desc(*node)));
        }
        FinalStage::Star { center, legs } => {
            let legs: Vec<String> = legs.iter().map(|&id| node_desc(id)).collect();
            lines.push(format!(
                "  final: star around v{center} over [{}] -> ({})",
                legs.join(", "),
                projection
                    .iter()
                    .map(|v| format!("v{v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
}

/// Refreshes one drained cache entry after `name` was updated: decides
/// maintain / recompute / invalidate, performs the chosen refresh, and
/// re-inserts the survivor under its post-update key. Returns what
/// actually happened (a failed maintain or recompute degrades to
/// invalidation — the cache must never serve doubtful rows).
fn refresh_entry(
    inner: &Inner,
    name: &str,
    staged: &StagedUpdate,
    request: Request,
    old_epochs: Vec<u64>,
    value: CachedResult,
) -> Decision {
    // Only two-path entries are maintainable: their output pairs have
    // well-defined per-tuple supports. Limits truncate the support set
    // and pins promise a specific engine's stats/order — both drop.
    let QuerySpec::TwoPath {
        r,
        s,
        with_counts,
        min_count,
    } = &request.spec
    else {
        return Decision::Invalidate;
    };
    if request.limit.is_some() || request.engine.is_some() {
        return Decision::Invalidate;
    }
    let (r_name, s_name, with_counts, min_count) = (r.clone(), s.clone(), *with_counts, *min_count);

    // Resolve the post-update state, verifying (a) the entry was current
    // *before* this update — a slot left over from older epochs must not
    // be resurrected by patching — and (b) the updated relation is still
    // at *this* update's epoch: a concurrent later update means our
    // staged delta no longer describes the old→current transition, so
    // patching with it would produce rows missing the later changes.
    // (Patched entries inserted under superseded epochs are merely
    // unreachable; this check prevents one keyed at the *latest* epochs
    // from carrying stale data.)
    let (r_new, s_new, new_epochs) = {
        let snap = inner.catalog.snapshot(&[&r_name, &s_name]);
        let (Some((r_rel, r_epoch)), Some((s_rel, s_epoch))) = (snap[0].clone(), snap[1].clone())
        else {
            return Decision::Invalidate;
        };
        for (entry_epoch, n) in [(r_epoch, r_name.as_str()), (s_epoch, s_name.as_str())] {
            if n == name && entry_epoch != staged.new_epoch {
                return Decision::Invalidate;
            }
        }
        let pre = |epoch: u64, n: &str| if n == name { staged.old_epoch } else { epoch };
        let expected_pre = vec![pre(r_epoch, &r_name), pre(s_epoch, &s_name)];
        if old_epochs != expected_pre {
            return Decision::Invalidate;
        }
        (r_rel, s_rel, vec![r_epoch, s_epoch])
    };
    let delta_on_r = r_name == name;
    let delta_on_s = s_name == name;
    let r_old: &Relation = if delta_on_r { &staged.old } else { &r_new };
    let s_old: &Relation = if delta_on_s { &staged.old } else { &s_new };

    let d_cost = delta_cost(&staged.delta, r_old, s_old, delta_on_r, delta_on_s);
    let plan = choose_thresholds(&r_new, &s_new, &inner.planner.config);
    let recompute_cost = plan.estimate.full_join + (r_new.len() + s_new.len()) as u64;

    let decision = decide(
        value.support.is_some(),
        d_cost,
        recompute_cost,
        &inner.policy,
    );
    let refreshed = match decision {
        Decision::Maintain => maintain_entry(
            &value,
            staged,
            r_old,
            s_old,
            delta_on_r,
            delta_on_s,
            with_counts,
            min_count,
        ),
        Decision::Recompute => recompute_entry(inner, &r_new, &s_new, with_counts, min_count),
        Decision::Invalidate => None,
    };
    match refreshed {
        Some(result) => {
            let key = cache_key(request.fingerprint_assuming_canonical(), &new_epochs);
            inner
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(key, request, new_epochs, result);
            decision
        }
        None => Decision::Invalidate,
    }
}

/// Patches a support-carrying entry with the signed delta joins.
#[allow(clippy::too_many_arguments)]
fn maintain_entry(
    value: &CachedResult,
    staged: &StagedUpdate,
    r_old: &Relation,
    s_old: &Relation,
    delta_on_r: bool,
    delta_on_s: bool,
    with_counts: bool,
    min_count: u32,
) -> Option<CachedResult> {
    let support = value.support.as_ref()?;
    let mut support = (**support).clone();
    let mut sink = DeltaSink::new();
    accumulate_two_path_delta(
        &mut sink,
        &staged.delta,
        r_old,
        s_old,
        delta_on_r,
        delta_on_s,
    );
    if !support.apply(sink.into_deltas()) {
        return None;
    }
    let (rows, counts) = support.rows(min_count, with_counts);
    Some(CachedResult {
        arity: 2,
        stats: ExecStats::new(MAINTAINED_ENGINE, rows.len() as u64),
        rows: Arc::new(rows),
        counts: Arc::new(counts),
        truncated: false,
        support: Some(Arc::new(support)),
        maintained: true,
    })
}

/// Eagerly re-executes a two-path entry as a counting join, building the
/// support structure that makes *future* updates maintainable.
fn recompute_entry(
    inner: &Inner,
    r_new: &Relation,
    s_new: &Relation,
    with_counts: bool,
    min_count: u32,
) -> Option<CachedResult> {
    let query = Query::TwoPath {
        r: r_new,
        s: s_new,
        with_counts: true,
        min_count: 1,
    };
    query.validate().ok()?;
    let selection = inner.planner.select(&inner.registry, &query, None).ok()?;
    let mut sink = DeltaSink::new();
    let stats = inner
        .registry
        .execute(&selection.engine, &query, &mut sink)
        .ok()?;
    let support = DeltaResult::from_signed(sink.into_deltas());
    let (rows, counts) = support.rows(min_count, with_counts);
    Some(CachedResult {
        arity: 2,
        stats: ExecStats {
            rows: rows.len() as u64,
            ..stats
        },
        rows: Arc::new(rows),
        counts: Arc::new(counts),
        truncated: false,
        support: Some(Arc::new(support)),
        maintained: false,
    })
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let job = {
            let mut q = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                q = inner
                    .available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        // Re-join the submitter's trace (if any) across the queue hop.
        // When a slow-query threshold is armed and no context arrived,
        // mint one here — bypassing sampling — so the span tree exists
        // if this query turns out slow. Either way the queue wait is
        // recorded retroactively: the span's clock started at submit.
        let minted = if job.ctx.is_none() && inner.slow_query_us > 0 {
            job.request
                .relation_names()
                .first()
                .map(|n| format!("query {n}"))
                .and_then(|label| Tracer::global().start_forced(&label))
        } else {
            None
        };
        let ctx = job.ctx.or(minted);
        trace::span_at(ctx, Stage::QueueWait, "service-queue", job.enqueued);
        let installed = trace::install(ctx);
        // A panicking engine must not take the worker (and with it the
        // whole queue) down: catch it, fail this query, keep serving.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process(&inner, job.request)
        }))
        .unwrap_or_else(|payload| Err(ServiceError::Internal(panic_message(payload))));
        drop(installed);
        if let Some(ctx) = minted {
            Tracer::global().finish(ctx);
        }
        let latency = job.enqueued.elapsed().as_secs_f64();
        match &result {
            Ok(response) => inner.metrics.record_query(latency, response.cached),
            Err(_) => inner.metrics.record_error(),
        }
        let latency_us = (latency * 1e6).round() as u64;
        if inner.slow_query_us > 0 && latency_us >= inner.slow_query_us {
            inner.metrics.record_slow();
            // For worker-minted traces the root is finished and carries
            // the full tree; for inbound contexts the root is still open
            // at the front end, so we render what has landed so far.
            match ctx.and_then(|c| Tracer::global().spans_of(c.trace)) {
                Some(t) => eprintln!(
                    "[mmjoin] slow query: {latency_us}us >= {}us\n{}",
                    inner.slow_query_us,
                    t.render()
                ),
                None => eprintln!(
                    "[mmjoin] slow query: {latency_us}us >= {}us (enable tracing for a span tree)",
                    inner.slow_query_us
                ),
            }
        }
        // A dropped ticket just means the caller stopped waiting.
        let _ = job.tx.send(result);
    }
}

/// Resolves a canonical request's relation names to shared handles and
/// their epochs — the query's *pinned epoch vector* — by briefly
/// read-locking the touched catalog shards (see [`ShardedCatalog::pin`]),
/// then releases them: execution must not block catalog writers.
fn resolve_handles(
    inner: &Inner,
    request: &Request,
) -> Result<(Vec<Arc<Relation>>, Vec<u64>), ServiceError> {
    inner.catalog.pin(&request.relation_names())
}

/// Builds the borrowed [`Query`] over the resolved handles (`handles`
/// follows `request.relation_names()` order). Every family — star
/// included — borrows straight from the `Arc`s: no relation payload is
/// cloned on the query path.
fn build_query<'a>(
    spec: &QuerySpec,
    handles: &'a [Arc<Relation>],
) -> Result<Query<'a>, ServiceError> {
    let query = match spec {
        QuerySpec::TwoPath {
            with_counts,
            min_count,
            ..
        } => Query::TwoPath {
            r: &handles[0],
            s: &handles[1],
            with_counts: *with_counts,
            min_count: *min_count,
        },
        QuerySpec::Star { .. } => Query::Star {
            relations: handles.iter().map(|h| &**h).collect(),
        },
        QuerySpec::Similarity { c, ordered, .. } => Query::SimilarityJoin {
            r: &handles[0],
            c: *c,
            ordered: *ordered,
        },
        QuerySpec::Containment { .. } => Query::ContainmentJoin { r: &handles[0] },
        QuerySpec::General { atoms, projection } => {
            let graph = QueryGraph::new(
                atoms
                    .iter()
                    .enumerate()
                    .map(|(i, a)| Atom {
                        relation: &handles[i],
                        x: a.x,
                        y: a.y,
                    })
                    .collect(),
                projection.clone(),
            )?;
            Query::General { graph }
        }
    };
    query.validate()?;
    Ok(query)
}

/// The full query path: canonicalize → resolve → cache probe → plan →
/// execute → cache fill.
fn process(inner: &Inner, request: Request) -> Result<Response, ServiceError> {
    let request = request.canonical();
    let (handles, epochs) = resolve_handles(inner, &request)?;

    // Cache key: canonical fingerprint ⊕ the epochs of every referenced
    // relation (names are already inside the fingerprint). Any update
    // bumps an epoch and the key changes — stale results are unreachable.
    // The key is a hash, so hits additionally verify the stored request
    // and epochs (see ResultCache::get); a collision degrades to a miss.
    let fingerprint = request.fingerprint_assuming_canonical();
    let cache_key = cache_key(fingerprint, &epochs);

    let probe_span = trace::span(Stage::CacheProbe, "result-cache");
    if let Some(hit) = inner
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(cache_key, &request, &epochs)
    {
        return Ok(Response {
            rows: hit.rows,
            counts: hit.counts,
            arity: hit.arity,
            stats: hit.stats,
            selection: None,
            cached: true,
            maintained: hit.maintained,
            truncated: hit.truncated,
            cache_key,
        });
    }

    drop(probe_span);

    let plan_span = trace::span(Stage::Plan, "select-engine");
    let query = build_query(&request.spec, &handles)?;

    let selection: Selection =
        inner
            .planner
            .select(&inner.registry, &query, request.engine.as_deref())?;
    drop(plan_span);

    let exec_span = trace::span_dyn(Stage::Exec, || selection.engine.clone());
    let (sink, stats, truncated) = match request.limit {
        Some(limit) => {
            let mut sink = LimitSink::new(VecSink::new(), limit);
            let stats = inner
                .registry
                .execute(&selection.engine, &query, &mut sink)?;
            let truncated = sink.limit_reached();
            (sink.into_inner(), stats, truncated)
        }
        None => {
            let mut sink = VecSink::new();
            let stats = inner
                .registry
                .execute(&selection.engine, &query, &mut sink)?;
            (sink, stats, false)
        }
    };
    drop(exec_span);

    let result = CachedResult {
        arity: query.output_arity(),
        rows: Arc::new(sink.rows),
        counts: Arc::new(sink.counts),
        stats: stats.clone(),
        truncated,
        support: None,
        maintained: false,
    };
    inner
        .cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(cache_key, request, epochs, result.clone());

    Ok(Response {
        rows: result.rows,
        counts: result.counts,
        arity: result.arity,
        stats,
        selection: Some(selection.reason),
        cached: false,
        maintained: false,
        truncated,
        cache_key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::with_config(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        })
    }

    fn tiny() -> Relation {
        Relation::from_edges([(0, 0), (1, 0), (2, 1), (2, 0)])
    }

    #[test]
    fn cold_then_warm_round_trip() {
        let s = service();
        s.register("R", tiny());
        let cold = s.query(Request::two_path("R", "R")).unwrap();
        assert!(!cold.cached);
        assert!(cold.selection.is_some());
        let warm = s.query(Request::two_path("R", "R")).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.rows, warm.rows);
        assert_eq!(cold.counts, warm.counts);
        assert_eq!(cold.cache_key, warm.cache_key);
        let m = s.metrics();
        assert_eq!(m.queries_served, 2);
        assert_eq!(m.cache_hits, 1);
    }

    #[test]
    fn calibration_installs_measured_model_and_saves_manifest() {
        let path =
            std::env::temp_dir().join(format!("mmjoin-svc-calibration-{}.txt", std::process::id()));
        std::fs::remove_file(&path).ok();
        let s = Service::with_config(ServiceConfig {
            workers: 1,
            calibrate_cost: true,
            calibration_path: Some(path.clone()),
            ..ServiceConfig::default()
        });
        // The planner's config now carries a measured model tagged with
        // the dispatched kernel, and the manifest was persisted.
        let cfg = &s.inner.planner.config;
        assert_eq!(
            cfg.cost_model.kernel(),
            mmjoin_matrix::active_kernel().name()
        );
        assert!(cfg.wcoj_fallback_factor >= 2.0 && cfg.wcoj_fallback_factor <= 200.0);
        let saved = mmjoin_matrix::CostModel::load(&path).unwrap();
        assert_eq!(saved.kernel(), mmjoin_matrix::active_kernel().name());
        drop(s);
        // A second service reuses the manifest (same kernel tag) rather
        // than re-measuring: loaded samples match the saved ones.
        let s2 = Service::with_config(ServiceConfig {
            workers: 1,
            calibrate_cost: true,
            calibration_path: Some(path.clone()),
            ..ServiceConfig::default()
        });
        assert_eq!(
            s2.inner.planner.config.cost_model.samples(),
            saved.samples()
        );
        std::fs::remove_file(&path).ok();
    }

    /// A cached manifest whose cores axis stops short of the configured
    /// thread budget is stale: the service must re-measure (sweeping up
    /// to the budget) instead of trusting single-core-era samples.
    #[test]
    fn calibration_remeasures_when_manifest_lacks_cores() {
        use mmjoin_matrix::cost::{Sample, SystemConstants};
        let path = std::env::temp_dir().join(format!(
            "mmjoin-svc-calibration-stale-{}.txt",
            std::process::id()
        ));
        // Hand-write a single-core manifest under the *active* kernel tag
        // (the pre-sweep format a PR-8 build would have left behind).
        let mut legacy = mmjoin_matrix::CostModel::from_samples(
            vec![Sample {
                p: 128,
                cores: 1,
                seconds: 0.001,
            }],
            SystemConstants::default(),
        );
        // from_samples tags "injected"; rewrite the file with the active
        // kernel so only the cores axis (not the kernel tag) is stale.
        legacy.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap().replace(
            "kernel injected",
            &format!("kernel {}", mmjoin_matrix::active_kernel().name()),
        );
        std::fs::write(&path, text).unwrap();
        legacy = mmjoin_matrix::CostModel::load(&path).unwrap();
        assert_eq!(legacy.max_cores(), 1);

        let s = Service::with_config(ServiceConfig {
            workers: 1,
            thread_budget: 2,
            calibrate_cost: true,
            calibration_path: Some(path.clone()),
            ..ServiceConfig::default()
        });
        let model = &s.inner.planner.config.cost_model;
        assert!(
            model.max_cores() >= 2,
            "budget 2 must force a cores sweep, got max_cores {}",
            model.max_cores()
        );
        assert_ne!(model.samples(), legacy.samples());
        // The re-measured sweep also replaced the stale manifest on disk.
        let saved = mmjoin_matrix::CostModel::load(&path).unwrap();
        assert!(saved.max_cores() >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_relation_is_an_error() {
        let s = service();
        assert!(matches!(
            s.query(Request::two_path("nope", "nope")),
            Err(ServiceError::UnknownRelation(_))
        ));
        assert_eq!(s.metrics().errors, 1);
    }

    #[test]
    fn update_invalidates() {
        let s = service();
        s.register("R", tiny());
        let before = s.query(Request::two_path("R", "R")).unwrap();
        // Adding a hub tuple changes the output.
        s.update(
            "R",
            Relation::from_edges([(0, 0), (1, 0), (2, 1), (2, 0), (3, 1)]),
        )
        .unwrap();
        let after = s.query(Request::two_path("R", "R")).unwrap();
        assert!(!after.cached, "update must force re-execution");
        assert_ne!(before.rows, after.rows);
        assert_ne!(before.cache_key, after.cache_key);
    }

    #[test]
    fn limit_truncates_and_keys_separately() {
        let s = service();
        s.register("R", tiny());
        let full = s.query(Request::two_path("R", "R")).unwrap();
        let limited = s.query(Request::two_path("R", "R").limit(2)).unwrap();
        assert!(!limited.cached, "different fingerprint, no false hit");
        assert!(limited.truncated);
        assert_eq!(limited.rows.len(), 2);
        assert_eq!(&limited.rows[..], &full.rows[..2]);
        // The limited entry is cached under its own key.
        let again = s.query(Request::two_path("R", "R").limit(2)).unwrap();
        assert!(again.cached);
        assert_eq!(again.rows, limited.rows);
    }

    #[test]
    fn star_and_self_families_work() {
        let s = service();
        s.register("R", tiny());
        let star = s.query(Request::star(["R", "R", "R"])).unwrap();
        assert_eq!(star.arity, 3);
        assert!(!star.rows.is_empty());
        let sim = s.query(Request::similarity("R", 1)).unwrap();
        assert_eq!(sim.arity, 2);
        let scj = s.query(Request::containment("R")).unwrap();
        assert_eq!(scj.arity, 2);
    }

    #[test]
    fn pinned_engine_is_respected() {
        let s = service();
        s.register("R", tiny());
        let r = s
            .query(Request::two_path("R", "R").on_engine("MergeJoin(MySQL)"))
            .unwrap();
        assert_eq!(r.stats.engine, "MergeJoin(MySQL)");
        assert_eq!(r.selection, Some(SelectionReason::Pinned));
    }

    #[test]
    fn overload_rejects_gracefully() {
        // 1 worker, queue of 1: the third concurrent submission while the
        // worker sleeps on the first may be rejected; all tickets resolve.
        let s = Service::with_config(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        });
        s.register("R", tiny());
        let tickets: Vec<Ticket> = (0..20)
            .map(|_| s.submit(Request::two_path("R", "R")))
            .collect();
        let mut ok = 0;
        let mut overloaded = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => ok += 1,
                Err(ServiceError::Overloaded { .. }) => overloaded += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(ok + overloaded, 20);
        assert!(ok >= 1);
    }

    #[test]
    fn worker_survives_engine_panic() {
        use mmjoin_api::{Engine, EngineError, EngineRegistry, ExecStats, Query, Sink};

        /// Engine that panics on 2-path queries (stand-in for an engine
        /// bug on adversarial input).
        struct Grenade;
        impl Engine for Grenade {
            fn name(&self) -> &str {
                "Grenade"
            }
            fn supports(&self, query: &Query<'_>) -> bool {
                query.family() == mmjoin_api::QueryFamily::TwoPath
            }
            fn execute(
                &self,
                _query: &Query<'_>,
                _sink: &mut dyn Sink,
            ) -> Result<ExecStats, EngineError> {
                panic!("boom");
            }
        }

        let mut registry = EngineRegistry::new();
        registry.register(Box::new(Grenade));
        let s = Service::new(
            registry,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        s.register("R", tiny());
        // The panicking query fails cleanly…
        match s.query(Request::two_path("R", "R").on_engine("Grenade")) {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        // …and the single worker is still alive to serve the next query
        // (an error response, but a response — not a hang).
        match s.query(Request::two_path("R", "R").on_engine("nope")) {
            Err(ServiceError::UnknownEngine(_)) => {}
            other => panic!("worker died: {other:?}"),
        }
        assert_eq!(s.metrics().errors, 2);
    }

    /// Engine that panics on 2-path queries (stand-in for an engine bug
    /// on adversarial input).
    struct Grenade;
    impl mmjoin_api::Engine for Grenade {
        fn name(&self) -> &str {
            "Grenade"
        }
        fn supports(&self, query: &Query<'_>) -> bool {
            query.family() == QueryFamily::TwoPath
        }
        fn execute(
            &self,
            _query: &Query<'_>,
            _sink: &mut dyn mmjoin_api::Sink,
        ) -> Result<ExecStats, mmjoin_api::EngineError> {
            panic!("boom");
        }
    }

    #[test]
    fn panicking_query_leaves_service_fully_functional() {
        // The full roster plus a grenade: one query panics mid-execution,
        // and afterwards the service must keep serving — warm cache hits,
        // cold executions, updates, and metrics alike.
        let mut registry = crate::roster::registry_with_config(&JoinConfig::default());
        registry.register(Box::new(Grenade));
        let s = Service::new(
            registry,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        s.register("R", tiny());
        s.register("S", Relation::from_edges([(5, 0), (6, 1)]));
        let cached = s.query(Request::two_path("R", "R")).unwrap();

        match s.query(Request::two_path("R", "R").on_engine("Grenade")) {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }

        // Warm hit still served from the pre-panic entry…
        let warm = s.query(Request::two_path("R", "R")).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.rows, cached.rows);
        // …cold queries still execute…
        let cold = s.query(Request::two_path("S", "S")).unwrap();
        assert!(!cold.cached);
        // …updates still maintain, and metrics still answer.
        let report = s.insert("R", [(9, 0)]).unwrap();
        assert_eq!(report.inserted, 1);
        let m = s.metrics();
        assert_eq!(m.errors, 1);
        assert!(m.queries_served >= 3);
    }

    #[test]
    fn poisoned_locks_recover() {
        // Poison the cache mutex the hard way — panic while holding it —
        // then drive every path that acquires it. (Metrics are atomic
        // and cannot poison.)
        let s = service();
        s.register("R", tiny());
        let warm = s.query(Request::two_path("R", "R")).unwrap();
        for _ in 0..2 {
            let inner = Arc::clone(&s.inner);
            let _ = std::thread::spawn(move || {
                let _cache = inner.cache.lock().unwrap();
                panic!("poison the cache");
            })
            .join();
        }
        assert!(s.inner.cache.lock().is_err(), "cache mutex is poisoned");
        let hit = s.query(Request::two_path("R", "R")).unwrap();
        assert!(hit.cached, "poisoned cache still serves its entries");
        assert_eq!(hit.rows, warm.rows);
        s.insert("R", [(7, 1)]).unwrap();
        assert!(s.metrics().queries_served >= 2);
        assert!(s.cache_counters().0 >= 1);
    }

    #[test]
    fn update_churn_is_visible_in_metrics() {
        let s = service();
        s.register("R", tiny());
        s.query(Request::two_path("R", "R")).unwrap();
        s.query(Request::star(["R", "R"])).unwrap();
        // One maintainable entry (recomputed) + one star entry (dropped):
        // both count as cache churn, only the star one as `invalidated`.
        let report = s.insert("R", [(8, 1)]).unwrap();
        assert_eq!(report.recomputed + report.maintained, 1);
        assert_eq!(report.invalidated, 1);
        let m = s.metrics();
        assert_eq!(m.invalidated, 1);
        assert_eq!(m.cache_invalidations, 2, "drained slots are churn");
        assert_eq!(s.cache_counters().3, 2);
        assert!(format!("{m}").contains("cache churn 2"));
    }

    /// Sorted copy of response rows (maintained entries serve canonical
    /// sorted order; engines serve emission order).
    fn sorted_rows(response: &Response) -> Vec<Vec<Value>> {
        let mut rows = (*response.rows).clone();
        rows.sort();
        rows
    }

    #[test]
    fn insert_recomputes_then_maintains() {
        let s = service();
        s.register("R", tiny());
        let cold = s.query(Request::two_path("R", "R")).unwrap();
        assert!(!cold.cached);

        // First delta: the entry has no support counts yet, so it is
        // eagerly recomputed (upgrade), keeping the cache warm.
        let report = s.insert("R", [(3, 1)]).unwrap();
        assert_eq!(report.inserted, 1);
        assert_eq!(report.recomputed, 1);
        assert_eq!(report.maintained, 0);
        let warm = s.query(Request::two_path("R", "R")).unwrap();
        assert!(warm.cached && !warm.maintained);

        // Second delta: support exists and the delta is cheap → in-place
        // maintenance.
        let report = s.insert("R", [(4, 0)]).unwrap();
        assert_eq!(report.maintained, 1);
        let maintained = s.query(Request::two_path("R", "R")).unwrap();
        assert!(maintained.cached && maintained.maintained);
        assert_eq!(maintained.stats.engine, MAINTAINED_ENGINE);

        // Ground truth: a fresh service over the final relation.
        let fresh = service();
        fresh.register(
            "R",
            Relation::from_edges([(0, 0), (1, 0), (2, 1), (2, 0), (3, 1), (4, 0)]),
        );
        let expected = fresh.query(Request::two_path("R", "R")).unwrap();
        assert_eq!(sorted_rows(&maintained), sorted_rows(&expected));
        assert_eq!(s.metrics().maintained, 1);
    }

    #[test]
    fn delete_below_support_maintains_correctly() {
        let s = service();
        s.register("R", Relation::from_edges([(0, 0), (0, 1), (1, 0), (1, 1)]));
        s.query(Request::two_path("R", "R")).unwrap();
        s.insert("R", [(2, 0)]).unwrap(); // builds support (recompute)
        let report = s.delete("R", [(1, 1)]).unwrap();
        assert_eq!(report.deleted, 1);
        assert_eq!(report.maintained, 1);
        let maintained = s.query(Request::two_path("R", "R")).unwrap();
        assert!(maintained.maintained);

        let fresh = service();
        fresh.register("R", Relation::from_edges([(0, 0), (0, 1), (1, 0), (2, 0)]));
        let expected = fresh.query(Request::two_path("R", "R")).unwrap();
        assert_eq!(sorted_rows(&maintained), sorted_rows(&expected));
    }

    #[test]
    fn counting_two_path_maintains_counts() {
        let s = service();
        s.register("R", Relation::from_edges([(0, 0), (0, 1), (1, 0), (1, 1)]));
        s.query(Request::two_path_counts("R", "R", 2)).unwrap();
        s.insert("R", [(2, 0)]).unwrap();
        s.delete("R", [(1, 1)]).unwrap();
        let maintained = s.query(Request::two_path_counts("R", "R", 2)).unwrap();
        assert!(maintained.maintained);

        let fresh = service();
        fresh.register("R", Relation::from_edges([(0, 0), (0, 1), (1, 0), (2, 0)]));
        let expected = fresh.query(Request::two_path_counts("R", "R", 2)).unwrap();
        assert_eq!(sorted_rows(&maintained), sorted_rows(&expected));
        // Counts travel with the rows: compare as (row, count) multisets.
        let pair_counts = |r: &Response| {
            let mut v: Vec<(Vec<Value>, u32)> = r
                .rows
                .iter()
                .cloned()
                .zip(r.counts.iter().copied())
                .collect();
            v.sort();
            v
        };
        assert_eq!(pair_counts(&maintained), pair_counts(&expected));
    }

    #[test]
    fn noop_delta_keeps_cache_and_epoch() {
        let s = service();
        s.register("R", tiny());
        let epoch = s.catalog_epoch();
        s.query(Request::two_path("R", "R")).unwrap();
        // Insert of an existing tuple + delete of an absent one.
        let report = s.insert("R", [(0, 0)]).unwrap();
        assert!(report.is_noop());
        let report = s.delete("R", [(99, 99)]).unwrap();
        assert!(report.is_noop());
        assert_eq!(s.catalog_epoch(), epoch, "no-op batches never bump");
        let warm = s.query(Request::two_path("R", "R")).unwrap();
        assert!(warm.cached, "no-op update must not cold-start the cache");
    }

    #[test]
    fn disabled_maintenance_invalidates() {
        let s = Service::with_config(ServiceConfig {
            workers: 1,
            maintenance: MaintenancePolicy::disabled(),
            ..ServiceConfig::default()
        });
        s.register("R", tiny());
        s.query(Request::two_path("R", "R")).unwrap();
        let report = s.insert("R", [(7, 1)]).unwrap();
        assert_eq!(report.invalidated, 1);
        assert_eq!(report.maintained + report.recomputed, 0);
        let next = s.query(Request::two_path("R", "R")).unwrap();
        assert!(!next.cached, "baseline policy must recompute from scratch");
    }

    #[test]
    fn non_maintainable_entries_invalidate() {
        let s = service();
        s.register("R", tiny());
        // Star, limited, and pinned entries cannot be patched.
        s.query(Request::star(["R", "R"])).unwrap();
        s.query(Request::two_path("R", "R").limit(2)).unwrap();
        s.query(Request::two_path("R", "R").on_engine("WCOJ"))
            .unwrap();
        let report = s.insert("R", [(9, 0)]).unwrap();
        assert_eq!(report.invalidated, 3);
        assert_eq!(report.recomputed + report.maintained, 0);
        assert!(!s.query(Request::star(["R", "R"])).unwrap().cached);
    }

    #[test]
    fn maintained_entry_only_affects_updated_relation() {
        let s = service();
        s.register("R", tiny());
        s.register("S", Relation::from_edges([(5, 0), (6, 1)]));
        s.query(Request::two_path("R", "S")).unwrap();
        s.query(Request::two_path("S", "S")).unwrap();
        // Updating R refreshes R⋈S but leaves S⋈S untouched and warm.
        let report = s.insert("R", [(8, 1)]).unwrap();
        assert_eq!(report.recomputed, 1, "only the R⋈S entry is affected");
        assert!(s.query(Request::two_path("S", "S")).unwrap().cached);

        let rs = s.query(Request::two_path("R", "S")).unwrap();
        assert!(rs.cached);
        let fresh = service();
        fresh.register(
            "R",
            Relation::from_edges([(0, 0), (1, 0), (2, 1), (2, 0), (8, 1)]),
        );
        fresh.register("S", Relation::from_edges([(5, 0), (6, 1)]));
        let expected = fresh.query(Request::two_path("R", "S")).unwrap();
        assert_eq!(sorted_rows(&rs), sorted_rows(&expected));
    }

    #[test]
    fn chain_query_caches_and_invalidates_on_any_relation() {
        use crate::request::AtomSpec;
        let s = service();
        s.register("R", tiny());
        s.register("S", Relation::from_edges([(0, 0), (1, 1), (2, 2)]));
        s.register("T", Relation::from_edges([(0, 3), (1, 3), (2, 4)]));

        let cold = s.query(Request::chain(["R", "S", "T"])).unwrap();
        assert!(!cold.cached);
        assert_eq!(cold.arity, 2);
        assert_eq!(cold.stats.engine, "MMJoin");
        assert!(matches!(
            cold.selection,
            Some(SelectionReason::CostBased { .. })
        ));

        // Isomorphic rewrite (different variable numbering) hits the
        // same cache entry.
        let warm = s
            .query(Request::general(
                vec![
                    AtomSpec {
                        relation: "R".into(),
                        x: 7,
                        y: 3,
                    },
                    AtomSpec {
                        relation: "S".into(),
                        x: 3,
                        y: 11,
                    },
                    AtomSpec {
                        relation: "T".into(),
                        x: 11,
                        y: 5,
                    },
                ],
                vec![7, 5],
            ))
            .unwrap();
        assert!(warm.cached, "isomorphic chain must share the entry");
        assert_eq!(warm.rows, cold.rows);

        // Updating the *middle* relation of the chain invalidates.
        s.update("S", Relation::from_edges([(0, 0), (1, 1)]))
            .unwrap();
        let after = s.query(Request::chain(["R", "S", "T"])).unwrap();
        assert!(
            !after.cached,
            "epoch of every referenced relation keys the entry"
        );
        // Updating an unrelated relation leaves the fresh entry warm.
        s.update("R", tiny()).unwrap(); // identical → no-op, stays warm
        assert!(s.query(Request::chain(["R", "S", "T"])).unwrap().cached);
    }

    #[test]
    fn chain_of_two_matches_two_path_of_transpose() {
        // Q(x, z) :- R(x, y), S(y, z) equals the classic 2-path over
        // (R, Sᵀ) — the chain joins S on its *first* column.
        let s = service();
        let r = tiny();
        let t = Relation::from_edges([(0, 5), (1, 5), (1, 6)]);
        s.register("R", r.clone());
        s.register("S", t.clone());
        s.register("St", t.transposed());
        let chain = s.query(Request::chain(["R", "S"])).unwrap();
        let classic = s.query(Request::two_path("R", "St")).unwrap();
        let sorted = |resp: &Response| {
            let mut rows = (*resp.rows).clone();
            rows.sort();
            rows
        };
        assert_eq!(sorted(&chain), sorted(&classic));
    }

    #[test]
    fn explain_reports_plan_without_executing() {
        let s = service();
        s.register("R", tiny());
        s.register("S", tiny());
        s.register("T", tiny());
        let lines = s.explain(Request::chain(["R", "S", "T"])).unwrap();
        let text = lines.join("\n");
        assert!(text.contains("engine MMJoin"), "{text}");
        assert!(text.contains("cache miss"), "{text}");
        assert!(text.contains("join"), "{text}");
        assert!(text.contains("final: project"), "{text}");
        // Nothing executed or cached.
        assert_eq!(s.cache_len(), 0);
        assert_eq!(s.metrics().queries_served, 0);

        // After a real query the same explain reports a hit.
        s.query(Request::chain(["R", "S", "T"])).unwrap();
        let lines = s.explain(Request::chain(["R", "S", "T"])).unwrap();
        assert!(lines.join("\n").contains("cache hit"));
    }

    #[test]
    fn unsupported_general_shape_is_a_clean_error() {
        use crate::request::AtomSpec;
        let s = service();
        s.register("R", tiny());
        // Q(x, y, z) :- R(x, y), R(y, z): projected interior variable.
        let atoms = vec![
            AtomSpec {
                relation: "R".into(),
                x: 0,
                y: 1,
            },
            AtomSpec {
                relation: "R".into(),
                x: 1,
                y: 2,
            },
        ];
        match s.query(Request::general(atoms, vec![0, 1, 2])) {
            Err(ServiceError::Engine(mmjoin_api::EngineError::Plan(msg))) => {
                assert!(msg.contains("interior"), "{msg}");
            }
            other => panic!("expected plan error, got {other:?}"),
        }
    }

    #[test]
    fn star_query_serves_without_cloning_payloads() {
        // Behavioural proxy for the borrow refactor: results must match
        // the facade's direct star evaluation (and the query path no
        // longer constructs owned Relations — enforced by the type of
        // `Query::Star`).
        let s = service();
        s.register("R", tiny());
        let via_service = s.query(Request::star(["R", "R", "R"])).unwrap();
        let r = tiny();
        let direct =
            mmjoin_core::star_join_project_mm(&[&r, &r, &r], &mmjoin_core::JoinConfig::default());
        assert_eq!(*via_service.rows, direct);
    }

    #[test]
    fn drop_resolves_pending_tickets() {
        let s = service();
        s.register("R", tiny());
        let ticket = {
            let _answered = s.query(Request::two_path("R", "R")).unwrap();
            let t = s.submit(Request::two_path("R", "R"));
            drop(s);
            t
        };
        // Either it ran before shutdown or was failed with ShuttingDown —
        // it must not hang.
        match ticket.wait() {
            Ok(_) | Err(ServiceError::ShuttingDown) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}
