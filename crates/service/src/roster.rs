//! The default engine roster — every engine in the workspace, assembled
//! into one [`EngineRegistry`].
//!
//! This lives in the service crate (the lowest layer that depends on all
//! engine crates); the `mmjoin` facade re-exports both functions, so
//! `mmjoin::default_registry(..)` keeps working unchanged.

use mmjoin_api::EngineRegistry;
use mmjoin_baseline::fulljoin::{HashJoinEngine, SortMergeEngine, SystemXEngine};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_baseline::setintersect::SetIntersectEngine;
use mmjoin_baseline::star::{HashDedupStarEngine, SortDedupStarEngine};
use mmjoin_core::{JoinConfig, MmJoinEngine};
use mmjoin_scj::{ContainmentEngine, ScjAlgorithm};
use mmjoin_ssj::{SimilarityEngine, SsjAlgorithm};
use mmjoin_wcoj::WcojEngine;

/// The full engine roster on `threads` workers (engines without a
/// parallelism knob ignore it; `0` means "all available parallelism" —
/// see [`JoinConfig::effective_threads`]). MMJoin is registered first so
/// it leads every enumeration.
pub fn default_registry(threads: usize) -> EngineRegistry {
    let config = JoinConfig {
        threads,
        ..JoinConfig::default()
    };
    registry_with_config(&config)
}

/// The full engine roster, every configurable engine sharing `config` —
/// the single object that governs parallelism and all other execution
/// knobs.
pub fn registry_with_config(config: &JoinConfig) -> EngineRegistry {
    let mut expand = ExpandDedupEngine::parallel(config.effective_threads());
    if let Some(exec) = &config.executor {
        expand = expand.on_executor(std::sync::Arc::clone(exec));
    }
    let mut registry = EngineRegistry::new();
    registry
        .register(Box::new(MmJoinEngine::new(config.clone())))
        .register(Box::new(expand))
        .register(Box::new(WcojEngine))
        .register(Box::new(HashJoinEngine))
        .register(Box::new(SortMergeEngine))
        .register(Box::new(SystemXEngine))
        .register(Box::new(SetIntersectEngine))
        .register(Box::new(HashDedupStarEngine))
        .register(Box::new(SortDedupStarEngine))
        .register(Box::new(SimilarityEngine::new(
            SsjAlgorithm::SizeAware,
            config.clone(),
        )))
        .register(Box::new(SimilarityEngine::new(
            SsjAlgorithm::SizeAwarePP(mmjoin_ssj::SizeAwarePPOpts::all()),
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::Pretti,
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::LimitPlus { limit: 2 },
            config.clone(),
        )))
        .register(Box::new(ContainmentEngine::new(
            ScjAlgorithm::PieJoin,
            config.clone(),
        )));
    registry
}
