//! Owned query requests over catalog names, canonicalization, and the
//! query fingerprint the result cache is keyed by.
//!
//! [`mmjoin_api::Query`] borrows its relations; a service request instead
//! *names* them, so it can outlive any particular catalog state, travel
//! through the admission queue, and be hashed. Before hashing, a request
//! is [canonicalized](Request::canonical): fields that cannot affect the
//! result (an unused `min_count`, surrounding whitespace in names, a
//! redundant `ordered` flag representation) are normalized, so two
//! semantically equal requests produce the same fingerprint and share one
//! cache entry.

use mmjoin_api::QueryFamily;

/// One atom `R(x, y)` of a general request, phrased over a catalog name
/// and caller-chosen variable ids (canonicalization relabels them, so
/// any numbering works).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomSpec {
    /// Catalog name of the atom's relation.
    pub relation: String,
    /// Variable bound to the relation's first column.
    pub x: u32,
    /// Variable bound to the relation's second column.
    pub y: u32,
}

/// What to compute, phrased over catalog relation names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySpec {
    /// 2-path join-project `π_{x,z}(R(x,y) ⋈ S(z,y))`.
    TwoPath {
        /// Left relation name.
        r: String,
        /// Right relation name.
        s: String,
        /// Report exact witness counts per output pair.
        with_counts: bool,
        /// Minimum witness count (meaningful only with `with_counts`).
        min_count: u32,
    },
    /// Star join-project `Q*_k` over `k ≥ 1` named relations.
    Star {
        /// The star relation names, in output-column order.
        relations: Vec<String>,
    },
    /// Set-similarity self join with overlap threshold `c`.
    Similarity {
        /// The set-family relation name.
        r: String,
        /// Overlap threshold `c ≥ 1`.
        c: u32,
        /// Emit in descending-overlap order with counts.
        ordered: bool,
    },
    /// Set-containment self join.
    Containment {
        /// The set-family relation name.
        r: String,
    },
    /// A general acyclic join-project query over named atoms — the
    /// service-side mirror of [`mmjoin_api::QueryGraph`].
    General {
        /// The atoms, in declaration order.
        atoms: Vec<AtomSpec>,
        /// Projected variables, in output-column order.
        projection: Vec<u32>,
    },
}

/// A full service request: the query spec plus service-level options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to compute.
    pub spec: QuerySpec,
    /// Emit at most this many rows (early-terminated via
    /// [`LimitSink`](mmjoin_api::LimitSink)). Part of the fingerprint: a
    /// truncated result is only reusable at the same limit.
    pub limit: Option<u64>,
    /// Pin a specific engine by registry name, bypassing auto-selection.
    /// Part of the fingerprint (engines agree on rows, but pinning also
    /// pins plan stats and ordering guarantees the caller may rely on).
    pub engine: Option<String>,
}

impl Request {
    /// A 2-path request without counts.
    pub fn two_path(r: impl Into<String>, s: impl Into<String>) -> Self {
        Self::from_spec(QuerySpec::TwoPath {
            r: r.into(),
            s: s.into(),
            with_counts: false,
            min_count: 1,
        })
    }

    /// A counting 2-path request keeping pairs with ≥ `min_count`
    /// witnesses.
    pub fn two_path_counts(r: impl Into<String>, s: impl Into<String>, min_count: u32) -> Self {
        Self::from_spec(QuerySpec::TwoPath {
            r: r.into(),
            s: s.into(),
            with_counts: true,
            min_count,
        })
    }

    /// A star request over the named relations.
    pub fn star<I, S>(relations: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::from_spec(QuerySpec::Star {
            relations: relations.into_iter().map(Into::into).collect(),
        })
    }

    /// A similarity-join request with threshold `c`.
    pub fn similarity(r: impl Into<String>, c: u32) -> Self {
        Self::from_spec(QuerySpec::Similarity {
            r: r.into(),
            c,
            ordered: false,
        })
    }

    /// A containment-join request.
    pub fn containment(r: impl Into<String>) -> Self {
        Self::from_spec(QuerySpec::Containment { r: r.into() })
    }

    /// A k-path chain request `Q(v0, vk) :- R1(v0, v1), R2(v1, v2), …`
    /// over the named relations.
    pub fn chain<I, S>(relations: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let atoms: Vec<AtomSpec> = relations
            .into_iter()
            .enumerate()
            .map(|(i, name)| AtomSpec {
                relation: name.into(),
                x: i as u32,
                y: i as u32 + 1,
            })
            .collect();
        let last = atoms.len() as u32;
        Self::from_spec(QuerySpec::General {
            atoms,
            projection: vec![0, last],
        })
    }

    /// A general acyclic request from explicit atoms and a projection
    /// list (validated against the catalog at execution time).
    pub fn general(atoms: Vec<AtomSpec>, projection: Vec<u32>) -> Self {
        Self::from_spec(QuerySpec::General { atoms, projection })
    }

    /// Wraps a spec with default options.
    pub fn from_spec(spec: QuerySpec) -> Self {
        Self {
            spec,
            limit: None,
            engine: None,
        }
    }

    /// Requests descending-overlap order (similarity only; no-op
    /// otherwise).
    pub fn ordered(mut self) -> Self {
        if let QuerySpec::Similarity { ordered, .. } = &mut self.spec {
            *ordered = true;
        }
        self
    }

    /// Caps the response at `limit` rows.
    pub fn limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Pins the engine by registry name.
    pub fn on_engine(mut self, engine: impl Into<String>) -> Self {
        self.engine = Some(engine.into());
        self
    }

    /// The workload family of this request.
    pub fn family(&self) -> QueryFamily {
        match &self.spec {
            QuerySpec::TwoPath { .. } => QueryFamily::TwoPath,
            QuerySpec::Star { .. } => QueryFamily::Star,
            QuerySpec::Similarity { .. } => QueryFamily::Similarity,
            QuerySpec::Containment { .. } => QueryFamily::Containment,
            QuerySpec::General { .. } => QueryFamily::General,
        }
    }

    /// The catalog names this request reads, in query order (duplicates
    /// preserved — a star query may use one relation several times).
    pub fn relation_names(&self) -> Vec<&str> {
        match &self.spec {
            QuerySpec::TwoPath { r, s, .. } => vec![r, s],
            QuerySpec::Star { relations } => relations.iter().map(String::as_str).collect(),
            QuerySpec::Similarity { r, .. } | QuerySpec::Containment { r } => vec![r],
            QuerySpec::General { atoms, .. } => atoms.iter().map(|a| a.relation.as_str()).collect(),
        }
    }

    /// The canonical form: semantically equal requests map to an
    /// identical value (and therefore an identical [fingerprint]).
    ///
    /// Normalizations applied:
    /// * relation names are trimmed of surrounding whitespace;
    /// * an uncounted 2-path ignores `min_count`, so it is pinned to 1;
    /// * a counting 2-path with `min_count = 0` is equivalent to
    ///   `min_count = 1` (witness counts are ≥ 1 by definition);
    /// * an explicit `limit` of `u64::MAX` is no limit at all;
    /// * general-query variables are relabelled densely by first
    ///   appearance (atom scan order, then projection), so isomorphic
    ///   graphs — the same chain written with different variable names —
    ///   share one fingerprint and one cache entry.
    ///
    /// [fingerprint]: Request::fingerprint
    pub fn canonical(mut self) -> Self {
        match &mut self.spec {
            QuerySpec::TwoPath {
                r,
                s,
                with_counts,
                min_count,
            } => {
                trim_in_place(r);
                trim_in_place(s);
                // Dead when counts are off; 0 means 1 when they're on.
                if !*with_counts || *min_count == 0 {
                    *min_count = 1;
                }
            }
            QuerySpec::Star { relations } => {
                for name in relations.iter_mut() {
                    trim_in_place(name);
                }
            }
            QuerySpec::Similarity { r, .. } => trim_in_place(r),
            QuerySpec::Containment { r } => trim_in_place(r),
            QuerySpec::General { atoms, projection } => {
                let mut relabel: Vec<u32> = Vec::new();
                let mut map = |v: u32| -> u32 {
                    match relabel.iter().position(|&seen| seen == v) {
                        Some(i) => i as u32,
                        None => {
                            relabel.push(v);
                            relabel.len() as u32 - 1
                        }
                    }
                };
                for atom in atoms.iter_mut() {
                    trim_in_place(&mut atom.relation);
                    atom.x = map(atom.x);
                    atom.y = map(atom.y);
                }
                for v in projection.iter_mut() {
                    *v = map(*v);
                }
            }
        }
        if self.limit == Some(u64::MAX) {
            self.limit = None;
        }
        if let Some(engine) = &mut self.engine {
            trim_in_place(engine);
        }
        self
    }

    /// 64-bit FNV-1a fingerprint of the canonical form. Two requests get
    /// the same fingerprint iff their canonical forms are identical; the
    /// cache combines it with the epochs of the referenced relations.
    pub fn fingerprint(&self) -> u64 {
        self.clone().canonical().fingerprint_assuming_canonical()
    }

    /// [`Request::fingerprint`] without the canonicalizing clone — for
    /// callers (the service's per-query hot path) that already hold the
    /// canonical form. On a non-canonical request this hashes the raw
    /// fields and will NOT match the canonical fingerprint.
    pub(crate) fn fingerprint_assuming_canonical(&self) -> u64 {
        let canon = self;
        let mut h = Fnv1a::new();
        match &canon.spec {
            QuerySpec::TwoPath {
                r,
                s,
                with_counts,
                min_count,
            } => {
                h.byte(0x01);
                h.str(r);
                h.str(s);
                h.byte(*with_counts as u8);
                h.u32(*min_count);
            }
            QuerySpec::Star { relations } => {
                h.byte(0x02);
                h.u32(relations.len() as u32);
                for name in relations {
                    h.str(name);
                }
            }
            QuerySpec::Similarity { r, c, ordered } => {
                h.byte(0x03);
                h.str(r);
                h.u32(*c);
                h.byte(*ordered as u8);
            }
            QuerySpec::Containment { r } => {
                h.byte(0x04);
                h.str(r);
            }
            QuerySpec::General { atoms, projection } => {
                h.byte(0x05);
                h.u32(atoms.len() as u32);
                for atom in atoms {
                    h.str(&atom.relation);
                    h.u32(atom.x);
                    h.u32(atom.y);
                }
                h.u32(projection.len() as u32);
                for &v in projection {
                    h.u32(v);
                }
            }
        }
        match canon.limit {
            Some(limit) => {
                h.byte(1);
                h.u64(limit);
            }
            None => h.byte(0),
        }
        match &canon.engine {
            Some(engine) => {
                h.byte(1);
                h.str(engine);
            }
            None => h.byte(0),
        }
        h.finish()
    }
}

fn trim_in_place(s: &mut String) {
    let trimmed = s.trim();
    if trimmed.len() != s.len() {
        *s = trimmed.to_string();
    }
}

/// Minimal FNV-1a 64-bit hasher (no external deps; stable across runs and
/// platforms, unlike `DefaultHasher`).
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    pub(crate) fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Hashes a string length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncounted_min_count_is_irrelevant() {
        let mut a = Request::two_path("R", "S");
        if let QuerySpec::TwoPath { min_count, .. } = &mut a.spec {
            *min_count = 42; // semantically dead field
        }
        let b = Request::two_path("R", "S");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn name_whitespace_is_irrelevant() {
        let a = Request::two_path("  R ", "S\t");
        let b = Request::two_path("R", "S");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn distinct_queries_hash_differently() {
        let fingerprints = [
            Request::two_path("R", "S").fingerprint(),
            Request::two_path("S", "R").fingerprint(),
            Request::two_path_counts("R", "S", 1).fingerprint(),
            Request::two_path_counts("R", "S", 2).fingerprint(),
            Request::star(["R", "S"]).fingerprint(),
            Request::similarity("R", 2).fingerprint(),
            Request::similarity("R", 2).ordered().fingerprint(),
            Request::containment("R").fingerprint(),
            Request::two_path("R", "S").limit(5).fingerprint(),
            Request::two_path("R", "S").on_engine("WCOJ").fingerprint(),
        ];
        for (i, a) in fingerprints.iter().enumerate() {
            for (j, b) in fingerprints.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "requests {i} and {j} collide");
                }
            }
        }
    }

    #[test]
    fn isomorphic_general_queries_share_fingerprints() {
        // The same 3-chain written with three different variable
        // numberings collapses to one canonical form.
        let a = Request::chain(["R", "S", "T"]);
        let b = Request::general(
            vec![
                AtomSpec {
                    relation: "R".into(),
                    x: 10,
                    y: 20,
                },
                AtomSpec {
                    relation: "S".into(),
                    x: 20,
                    y: 30,
                },
                AtomSpec {
                    relation: "T".into(),
                    x: 30,
                    y: 40,
                },
            ],
            vec![10, 40],
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.clone().canonical(), b.clone().canonical());
        // A genuinely different query (projecting the other endpoint
        // pair order) does not collide.
        let c = Request::general(
            vec![
                AtomSpec {
                    relation: "R".into(),
                    x: 10,
                    y: 20,
                },
                AtomSpec {
                    relation: "S".into(),
                    x: 20,
                    y: 30,
                },
                AtomSpec {
                    relation: "T".into(),
                    x: 30,
                    y: 40,
                },
            ],
            vec![40, 10],
        );
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn chain_request_names_in_order() {
        let r = Request::chain(["A", "B", "A"]);
        assert_eq!(r.relation_names(), vec!["A", "B", "A"]);
        assert_eq!(r.family(), QueryFamily::General);
    }

    #[test]
    fn max_limit_is_no_limit() {
        let a = Request::two_path("R", "S").limit(u64::MAX);
        let b = Request::two_path("R", "S");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn relation_names_in_query_order() {
        assert_eq!(
            Request::star(["A", "B", "A"]).relation_names(),
            vec!["A", "B", "A"]
        );
        assert_eq!(Request::containment("R").relation_names(), vec!["R"]);
    }
}
