//! Incremental maintenance of cached join-project results.
//!
//! A relation update used to be a cache-killer: the epoch bump made every
//! cached result over that relation unreachable, so an update-heavy
//! workload degenerated to recompute-from-scratch. This module instead
//! *upgrades* affected cache entries in place using the delta-join
//! identity
//!
//! ```text
//! Δ(R ⋈ S) = ΔR ⋈ S  ∪  R ⋈ ΔS  ∪  ΔR ⋈ ΔS      (signed)
//! ```
//!
//! where `ΔR`/`ΔS` are the normalized signed deltas of an update batch.
//! Because `|Δ|` is small, the delta joins live in the light/combinatorial
//! regime of the paper's cost model and cost `Σ_{(x,y)∈Δ} deg(y)` — far
//! below the `full_join` mass a recompute would pay.
//!
//! Deletion is the hard part: removing the last witness `y` of an output
//! pair `(x, z)` must remove the pair. [`DeltaResult`] therefore keeps a
//! *per-tuple support count* (the number of witnesses) for every output
//! row; signed delta contributions are added to the supports and rows
//! whose support reaches zero disappear.
//!
//! Per affected entry the service picks one of three actions from the
//! paper's output estimate (see [`decide`]):
//!
//! * **maintain** — patch the support counts with the delta joins; chosen
//!   when the entry already carries supports and the delta work is below
//!   the recompute estimate;
//! * **recompute** — eagerly re-execute (as a counting join) to build the
//!   support structure, keeping the cache warm; chosen on first touch or
//!   when the delta is too large, as long as the estimate fits the
//!   recompute budget;
//! * **invalidate** — drop the entry and let the next query pay; the
//!   fallback for non-maintainable shapes (star/similarity/containment,
//!   limits, pinned engines) and over-budget recomputes.

use mmjoin_api::{DeltaSink, Sink};
use mmjoin_storage::{NormalizedDelta, Relation, Value};
use std::collections::BTreeMap;

/// Tuning knobs for the maintenance path.
#[derive(Debug, Clone)]
pub struct MaintenancePolicy {
    /// Master switch. Disabled, every update falls back to invalidation —
    /// the pre-maintenance behaviour (and the baseline the `updates`
    /// experiment compares against).
    pub enabled: bool,
    /// Upper bound on the estimated `full_join` mass of an eager
    /// recompute. Entries whose refresh would exceed it are invalidated
    /// instead, so a huge join can never stall the update path.
    pub recompute_budget: u64,
}

impl Default for MaintenancePolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            recompute_budget: 50_000_000,
        }
    }
}

impl MaintenancePolicy {
    /// The invalidate-everything baseline (maintenance off).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// What happened to the cached entries affected by one update batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// The relation's epoch after the update (unchanged for no-op
    /// batches).
    pub epoch: u64,
    /// Effective tuples inserted (after normalization).
    pub inserted: usize,
    /// Effective tuples deleted (after normalization).
    pub deleted: usize,
    /// Cache entries patched in place via delta joins.
    pub maintained: usize,
    /// Cache entries eagerly re-executed (support structure built).
    pub recomputed: usize,
    /// Cache entries dropped.
    pub invalidated: usize,
}

impl MaintenanceReport {
    /// True when the batch changed nothing (no epoch bump happened).
    pub fn is_noop(&self) -> bool {
        self.inserted == 0 && self.deleted == 0
    }
}

/// A support-counted two-path result: every output pair `(x, z)` mapped to
/// its number of join witnesses `|{y : R(x,y) ∧ S(z,y)}|`.
///
/// The support counts are what make deletion maintainable — a pair
/// survives exactly while its support is positive — and the sorted map
/// gives maintained results a canonical row order independent of which
/// engine originally produced them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaResult {
    support: BTreeMap<(Value, Value), u32>,
}

impl DeltaResult {
    /// Builds from the signed accumulation of a full counting execution
    /// (all deltas must be positive — they are absolute witness counts).
    pub fn from_signed(deltas: BTreeMap<Vec<Value>, i64>) -> Self {
        let support = deltas
            .into_iter()
            .filter(|&(_, c)| c > 0)
            .map(|(row, c)| {
                debug_assert_eq!(row.len(), 2, "DeltaResult is binary");
                ((row[0], row[1]), c as u32)
            })
            .collect();
        Self { support }
    }

    /// Applies signed support adjustments. Returns `false` if any support
    /// would go negative — a corrupt entry the caller must discard (it
    /// cannot happen for deltas normalized against the true base, but the
    /// cache must degrade to a recompute rather than serve wrong rows).
    #[must_use]
    pub fn apply(&mut self, deltas: BTreeMap<Vec<Value>, i64>) -> bool {
        for (row, d) in deltas {
            debug_assert_eq!(row.len(), 2, "DeltaResult is binary");
            let key = (row[0], row[1]);
            let current = self.support.get(&key).copied().unwrap_or(0) as i64;
            let next = current + d;
            if next < 0 {
                return false;
            }
            if next == 0 {
                self.support.remove(&key);
            } else {
                self.support.insert(key, next as u32);
            }
        }
        true
    }

    /// Materialises the rows with support `≥ min_count`, in sorted order.
    /// `with_counts` controls whether the per-row counts column carries
    /// the supports or the uncounted-family placeholder zeros.
    pub fn rows(&self, min_count: u32, with_counts: bool) -> (Vec<Vec<Value>>, Vec<u32>) {
        let min = min_count.max(1);
        let mut rows = Vec::new();
        let mut counts = Vec::new();
        for (&(x, z), &c) in &self.support {
            if c >= min {
                rows.push(vec![x, z]);
                counts.push(if with_counts { c } else { 0 });
            }
        }
        (rows, counts)
    }

    /// Support count of one pair (0 when absent) — test/introspection
    /// helper.
    pub fn support_of(&self, x: Value, z: Value) -> u32 {
        self.support.get(&(x, z)).copied().unwrap_or(0)
    }

    /// Distinct pairs with positive support.
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// True when no pair has positive support.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty()
    }
}

/// The three-way maintenance choice for one affected cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Patch the entry's support counts with the delta joins.
    Maintain,
    /// Eagerly re-execute the (counting) query and refresh the entry.
    Recompute,
    /// Drop the entry; the next query recomputes lazily.
    Invalidate,
}

/// The decision rule, driven by the paper's output estimate: maintain when
/// the delta work undercuts the recompute estimate (and supports exist to
/// patch), recompute when refreshing is affordable, invalidate otherwise.
pub fn decide(
    has_support: bool,
    delta_cost: u64,
    recompute_cost: u64,
    policy: &MaintenancePolicy,
) -> Decision {
    if !policy.enabled {
        return Decision::Invalidate;
    }
    if has_support && delta_cost <= recompute_cost {
        Decision::Maintain
    } else if recompute_cost <= policy.recompute_budget {
        Decision::Recompute
    } else {
        Decision::Invalidate
    }
}

/// Exact work of the delta joins for a two-path entry: every delta tuple
/// scans its join value's inverted list on the *old* other side, plus the
/// (tiny) `ΔR ⋈ ΔS` cross term when the update hits both sides of a self
/// join.
pub fn delta_cost(
    delta: &NormalizedDelta,
    r_old: &Relation,
    s_old: &Relation,
    delta_on_r: bool,
    delta_on_s: bool,
) -> u64 {
    let side = |other: &Relation| -> u64 {
        delta
            .signed()
            .map(|(_, y, _)| {
                if (y as usize) < other.y_domain() {
                    other.y_degree(y) as u64
                } else {
                    0
                }
            })
            .sum()
    };
    let mut cost = 0u64;
    if delta_on_r {
        cost += side(s_old);
    }
    if delta_on_s {
        cost += side(r_old);
    }
    if delta_on_r && delta_on_s {
        // Cross term: Σ_y |Δ_y|² ≤ |Δ|², but computed exactly.
        let mut per_y: BTreeMap<Value, u64> = BTreeMap::new();
        for (_, y, _) in delta.signed() {
            *per_y.entry(y).or_insert(0) += 1;
        }
        cost += per_y.values().map(|&c| c * c).sum::<u64>();
    }
    cost.max(delta.len() as u64)
}

/// Streams the signed delta-join terms of `Δ(π_{x,z}(R ⋈ S))` into
/// `sink`. `delta` is the update of the relation that changed;
/// `delta_on_r`/`delta_on_s` say which side(s) of the entry's query that
/// relation occupies (both, for a self join). `r_old`/`s_old` are the
/// relations *before* the update — the identity is expressed over the old
/// state plus the cross term.
pub fn accumulate_two_path_delta(
    sink: &mut DeltaSink,
    delta: &NormalizedDelta,
    r_old: &Relation,
    s_old: &Relation,
    delta_on_r: bool,
    delta_on_s: bool,
) {
    if delta_on_r {
        // π(ΔR ⋈ S): each delta tuple (x, y) pairs with S's inverted list
        // of y.
        for (x, y, sign) in delta.signed() {
            if (y as usize) >= s_old.y_domain() {
                continue;
            }
            sink.set_sign(sign);
            for &z in s_old.xs_of(y) {
                sink.row(&[x, z]);
            }
        }
    }
    if delta_on_s {
        // π(R ⋈ ΔS), symmetric.
        for (z, y, sign) in delta.signed() {
            if (y as usize) >= r_old.y_domain() {
                continue;
            }
            sink.set_sign(sign);
            for &x in r_old.xs_of(y) {
                sink.row(&[x, z]);
            }
        }
    }
    if delta_on_r && delta_on_s {
        // π(ΔR ⋈ ΔS): only reachable for self joins, where the one delta
        // plays both roles; group one side by join value.
        let mut by_y: BTreeMap<Value, Vec<(Value, i64)>> = BTreeMap::new();
        for (z, y, sign) in delta.signed() {
            by_y.entry(y).or_default().push((z, sign));
        }
        for (x, y, sign_r) in delta.signed() {
            if let Some(partners) = by_y.get(&y) {
                for &(z, sign_s) in partners {
                    sink.set_sign(sign_r * sign_s);
                    sink.row(&[x, z]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_storage::{Edge, RelationDelta};

    fn rel(edges: &[Edge]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    /// Reference: counting self-two-path via nested loops.
    fn brute_force(r: &Relation, s: &Relation) -> BTreeMap<(Value, Value), u32> {
        let mut out = BTreeMap::new();
        for &(x, y1) in r.edges() {
            for &(z, y2) in s.edges() {
                if y1 == y2 {
                    *out.entry((x, z)).or_insert(0) += 1;
                }
            }
        }
        out
    }

    fn maintained_equals_recompute(base: &[Edge], delta: &RelationDelta) {
        let old = rel(base);
        let norm = delta.normalize(&old);
        let new = old.apply_normalized(&norm);

        let mut result = DeltaResult {
            support: brute_force(&old, &old),
        };
        let mut sink = DeltaSink::new();
        accumulate_two_path_delta(&mut sink, &norm, &old, &old, true, true);
        assert!(result.apply(sink.into_deltas()), "support went negative");

        let expected = brute_force(&new, &new);
        assert_eq!(result.support, expected, "delta {delta:?} over {base:?}");
    }

    #[test]
    fn insert_grows_self_join() {
        maintained_equals_recompute(&[(0, 0)], RelationDelta::new().insert(1, 0));
    }

    #[test]
    fn delete_below_support_removes_pair() {
        // (0,1) and (1,0) are supported only by witness y=0; deleting
        // (1,0) must erase them and decrement (1,1) to zero via the cross
        // term.
        maintained_equals_recompute(&[(0, 0), (1, 0)], RelationDelta::new().delete(1, 0));
    }

    #[test]
    fn surviving_support_keeps_pair() {
        // (0,1) has two witnesses (y=0, y=1); deleting one keeps the pair
        // at support 1.
        let base = &[(0, 0), (0, 1), (1, 0), (1, 1)];
        maintained_equals_recompute(base, RelationDelta::new().delete(1, 1));
        let old = rel(base);
        let norm = RelationDelta::new().delete(1, 1).normalize(&old);
        let mut result = DeltaResult {
            support: brute_force(&old, &old),
        };
        let mut sink = DeltaSink::new();
        accumulate_two_path_delta(&mut sink, &norm, &old, &old, true, true);
        assert!(result.apply(sink.into_deltas()));
        assert_eq!(result.support_of(0, 1), 1);
    }

    #[test]
    fn mixed_batch_matches() {
        maintained_equals_recompute(
            &[(0, 0), (1, 0), (2, 1), (2, 0), (3, 2)],
            RelationDelta::new()
                .insert(4, 1)
                .insert(0, 2)
                .delete(2, 0)
                .delete(3, 2),
        );
    }

    #[test]
    fn one_sided_delta_matches() {
        // R ⋈ S with only R updated: delta_on_s = false.
        let r_old = rel(&[(0, 0), (1, 1)]);
        let s = rel(&[(5, 0), (6, 0), (7, 1)]);
        let mut delta = RelationDelta::new();
        delta.insert(2, 0).delete(1, 1);
        let norm = delta.normalize(&r_old);
        let r_new = r_old.apply_normalized(&norm);

        let mut result = DeltaResult {
            support: brute_force(&r_old, &s),
        };
        let mut sink = DeltaSink::new();
        accumulate_two_path_delta(&mut sink, &norm, &r_old, &s, true, false);
        assert!(result.apply(sink.into_deltas()));
        assert_eq!(result.support, brute_force(&r_new, &s));
    }

    #[test]
    fn rows_filter_by_min_count_and_zero_counts() {
        let mut support = BTreeMap::new();
        support.insert((0, 1), 3);
        support.insert((2, 2), 1);
        let result = DeltaResult { support };
        let (rows, counts) = result.rows(2, true);
        assert_eq!(rows, vec![vec![0, 1]]);
        assert_eq!(counts, vec![3]);
        let (rows, counts) = result.rows(1, false);
        assert_eq!(rows.len(), 2);
        assert_eq!(counts, vec![0, 0], "uncounted families serve zeros");
    }

    #[test]
    fn apply_rejects_negative_support() {
        let mut result = DeltaResult::default();
        let mut deltas = BTreeMap::new();
        deltas.insert(vec![0, 0], -1);
        assert!(!result.apply(deltas), "negative support must be rejected");
    }

    #[test]
    fn decision_rule() {
        let policy = MaintenancePolicy {
            enabled: true,
            recompute_budget: 1000,
        };
        assert_eq!(decide(true, 10, 100, &policy), Decision::Maintain);
        assert_eq!(decide(false, 10, 100, &policy), Decision::Recompute);
        assert_eq!(decide(true, 500, 100, &policy), Decision::Recompute);
        assert_eq!(decide(true, 5000, 2000, &policy), Decision::Invalidate);
        assert_eq!(
            decide(true, 10, 100, &MaintenancePolicy::disabled()),
            Decision::Invalidate
        );
    }

    #[test]
    fn delta_cost_counts_partner_degrees() {
        let r = rel(&[(0, 0), (1, 0), (2, 1)]); // deg(y=0)=2, deg(y=1)=1
        let delta = RelationDelta::new().insert(9, 0).normalize(&r);
        // One delta tuple on y=0 against both sides of a self join:
        // 2 (ΔR⋈S) + 2 (R⋈ΔS) + 1 (cross) = 5.
        assert_eq!(delta_cost(&delta, &r, &r, true, true), 5);
        assert_eq!(delta_cost(&delta, &r, &r, true, false), 2);
    }
}
