//! Service-level errors.

use mmjoin_api::{EngineError, QueryError, QueryFamily};
use std::fmt;

/// Everything that can go wrong between a [`Request`](crate::Request)
/// arriving and its rows coming back.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request names a relation the catalog does not hold.
    UnknownRelation(String),
    /// The request pins an engine that is not registered.
    UnknownEngine(String),
    /// No registered engine supports this query family.
    NoEngineFor(QueryFamily),
    /// The resolved query failed validation.
    InvalidQuery(QueryError),
    /// The selected engine failed.
    Engine(EngineError),
    /// The admission queue is full — back off and retry.
    Overloaded {
        /// Queue capacity at the time of rejection.
        capacity: usize,
    },
    /// The service is shutting down; the query was not executed.
    ShuttingDown,
    /// A worker panicked while executing the query (engine bug); the
    /// worker survived and the service keeps serving.
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownRelation(name) => {
                write!(f, "no relation registered as `{name}`")
            }
            ServiceError::UnknownEngine(name) => {
                write!(f, "no engine registered as `{name}`")
            }
            ServiceError::NoEngineFor(family) => {
                write!(f, "no registered engine supports {family} queries")
            }
            ServiceError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} queued); retry later")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> Self {
        ServiceError::InvalidQuery(e)
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::InvalidQuery(q) => ServiceError::InvalidQuery(q),
            EngineError::UnknownEngine(name) => ServiceError::UnknownEngine(name),
            other => ServiceError::Engine(other),
        }
    }
}
