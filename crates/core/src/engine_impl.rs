//! [`Engine`] implementation for [`MmJoinEngine`] — the one engine that
//! serves all four workload families through the unified front door.
//!
//! * **2-path** (with or without counts) — Algorithm 1 / Algorithm 3.
//! * **Star** — the §3.2 grouped-variable generalisation.
//! * **Similarity join** — the counting 2-path thresholded at `c` (§4).
//! * **Containment join** — counting 2-path filtered to `count = |set(a)|`.
//!
//! The returned [`ExecStats`] carry the optimizer's decision: plan kind
//! (WCOJ fallback vs matrix-partitioned), the chosen `(Δ1, Δ2)`, the heavy
//! partition dimensions and the light tuple masses, plus the output
//! estimate and predicted costs when the optimizer ran.

use crate::compose::execute_general;
use crate::plan::plan_general;
use crate::star::star_join_project_mm_with_stats;
use crate::two_path::{two_path_join_project_with_stats, two_path_with_counts_stats};
use crate::MmJoinEngine;
use mmjoin_api::{
    emit_counted_pairs, emit_pairs, emit_tuples, Engine, EngineError, ExecStats, Query, Sink,
};

impl Engine for MmJoinEngine {
    fn name(&self) -> &str {
        "MMJoin"
    }

    fn supports(&self, query: &Query<'_>) -> bool {
        match query {
            // General queries are supported iff the decomposing planner
            // can lower them onto binary intermediates.
            Query::General { graph } => plan_general(graph).is_ok(),
            // Every classic family, with or without counts.
            _ => true,
        }
    }

    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError> {
        query.validate()?;
        let config = &self.config;
        match *query {
            Query::TwoPath {
                r,
                s,
                with_counts: false,
                ..
            } => {
                let (pairs, plan) = two_path_join_project_with_stats(r, s, config);
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows: emit_pairs(sink, &pairs),
                    plan,
                })
            }
            Query::TwoPath {
                r,
                s,
                with_counts: true,
                min_count,
            } => {
                let (triples, plan) = two_path_with_counts_stats(r, s, min_count, config);
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows: emit_counted_pairs(sink, &triples, true),
                    plan,
                })
            }
            Query::Star { ref relations } => {
                let (tuples, plan) = star_join_project_mm_with_stats(relations, config);
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows: emit_tuples(sink, relations.len(), &tuples),
                    plan,
                })
            }
            Query::General { ref graph } => {
                let (rows, plan) = execute_general(graph, config, sink)?;
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows,
                    plan: Some(plan),
                })
            }
            Query::SimilarityJoin { r, c, ordered } => {
                let (triples, plan) = two_path_with_counts_stats(r, r, c, config);
                let mut pairs: Vec<(u32, u32, u32)> =
                    triples.into_iter().filter(|&(a, b, _)| a < b).collect();
                if ordered {
                    pairs.sort_unstable_by(|p, q| {
                        q.2.cmp(&p.2).then_with(|| (p.0, p.1).cmp(&(q.0, q.1)))
                    });
                }
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows: emit_counted_pairs(sink, &pairs, ordered),
                    plan,
                })
            }
            Query::ContainmentJoin { r } => {
                let (triples, plan) = two_path_with_counts_stats(r, r, 1, config);
                let pairs: Vec<(u32, u32)> = triples
                    .into_iter()
                    .filter(|&(a, b, count)| a != b && count as usize == r.x_degree(a))
                    .map(|(a, b, _)| (a, b))
                    .collect();
                Ok(ExecStats {
                    engine: Engine::name(self).to_string(),
                    rows: emit_pairs(sink, &pairs),
                    plan,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JoinConfig;
    use crate::star::star_join_project_mm;
    use crate::two_path::{two_path_join_project, two_path_with_counts};
    use mmjoin_api::{CountSink, PairSink, PlanKind, VecSink};
    use mmjoin_storage::{Relation, Value};

    fn clique(sets: u32, elems: u32) -> Relation {
        let mut edges = Vec::new();
        for x in 0..sets {
            for y in 0..elems {
                edges.push((x, y));
            }
        }
        Relation::from_edges(edges)
    }

    #[test]
    fn two_path_execute_matches_free_function() {
        let r = clique(12, 5);
        let engine = MmJoinEngine::serial();
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = PairSink::new();
        let stats = engine.execute(&q, &mut sink).unwrap();
        let expected = two_path_join_project(&r, &r, &JoinConfig::default());
        assert_eq!(sink.pairs, expected);
        assert_eq!(stats.rows, expected.len() as u64);
        assert_eq!(stats.engine, "MMJoin");
    }

    #[test]
    fn exec_stats_report_thresholds_for_partitioned_plans() {
        let r = clique(60, 4); // dense: optimizer partitions
        let engine = MmJoinEngine::serial();
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = CountSink::new();
        let stats = engine.execute(&q, &mut sink).unwrap();
        let plan = stats.plan.expect("plan reported");
        assert_eq!(plan.kind, PlanKind::MatrixPartitioned);
        assert!(plan.delta1.is_some() && plan.delta2.is_some());
        assert!(plan.heavy_dims.is_some());
        assert!(plan.estimated_out.is_some());
    }

    #[test]
    fn exec_stats_report_wcoj_for_sparse_instances() {
        let edges: Vec<(Value, Value)> = (0..100).map(|i| (i, i)).collect();
        let r = Relation::from_edges(edges);
        let engine = MmJoinEngine::serial();
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = CountSink::new();
        let stats = engine.execute(&q, &mut sink).unwrap();
        assert_eq!(stats.plan.unwrap().kind, PlanKind::Wcoj);
        assert_eq!(stats.rows, 100);
    }

    #[test]
    fn delta_override_is_reported_verbatim() {
        let r = clique(10, 4);
        let engine = MmJoinEngine::new(JoinConfig::with_deltas(3, 5));
        let q = Query::two_path(&r, &r).build().unwrap();
        let mut sink = CountSink::new();
        let plan = engine.execute(&q, &mut sink).unwrap().plan.unwrap();
        assert_eq!((plan.delta1, plan.delta2), (Some(3), Some(5)));
        assert!(plan.light_tuples.is_some());
    }

    #[test]
    fn counting_query_streams_counts() {
        let r = clique(6, 3);
        let engine = MmJoinEngine::serial();
        let q = Query::two_path(&r, &r).min_count(2).build().unwrap();
        let mut sink = VecSink::new();
        engine.execute(&q, &mut sink).unwrap();
        let expected = two_path_with_counts(&r, &r, 2, &JoinConfig::default());
        assert_eq!(sink.counted_pairs(), expected);
    }

    #[test]
    fn star_execute_matches_free_function() {
        let rels = vec![clique(8, 4), clique(7, 4), clique(6, 4)];
        let engine = MmJoinEngine::serial();
        let q = Query::star(&rels).build().unwrap();
        let mut sink = VecSink::new();
        let stats = engine.execute(&q, &mut sink).unwrap();
        let expected = star_join_project_mm(&rels, &JoinConfig::default());
        assert_eq!(sink.rows, expected);
        assert_eq!(sink.arity, 3);
        assert!(stats.plan.is_some());
    }

    #[test]
    fn similarity_and_containment_supported() {
        let r = Relation::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 9)]);
        let engine = MmJoinEngine::serial();

        let q = Query::similarity(&r, 2).build().unwrap();
        let mut sink = PairSink::new();
        engine.execute(&q, &mut sink).unwrap();
        assert_eq!(sink.pairs, vec![(0, 1)]);

        let q = Query::similarity(&r, 1).ordered().build().unwrap();
        let mut sink = VecSink::new();
        engine.execute(&q, &mut sink).unwrap();
        let overlaps: Vec<u32> = sink.counts.clone();
        assert!(overlaps.windows(2).all(|w| w[0] >= w[1]), "{overlaps:?}");

        let sub = Relation::from_edges([(0, 5), (1, 5), (1, 6)]);
        let q = Query::containment(&sub).build().unwrap();
        let mut sink = PairSink::new();
        engine.execute(&q, &mut sink).unwrap();
        assert_eq!(sink.pairs, vec![(0, 1)]);
    }

    #[test]
    fn invalid_queries_rejected_at_execute() {
        let engine = MmJoinEngine::serial();
        let rels: Vec<Relation> = Vec::new();
        let q = Query::Star {
            relations: rels.iter().collect(),
        };
        let mut sink = CountSink::new();
        assert!(matches!(
            engine.execute(&q, &mut sink),
            Err(EngineError::InvalidQuery(_))
        ));
    }
}
