//! The decomposing planner: lowers a [`QueryGraph`] into a DAG of
//! 2-path join-project steps, semijoin reductions, and (optionally) one
//! final star step — the paper's general framework for acyclic
//! join-project queries built from the two specials.
//!
//! # Decomposition rules
//!
//! The query graph is a tree over variables. The planner repeatedly
//! shrinks it:
//!
//! 1. **Pendant absorption** (semijoin): a non-projected leaf variable
//!    `v` with single atom `A(v, u)` only constrains `u` to values that
//!    occur in `A`; one neighbouring atom at `u` is semijoin-filtered
//!    and `A` dropped.
//! 2. **Interior contraction** (2-path step): a non-projected variable
//!    `j` of degree 2 with atoms `A(u, j)`, `B(j, w)` is eliminated by
//!    materialising `T(u, w) = π_{u,w}(A ⋈ B)` with the 2-path
//!    primitive. When several variables are contractible, the one whose
//!    step has the smallest §5 output-size estimate goes first.
//! 3. **Final stage**: the residue is either a single node — streamed
//!    out as a projection — or a star around one non-projected centre
//!    whose legs are exactly the projected variables, evaluated by the
//!    star primitive.
//!
//! Because intermediates are binary [`Relation`]s, queries that would
//! need a wider intermediate (a projected interior variable, or two
//! non-adjacent high-degree centres) are rejected with
//! [`PlanError::Unsupported`]. Chains, stars, snowflakes (stars of
//! chains) and any tree whose projected variables are leaves with at
//! most one branching centre all plan.

use crate::estimate::estimate_from_parts;
use mmjoin_api::ir::{QueryGraph, Var};
use mmjoin_api::QueryError;
use mmjoin_storage::Relation;
use std::collections::BTreeMap;
use std::fmt;

/// Index into [`GeneralPlan::nodes`].
pub type NodeId = usize;

/// Where a plan node's relation comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSource {
    /// The `i`-th atom of the query graph (a base relation).
    Atom(usize),
    /// The output of the `i`-th plan step.
    Step(usize),
}

/// Propagated size statistics for a plan node, used to order
/// eliminations. Exact for atoms, §5-estimated for step outputs.
#[derive(Debug, Clone, Copy)]
pub struct NodeEst {
    /// (Estimated) tuple count.
    pub tuples: u64,
    /// (Estimated) distinct values in the first column.
    pub distinct_a: u64,
    /// (Estimated) distinct values in the second column.
    pub distinct_b: u64,
    /// Whether the numbers are exact (true only for base atoms).
    pub exact: bool,
}

/// One binary intermediate of the composed plan: a relation over the
/// variable pair `(a, b)` — `a` bound to the relation's first column.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Variable bound to the relation's first column.
    pub a: Var,
    /// Variable bound to the relation's second column.
    pub b: Var,
    /// Where the relation comes from.
    pub source: NodeSource,
    /// Size statistics driving the elimination order.
    pub est: NodeEst,
}

impl PlanNode {
    /// The node's variable other than `v`.
    pub fn other_var(&self, v: Var) -> Var {
        if self.a == v {
            self.b
        } else {
            self.a
        }
    }

    /// Distinct-count estimate for the column bound to `v`.
    fn distinct_of(&self, v: Var) -> u64 {
        if self.a == v {
            self.est.distinct_a
        } else {
            self.est.distinct_b
        }
    }
}

/// The §5 size estimate attached to a contraction step.
#[derive(Debug, Clone, Copy)]
pub struct StepEstimate {
    /// (Estimated) full pre-projection join size of the step.
    pub full_join: u64,
    /// Estimated projected output rows.
    pub rows: u64,
    /// Whether the inputs were exact (both base atoms).
    pub exact: bool,
}

/// One materialising step of the composed plan.
#[derive(Debug, Clone)]
pub enum PlanStep {
    /// `result := target ⋉_on filter` — keep only `target` tuples whose
    /// `on` value occurs in `filter` (pendant absorption).
    Semijoin {
        /// Node being filtered.
        target: NodeId,
        /// Node supplying the value set (dropped afterwards).
        filter: NodeId,
        /// The shared variable.
        on: Var,
        /// The filtered result node.
        result: NodeId,
    },
    /// `result(u, w) := π_{u,w}(left ⋈_on right)` via the 2-path
    /// primitive (interior contraction).
    Join {
        /// Left input (its non-`on` variable becomes the result's `a`).
        left: NodeId,
        /// Right input (its non-`on` variable becomes the result's `b`).
        right: NodeId,
        /// The eliminated variable.
        on: Var,
        /// The materialised result node.
        result: NodeId,
        /// The §5 estimate that ranked this contraction.
        estimate: StepEstimate,
    },
}

/// Which columns of the final node feed the output, in output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjCols {
    /// `(a, b)`.
    Ab,
    /// `(b, a)`.
    Ba,
    /// `(a)` only.
    A,
    /// `(b)` only.
    B,
}

/// How the final rows are produced and streamed into the sink.
#[derive(Debug, Clone)]
pub enum FinalStage {
    /// A single node remains; project its column(s).
    Project {
        /// The last live node.
        node: NodeId,
        /// Column selection/order.
        cols: ProjCols,
    },
    /// A star around `center` remains; run the star primitive over the
    /// legs (ordered by the projection list).
    Star {
        /// The shared non-projected centre variable.
        center: Var,
        /// One leg per output column, in projection order.
        legs: Vec<NodeId>,
    },
}

/// A complete composed plan for a general acyclic query.
#[derive(Debug, Clone)]
pub struct GeneralPlan {
    /// All nodes: one per atom, then one per materialising step.
    pub nodes: Vec<PlanNode>,
    /// Materialising steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// The output-producing stage.
    pub final_stage: FinalStage,
    /// Estimated output rows of the whole query.
    pub estimated_rows: u64,
}

/// Why a (valid) query graph could not be lowered onto binary
/// intermediates.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The graph failed [`QueryGraph::validate`].
    Invalid(QueryError),
    /// The residual graph needs an intermediate of arity > 2.
    Unsupported(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Invalid(e) => write!(f, "invalid query graph: {e}"),
            PlanError::Unsupported(msg) => write!(f, "unsupported query shape: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<QueryError> for PlanError {
    fn from(e: QueryError) -> Self {
        PlanError::Invalid(e)
    }
}

/// Exact full-join size of `A ⋈_on B` over arbitrary atom orientations:
/// `Σ_v deg_A(v) · deg_B(v)` with each degree read from the index of the
/// column bound to `on`.
fn exact_full_join(a: &Relation, a_on_x: bool, b: &Relation, b_on_x: bool) -> u64 {
    let dom_of = |r: &Relation, on_x: bool| if on_x { r.x_domain() } else { r.y_domain() };
    let deg_of = |r: &Relation, on_x: bool, v: u32| {
        if on_x {
            r.x_degree(v)
        } else {
            r.y_degree(v)
        }
    };
    let dom = dom_of(a, a_on_x).min(dom_of(b, b_on_x));
    let mut total = 0u64;
    for v in 0..dom as u32 {
        total += deg_of(a, a_on_x, v) as u64 * deg_of(b, b_on_x, v) as u64;
    }
    total
}

/// §5 estimate for contracting `on` between two plan nodes. Exact
/// full-join when both inputs are materialised atoms; otherwise the
/// propagated approximation `|A|·|B| / max(d_A(on), d_B(on))`.
fn contraction_estimate(
    graph: &QueryGraph<'_>,
    left: &PlanNode,
    right: &PlanNode,
    on: Var,
) -> StepEstimate {
    let exact = left.est.exact && right.est.exact;
    let full_join = match (left.source, right.source) {
        (NodeSource::Atom(i), NodeSource::Atom(j)) if exact => {
            let (la, ra) = (&graph.atoms()[i], &graph.atoms()[j]);
            exact_full_join(la.relation, la.x == on, ra.relation, ra.x == on)
        }
        _ => {
            let shared = left.distinct_of(on).max(right.distinct_of(on)).max(1);
            left.est
                .tuples
                .saturating_mul(right.est.tuples)
                .checked_div(shared)
                .unwrap_or(0)
        }
    };
    let n = left.est.tuples.max(right.est.tuples).max(1);
    let keep_l = left.distinct_of(left.other_var(on));
    let keep_r = right.distinct_of(right.other_var(on));
    let est = estimate_from_parts(full_join, n, keep_l, keep_r);
    StepEstimate {
        full_join,
        rows: est.estimate,
        exact,
    }
}

/// Lowers a validated query graph into a [`GeneralPlan`].
pub fn plan_general(graph: &QueryGraph<'_>) -> Result<GeneralPlan, PlanError> {
    graph.validate()?;
    let projection = graph.projection();
    let projected = |v: Var| projection.contains(&v);

    let mut nodes: Vec<PlanNode> = graph
        .atoms()
        .iter()
        .enumerate()
        .map(|(i, atom)| PlanNode {
            a: atom.x,
            b: atom.y,
            source: NodeSource::Atom(i),
            est: NodeEst {
                tuples: atom.relation.len() as u64,
                distinct_a: atom.relation.active_x_count() as u64,
                distinct_b: atom.relation.active_y_count() as u64,
                exact: true,
            },
        })
        .collect();
    let mut steps: Vec<PlanStep> = Vec::new();
    let mut live: Vec<NodeId> = (0..nodes.len()).collect();

    loop {
        if live.len() == 1 {
            return finish_single(graph, nodes, steps, live[0]);
        }
        // Incidence of live nodes per variable, rebuilt per round (the
        // graph shrinks every round; sizes are tiny).
        let mut incidence: BTreeMap<Var, Vec<NodeId>> = BTreeMap::new();
        for &id in &live {
            incidence.entry(nodes[id].a).or_default().push(id);
            incidence.entry(nodes[id].b).or_default().push(id);
        }

        // Rule 1: absorb a pendant non-projected variable by semijoin.
        let pendant = incidence
            .iter()
            .find(|(&v, ids)| ids.len() == 1 && !projected(v));
        if let Some((&v, ids)) = pendant {
            let filter = ids[0];
            let on = nodes[filter].other_var(v);
            // Filter the smallest neighbouring node at `on`.
            let target = incidence[&on]
                .iter()
                .copied()
                .filter(|&id| id != filter)
                .min_by_key(|&id| nodes[id].tuples())
                .expect("connected tree: `on` has another incident node");
            let t = &nodes[target];
            let result = nodes.len();
            let result_node = PlanNode {
                a: t.a,
                b: t.b,
                source: NodeSource::Step(steps.len()),
                est: NodeEst {
                    exact: false,
                    ..t.est
                },
            };
            nodes.push(result_node);
            steps.push(PlanStep::Semijoin {
                target,
                filter,
                on,
                result,
            });
            live.retain(|&id| id != target && id != filter);
            live.push(result);
            continue;
        }

        // Rule 2: contract the cheapest non-projected degree-2 variable.
        let mut best: Option<(Var, NodeId, NodeId, StepEstimate)> = None;
        for (&v, ids) in &incidence {
            if ids.len() != 2 || projected(v) {
                continue;
            }
            let (l, r) = (ids[0], ids[1]);
            let est = contraction_estimate(graph, &nodes[l], &nodes[r], v);
            if best.is_none() || est.rows < best.as_ref().unwrap().3.rows {
                best = Some((v, l, r, est));
            }
        }
        if let Some((on, left, right, estimate)) = best {
            let result = nodes.len();
            let (keep_l, keep_r) = (nodes[left].other_var(on), nodes[right].other_var(on));
            let result_node = PlanNode {
                a: keep_l,
                b: keep_r,
                source: NodeSource::Step(steps.len()),
                est: NodeEst {
                    tuples: estimate.rows,
                    distinct_a: nodes[left].distinct_of(keep_l).min(estimate.rows),
                    distinct_b: nodes[right].distinct_of(keep_r).min(estimate.rows),
                    exact: false,
                },
            };
            nodes.push(result_node);
            steps.push(PlanStep::Join {
                left,
                right,
                on,
                result,
                estimate,
            });
            live.retain(|&id| id != left && id != right);
            live.push(result);
            continue;
        }

        // Rule 3: a final star around one non-projected centre.
        return finish_star(graph, nodes, steps, live, &incidence);
    }
}

fn finish_single(
    graph: &QueryGraph<'_>,
    nodes: Vec<PlanNode>,
    steps: Vec<PlanStep>,
    node: NodeId,
) -> Result<GeneralPlan, PlanError> {
    let n = &nodes[node];
    let cols = match *graph.projection() {
        [p, q] if p == n.a && q == n.b => ProjCols::Ab,
        [p, q] if p == n.b && q == n.a => ProjCols::Ba,
        [p] if p == n.a => ProjCols::A,
        [p] if p == n.b => ProjCols::B,
        _ => {
            return Err(PlanError::Unsupported(format!(
                "projection {:?} is not a column selection of the residual \
                 relation over variables ({}, {}) — a projected interior \
                 variable would need an intermediate of arity > 2",
                graph.projection(),
                n.a,
                n.b
            )))
        }
    };
    let estimated_rows = match cols {
        ProjCols::Ab | ProjCols::Ba => n.est.tuples,
        ProjCols::A => n.est.distinct_a,
        ProjCols::B => n.est.distinct_b,
    };
    Ok(GeneralPlan {
        nodes,
        steps,
        final_stage: FinalStage::Project { node, cols },
        estimated_rows,
    })
}

fn finish_star(
    graph: &QueryGraph<'_>,
    nodes: Vec<PlanNode>,
    steps: Vec<PlanStep>,
    live: Vec<NodeId>,
    incidence: &BTreeMap<Var, Vec<NodeId>>,
) -> Result<GeneralPlan, PlanError> {
    // The centre must be a non-projected variable shared by every live
    // node; pendant absorption and contraction have already removed every
    // other non-projected variable, so failing here means the shape needs
    // a wider intermediate.
    let projection = graph.projection();
    let center = incidence
        .iter()
        .find(|(&v, ids)| ids.len() == live.len() && !projection.contains(&v))
        .map(|(&v, _)| v);
    let Some(center) = center else {
        let interior: Vec<Var> = incidence
            .iter()
            .filter(|(&v, ids)| ids.len() >= 2 && projection.contains(&v))
            .map(|(&v, _)| v)
            .collect();
        let reason = if interior.is_empty() {
            "multiple branching centres".to_string()
        } else {
            format!("projected interior variable(s) {interior:?}")
        };
        return Err(PlanError::Unsupported(format!(
            "{reason} would need an intermediate of arity > 2"
        )));
    };
    if live.len() != projection.len() {
        return Err(PlanError::Unsupported(format!(
            "star residue has {} legs but the projection lists {} \
             variables",
            live.len(),
            projection.len()
        )));
    }
    let mut legs = Vec::with_capacity(projection.len());
    for &p in projection {
        let leg = live
            .iter()
            .copied()
            .find(|&id| nodes[id].other_var(center) == p);
        match leg {
            Some(id) => legs.push(id),
            None => {
                return Err(PlanError::Unsupported(format!(
                    "projected variable {p} is not a leg of the residual \
                     star around variable {center}"
                )))
            }
        }
    }
    // Star output estimate: geometric mean of the largest leg head count
    // (lower bound) and the product of head counts (upper bound).
    let heads: Vec<u64> = legs
        .iter()
        .map(|&id| nodes[id].distinct_of(nodes[id].other_var(center)).max(1))
        .collect();
    let lower = heads.iter().copied().max().unwrap_or(1);
    let upper = heads
        .iter()
        .copied()
        .fold(1u64, |acc, h| acc.saturating_mul(h));
    let estimated_rows =
        (((lower as f64) * (upper as f64)).sqrt().round() as u64).clamp(lower, upper);
    Ok(GeneralPlan {
        nodes,
        steps,
        final_stage: FinalStage::Star { center, legs },
        estimated_rows,
    })
}

impl PlanNode {
    fn tuples(&self) -> u64 {
        self.est.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_api::ir::Atom;

    fn rel(edges: &[(u32, u32)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn two_path_plans_to_one_join() {
        let r = rel(&[(0, 0), (1, 0)]);
        let graph = QueryGraph::two_path(&r, &r);
        let plan = plan_general(&graph).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(matches!(plan.steps[0], PlanStep::Join { on: 1, .. }));
        assert!(matches!(
            plan.final_stage,
            FinalStage::Project {
                cols: ProjCols::Ab,
                ..
            }
        ));
    }

    #[test]
    fn chain_contracts_interior_vars() {
        let rels = vec![
            rel(&[(0, 0), (1, 1)]),
            rel(&[(0, 0), (1, 1)]),
            rel(&[(0, 0), (1, 1)]),
            rel(&[(0, 0), (1, 1)]),
        ];
        let graph = QueryGraph::chain(&rels).unwrap();
        let plan = plan_general(&graph).unwrap();
        assert_eq!(plan.steps.len(), 3, "3 interior variables contracted");
        assert!(plan
            .steps
            .iter()
            .all(|s| matches!(s, PlanStep::Join { .. })));
    }

    #[test]
    fn star_keeps_final_star_stage() {
        let rels = vec![rel(&[(0, 0)]), rel(&[(1, 0)]), rel(&[(2, 0)])];
        let graph = QueryGraph::star(&rels).unwrap();
        let plan = plan_general(&graph).unwrap();
        assert!(plan.steps.is_empty());
        match &plan.final_stage {
            FinalStage::Star { center, legs } => {
                assert_eq!(*center, 3);
                assert_eq!(legs.len(), 3);
            }
            other => panic!("expected star stage, got {other:?}"),
        }
    }

    #[test]
    fn pendant_atom_becomes_semijoin() {
        // Q(x, z) :- R(x, y), S(z, y), T(z, w): w is a non-projected leaf.
        let r = rel(&[(0, 0), (1, 0)]);
        let atom = |relation, x, y| Atom { relation, x, y };
        let graph = QueryGraph::new(
            vec![atom(&r, 0, 1), atom(&r, 2, 1), atom(&r, 2, 3)],
            vec![0, 2],
        )
        .unwrap();
        let plan = plan_general(&graph).unwrap();
        assert!(matches!(plan.steps[0], PlanStep::Semijoin { on: 2, .. }));
        assert!(matches!(plan.steps[1], PlanStep::Join { on: 1, .. }));
    }

    #[test]
    fn projected_interior_variable_rejected() {
        // Q(x, y, z) :- R(x, y), S(y, z): y is projected and interior.
        let r = rel(&[(0, 0)]);
        let atom = |x, y| Atom { relation: &r, x, y };
        let graph = QueryGraph::new(vec![atom(0, 1), atom(1, 2)], vec![0, 1, 2]).unwrap();
        let err = plan_general(&graph).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn double_star_rejected() {
        // Two degree-3 centres joined by an edge: needs arity-3 carrier.
        let r = rel(&[(0, 0)]);
        let atom = |x, y| Atom { relation: &r, x, y };
        let graph = QueryGraph::new(
            vec![atom(0, 6), atom(1, 6), atom(6, 7), atom(2, 7), atom(3, 7)],
            vec![0, 1, 2, 3],
        )
        .unwrap();
        let err = plan_general(&graph).unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn snowflake_plans_rays_then_star() {
        // Three rays of length 2 around centre 9, projecting ray tips.
        let r = rel(&[(0, 0), (1, 0), (1, 1)]);
        let atom = |x, y| Atom { relation: &r, x, y };
        let graph = QueryGraph::new(
            vec![
                atom(0, 4),
                atom(4, 9),
                atom(1, 5),
                atom(5, 9),
                atom(2, 6),
                atom(6, 9),
            ],
            vec![0, 1, 2],
        )
        .unwrap();
        let plan = plan_general(&graph).unwrap();
        assert_eq!(plan.steps.len(), 3, "one contraction per ray");
        assert!(matches!(
            plan.final_stage,
            FinalStage::Star { center: 9, .. }
        ));
    }

    #[test]
    fn contraction_order_follows_estimates() {
        // Chain A–B–C where contracting var 2 (B⋈C, tiny) is cheaper
        // than var 1 (A⋈B, hub explosion).
        let hub: Vec<(u32, u32)> = (0..40).map(|i| (i, 0)).collect();
        let a = rel(&hub); // 40 sets sharing element 0
        let b = rel(&[(0, 0), (0, 1), (1, 2)]);
        let c = rel(&[(0, 0), (1, 1), (2, 5)]);
        let graph = QueryGraph::new(
            vec![
                Atom {
                    relation: &a,
                    x: 0,
                    y: 1,
                },
                Atom {
                    relation: &b,
                    x: 1,
                    y: 2,
                },
                Atom {
                    relation: &c,
                    x: 2,
                    y: 3,
                },
            ],
            vec![0, 3],
        )
        .unwrap();
        let plan = plan_general(&graph).unwrap();
        match &plan.steps[0] {
            PlanStep::Join { on, .. } => assert_eq!(*on, 2, "cheap contraction first"),
            other => panic!("expected join, got {other:?}"),
        }
    }
}
