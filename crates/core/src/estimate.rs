//! Output-size estimation (§5, "Estimating output size").
//!
//! The paper bounds the projected output of the 2-path query by
//!
//! ```text
//!   |dom(x)|            ≤ |OUT| ≤ min{ |dom(x)|·|dom(z)|, |OUT⋈| }
//!   (|OUT⋈| / N)²       ≤ |OUT|            (since |OUT⋈| ≤ N·√|OUT|)
//! ```
//!
//! and estimates `|OUT|` as the geometric mean of the tightest lower and
//! upper bounds. The full join size `|OUT⋈|` is exact — it falls out of the
//! indexing pass (one multiply-add per shared `y`).

use mmjoin_storage::Relation;

/// The estimator's inputs and result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputEstimate {
    /// Exact full-join (pre-projection) size `|OUT⋈|`.
    pub full_join: u64,
    /// Lower bound on `|OUT|`.
    pub lower: u64,
    /// Upper bound on `|OUT|`.
    pub upper: u64,
    /// Geometric-mean estimate of `|OUT|`.
    pub estimate: u64,
}

/// Estimates the projected output size of `π_{x,z}(R ⋈ S)`.
pub fn estimate_output_size(r: &Relation, s: &Relation) -> OutputEstimate {
    let n = (r.len().max(s.len())).max(1) as u64;
    let full_join = r.full_join_size(s);
    let dom_x = r.active_x_count() as u64;
    let dom_z = s.active_x_count() as u64;
    estimate_from_parts(full_join, n, dom_x, dom_z)
}

/// The §5 bound arithmetic over pre-computed inputs: exact full-join size
/// `|OUT⋈|`, larger input size `N`, and the distinct head-value counts.
/// Shared by [`estimate_output_size`] (exact relations) and the
/// decomposing planner (propagated estimates over unmaterialised
/// intermediates).
pub fn estimate_from_parts(full_join: u64, n: u64, dom_x: u64, dom_z: u64) -> OutputEstimate {
    let n = n.max(1);
    // Every active x joins with at least one z (after semi-join reduction),
    // so max(dom_x, dom_z) output pairs exist at minimum; and
    // |OUT⋈| ≤ N·√|OUT| gives the quadratic lower bound (|OUT⋈|/N)².
    // Computed in u128 with round-to-nearest: the old `(full_join / n)²`
    // truncated *before* squaring, collapsing the bound to 0 whenever
    // |OUT⋈| < N and understating it whenever N ∤ |OUT⋈|.
    let fj = full_join as u128;
    let n2 = (n as u128) * (n as u128);
    let ratio_sq = u64::try_from((fj * fj + n2 / 2) / n2).unwrap_or(u64::MAX);
    let lower = dom_x.max(dom_z).max(ratio_sq).max(1);
    let upper = dom_x.saturating_mul(dom_z).min(full_join).max(lower);
    let estimate = ((lower as f64) * (upper as f64)).sqrt().round() as u64;
    OutputEstimate {
        full_join,
        lower,
        upper,
        estimate: estimate.clamp(lower, upper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_storage::{Relation, Value};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn bounds_bracket_truth_on_clique() {
        // 10 sets all sharing element 0: OUT = 100, OUT⋈ = 100.
        let edges: Vec<(Value, Value)> = (0..10).map(|x| (x, 0)).collect();
        let r = rel(&edges);
        let est = estimate_output_size(&r, &r);
        assert_eq!(est.full_join, 100);
        assert!(est.lower <= 100 && 100 <= est.upper);
        assert!(est.estimate >= est.lower && est.estimate <= est.upper);
    }

    #[test]
    fn bounds_bracket_truth_on_sparse_matching() {
        // Perfect matching: x_i — y_i. OUT = N (only self pairs).
        let edges: Vec<(Value, Value)> = (0..50).map(|i| (i, i)).collect();
        let r = rel(&edges);
        let est = estimate_output_size(&r, &r);
        assert_eq!(est.full_join, 50);
        assert!(est.lower <= 50 && 50 <= est.upper, "{est:?}");
    }

    #[test]
    fn estimate_monotone_in_bounds() {
        let r = rel(&[(0, 0), (1, 0), (2, 1)]);
        let est = estimate_output_size(&r, &r);
        assert!(est.lower <= est.estimate && est.estimate <= est.upper);
    }

    #[test]
    fn empty_relation_safe() {
        let r = rel(&[]);
        let est = estimate_output_size(&r, &r);
        assert_eq!(est.full_join, 0);
        assert!(est.estimate >= 1); // clamped floor, never zero-divides
    }

    #[test]
    fn quadratic_lower_bound_survives_integer_division() {
        // Boundary: |OUT⋈| just below N. The truncating `(fj / n)²` was 0
        // here; the rounded u128 form recovers (fj/n)² ≈ 1.
        let est = estimate_from_parts(99, 100, 1, 1);
        assert_eq!(est.lower, 1, "{est:?}");
        // |OUT⋈| = 1.5·N: true bound is 2.25 → rounds to 2 (was 1).
        let est = estimate_from_parts(150, 100, 1, 1);
        assert_eq!(est.lower, 2, "{est:?}");
        // Exactly |OUT⋈| = N·k keeps the exact k².
        let est = estimate_from_parts(300, 100, 1, 1);
        assert_eq!(est.lower, 9, "{est:?}");
        // Huge |OUT⋈| no longer overflows the squaring (u128 internally).
        let est = estimate_from_parts(u64::MAX, 2, 1, 1);
        assert_eq!(est.lower, u64::MAX, "{est:?}");
    }

    #[test]
    fn community_instance_estimate_reasonable() {
        // Example 1 shape: 4 communities of 8 members sharing 8 elements.
        let mut edges = Vec::new();
        for c in 0..4u32 {
            for m in 0..8u32 {
                for e in 0..8u32 {
                    edges.push((c * 8 + m, c * 8 + e));
                }
            }
        }
        let r = rel(&edges);
        // Truth: each community is a 8×8 clique in the output: OUT = 4·64 = 256.
        let est = estimate_output_size(&r, &r);
        assert!(est.lower <= 256 && 256 <= est.upper, "{est:?}");
        // Estimate within 10x of truth on this benign instance.
        assert!(est.estimate <= 2560 && est.estimate >= 25, "{est:?}");
    }
}
