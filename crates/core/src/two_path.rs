//! Algorithm 1 — MMJoin evaluation of the 2-path query
//! `Q(x, z) = R(x, y), S(z, y)`.
//!
//! The relation tuples are partitioned by degree with thresholds `Δ1`
//! (join variable `y`) and `Δ2` (head variables `x`, `z`):
//!
//! * **Light passes** (worst-case-optimal expansion, §3.1 step 1): pass A
//!   walks every `x` group of `R`; a light `x` expands all its `y`s, a heavy
//!   `x` expands only `y`s that are light in `S`. Pass B is symmetric from
//!   the `S` side with `y`s light in `R`. Per-group deduplication uses the
//!   epoch-stamped dense buffer of §6.
//! * **Heavy core** (step 2): `x`, `z` values heavier than `Δ2` joined
//!   through `y` values heavier than `Δ1` *in both relations* are packed
//!   into rectangular 0/1 matrices and multiplied; entries `> 0` are heavy
//!   output pairs (with their witness counts for free).
//!
//! Coverage of an output pair `(a, c)` with witness `b`: `a` light → pass A;
//! `c` light → pass B; `b` light in `S` → pass A; `b` light in `R` → pass B;
//! otherwise all of `a`, `c`, `b` are heavy → matrix. The three part outputs
//! may overlap, so assembly sorts and deduplicates (output-sized work).
//!
//! The counting variant ([`two_path_with_counts`]) rearranges the passes so
//! that every pair's witnesses are counted against *disjoint* witness sets,
//! yielding exact `|ys(x) ∩ ys(z)|` multiplicities — the quantity the
//! similarity joins (§4) threshold and sort on.

use crate::config::{HeavyBackend, JoinConfig};
use crate::optimizer::{choose_thresholds, PlanChoice};
use mmjoin_api::PlanStats;
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_executor::Executor;
use mmjoin_matrix::{matmul_parallel_on, BitMatrix, CsrMatrix, DenseMatrix};
use mmjoin_storage::{DedupBuffer, Relation, Value};

/// Evaluates `π_{x,z}(R ⋈ S)` returning sorted distinct pairs.
pub fn two_path_join_project(
    r: &Relation,
    s: &Relation,
    config: &JoinConfig,
) -> Vec<(Value, Value)> {
    two_path_join_project_with_stats(r, s, config).0
}

/// [`two_path_join_project`] plus the plan record of the run — a single
/// planning pass feeds both execution and the returned
/// [`PlanStats`], so the statistics describe exactly what ran (empty
/// inputs report no plan).
pub fn two_path_join_project_with_stats(
    r: &Relation,
    s: &Relation,
    config: &JoinConfig,
) -> (Vec<(Value, Value)>, Option<PlanStats>) {
    if r.is_empty() || s.is_empty() {
        return (Vec::new(), None);
    }
    let (threads, exec) = (config.effective_threads(), config.exec());
    let (delta1, delta2, mut stats) = match resolve_plan(r, s, config) {
        Resolved::Wcoj(stats) => {
            let out = ExpandDedupEngine::parallel(threads).join_project_on(r, s, exec);
            return (out, Some(stats));
        }
        Resolved::Mm(d1, d2, stats) => (d1, d2, stats),
    };

    let heavy = HeavyIndex::build(r, s, delta1, delta2);
    record_partition(&mut stats, r, s, &heavy);
    let use_matrix = !heavy.is_degenerate() && heavy.cells() <= config.matrix_cell_cap;
    stats.heavy_core_matrix = Some(use_matrix);
    let mut out = light_passes(r, s, delta1, delta2, threads, exec);

    if heavy.is_degenerate() {
        // No heavy core: light passes already cover everything.
    } else if !use_matrix {
        // Memory guard: heavy core evaluated combinatorially.
        heavy_expansion_fallback(r, s, &heavy, &mut out);
    } else {
        match heavy.resolve_backend(r, config.heavy_backend) {
            HeavyBackend::BitMatrix => {
                let (m1, m2) = heavy.build_bit_matrices(r, s);
                let prod = m1.bool_product(&m2);
                for (i, j) in prod.iter_ones() {
                    out.push((heavy.heavy_x[i], heavy.heavy_z[j]));
                }
            }
            HeavyBackend::Sparse => {
                let (m1, m2) = heavy.build_sparse_matrices(r, s);
                let prod = m1.spgemm(&m2);
                for (i, j, _) in prod.entries_at_least(0.5) {
                    out.push((heavy.heavy_x[i], heavy.heavy_z[j]));
                }
            }
            _ => {
                let (m1, m2) = heavy.build_dense_matrices(r, s);
                let prod = matmul_parallel_on(exec, &m1, &m2, threads);
                for (i, j, _) in prod.entries_at_least(0.5) {
                    out.push((heavy.heavy_x[i], heavy.heavy_z[j]));
                }
            }
        }
    }

    out.sort_unstable();
    out.dedup();
    (out, Some(stats))
}

/// Evaluates the 2-path query with exact per-pair witness counts,
/// returning sorted `(x, z, count)` triples with `count >= min_count`.
pub fn two_path_with_counts(
    r: &Relation,
    s: &Relation,
    min_count: u32,
    config: &JoinConfig,
) -> Vec<(Value, Value, u32)> {
    two_path_with_counts_stats(r, s, min_count, config).0
}

/// [`two_path_with_counts`] plus the plan record of the run (see
/// [`two_path_join_project_with_stats`]).
pub fn two_path_with_counts_stats(
    r: &Relation,
    s: &Relation,
    min_count: u32,
    config: &JoinConfig,
) -> (Vec<(Value, Value, u32)>, Option<PlanStats>) {
    if r.is_empty() || s.is_empty() {
        return (Vec::new(), None);
    }
    let (delta1, delta2, mut stats) = match resolve_plan(r, s, config) {
        // Everything light: pure expansion.
        Resolved::Wcoj(stats) => (u32::MAX, u32::MAX, stats),
        Resolved::Mm(d1, d2, stats) => (d1, d2, stats),
    };

    let heavy = if delta1 == u32::MAX {
        HeavyIndex::empty()
    } else {
        HeavyIndex::build(r, s, delta1, delta2)
    };

    let use_matrix = !heavy.is_degenerate() && heavy.cells() <= config.matrix_cell_cap;
    if delta1 != u32::MAX {
        record_partition(&mut stats, r, s, &heavy);
        stats.heavy_core_matrix = Some(use_matrix);
    }
    let prod = if use_matrix {
        let (m1, m2) = heavy.build_dense_matrices(r, s);
        Some(matmul_parallel_on(
            config.exec(),
            &m1,
            &m2,
            config.effective_threads(),
        ))
    } else {
        None
    };

    let mut out = count_passes(r, s, delta2, min_count, &heavy, prod.as_ref(), config);
    out.sort_unstable();
    (out, Some(stats))
}

enum Resolved {
    Wcoj(PlanStats),
    Mm(u32, u32, PlanStats),
}

/// One planning pass: threshold override, or Algorithm 3 — whose decision
/// record is folded into the nascent [`PlanStats`] so nothing is computed
/// twice.
fn resolve_plan(r: &Relation, s: &Relation, config: &JoinConfig) -> Resolved {
    if let Some((d1, d2)) = config.delta_override {
        return Resolved::Mm(d1, d2, PlanStats::partitioned(d1, d2));
    }
    let plan = choose_thresholds(r, s, config);
    match plan.choice {
        PlanChoice::Wcoj => {
            let mut stats = PlanStats::wcoj();
            stats.estimated_out = Some(plan.estimate.estimate);
            Resolved::Wcoj(stats)
        }
        PlanChoice::Mm { delta1, delta2 } => {
            let mut stats = PlanStats::partitioned(delta1, delta2);
            stats.estimated_out = Some(plan.estimate.estimate);
            stats.predicted_light_secs = Some(plan.predicted_light);
            stats.predicted_heavy_secs = Some(plan.predicted_heavy);
            Resolved::Mm(delta1, delta2, stats)
        }
    }
}

/// Records the true (adjacency-pruned) partition shape: the heavy
/// factor-matrix dimensions and the tuple mass left to the light passes.
fn record_partition(stats: &mut PlanStats, r: &Relation, s: &Relation, heavy: &HeavyIndex) {
    stats.heavy_dims = Some((
        heavy.heavy_x.len(),
        heavy.heavy_y.len(),
        heavy.heavy_z.len(),
    ));
    let heavy_r: u64 = heavy.heavy_x.iter().map(|&x| r.x_degree(x) as u64).sum();
    let heavy_s: u64 = heavy.heavy_z.iter().map(|&z| s.x_degree(z) as u64).sum();
    stats.light_tuples = Some((r.len() as u64 - heavy_r, s.len() as u64 - heavy_s));
}

/// Index of heavy values and their dense matrix coordinates.
pub(crate) struct HeavyIndex {
    /// Heavy `x` values (rows of `M1`), ascending.
    pub heavy_x: Vec<Value>,
    /// Heavy `y` values — heavier than `Δ1` in *both* relations (inner
    /// dimension), ascending.
    pub heavy_y: Vec<Value>,
    /// Heavy `z` values (columns of `M2`), ascending.
    pub heavy_z: Vec<Value>,
    /// `x value → row`, `-1` when not heavy.
    x_row: Vec<i32>,
    /// `y value → inner index`, `-1` when not heavy-in-both.
    y_col: Vec<i32>,
    /// `z value → column`, `-1` when not heavy.
    z_col: Vec<i32>,
}

impl HeavyIndex {
    fn empty() -> Self {
        Self {
            heavy_x: Vec::new(),
            heavy_y: Vec::new(),
            heavy_z: Vec::new(),
            x_row: Vec::new(),
            y_col: Vec::new(),
            z_col: Vec::new(),
        }
    }

    fn build(r: &Relation, s: &Relation, delta1: u32, delta2: u32) -> Self {
        let ydom = r.y_domain().min(s.y_domain());
        let mut y_col = vec![-1i32; r.y_domain().max(s.y_domain())];
        let mut heavy_y = Vec::new();
        for y in 0..ydom as Value {
            if r.y_degree(y) > delta1 as usize && s.y_degree(y) > delta1 as usize {
                y_col[y as usize] = heavy_y.len() as i32;
                heavy_y.push(y);
            }
        }
        // Heavy x: degree above Δ2 *and* adjacent to ≥1 heavy-in-both y
        // (rows with no heavy y are all-zero; dropping them shrinks M1).
        let mut x_row = vec![-1i32; r.x_domain()];
        let mut heavy_x = Vec::new();
        for (x, ys) in r.by_x().iter_nonempty() {
            if ys.len() > delta2 as usize
                && ys
                    .iter()
                    .any(|&y| y_col.get(y as usize).is_some_and(|&c| c >= 0))
            {
                x_row[x as usize] = heavy_x.len() as i32;
                heavy_x.push(x);
            }
        }
        let mut z_col = vec![-1i32; s.x_domain()];
        let mut heavy_z = Vec::new();
        for (z, ys) in s.by_x().iter_nonempty() {
            if ys.len() > delta2 as usize
                && ys
                    .iter()
                    .any(|&y| y_col.get(y as usize).is_some_and(|&c| c >= 0))
            {
                z_col[z as usize] = heavy_z.len() as i32;
                heavy_z.push(z);
            }
        }
        Self {
            heavy_x,
            heavy_y,
            heavy_z,
            x_row,
            y_col,
            z_col,
        }
    }

    fn is_degenerate(&self) -> bool {
        self.heavy_x.is_empty() || self.heavy_y.is_empty() || self.heavy_z.is_empty()
    }

    /// Total dense cells the two factor matrices and the product would use.
    fn cells(&self) -> usize {
        let (u, v, w) = (self.heavy_x.len(), self.heavy_y.len(), self.heavy_z.len());
        u * v + v * w + u * w
    }

    #[inline]
    fn y_is_heavy(&self, y: Value) -> bool {
        self.y_col.get(y as usize).is_some_and(|&c| c >= 0)
    }

    #[inline]
    fn x_row_of(&self, x: Value) -> Option<usize> {
        let r = *self.x_row.get(x as usize)?;
        (r >= 0).then_some(r as usize)
    }

    #[inline]
    fn z_is_heavy(&self, z: Value) -> bool {
        self.z_col.get(z as usize).is_some_and(|&c| c >= 0)
    }

    fn build_dense_matrices(&self, r: &Relation, s: &Relation) -> (DenseMatrix, DenseMatrix) {
        let (u, v, w) = (self.heavy_x.len(), self.heavy_y.len(), self.heavy_z.len());
        let mut m1 = DenseMatrix::zeros(u, v);
        for (row, &x) in self.heavy_x.iter().enumerate() {
            for &y in r.ys_of(x) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        m1.set(row, c as usize, 1.0);
                    }
                }
            }
        }
        let mut m2 = DenseMatrix::zeros(v, w);
        for (col, &z) in self.heavy_z.iter().enumerate() {
            for &y in s.ys_of(z) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        m2.set(c as usize, col, 1.0);
                    }
                }
            }
        }
        (m1, m2)
    }

    /// Density-based backend selection for [`HeavyBackend::Auto`]:
    /// estimated nnz(M1) over u·v cells below 2% picks the SpGEMM path.
    fn resolve_backend(&self, r: &Relation, requested: HeavyBackend) -> HeavyBackend {
        match requested {
            HeavyBackend::Auto => {
                let cells = (self.heavy_x.len() * self.heavy_y.len()).max(1);
                let nnz: usize = self
                    .heavy_x
                    .iter()
                    .map(|&x| r.ys_of(x).iter().filter(|&&y| self.y_is_heavy(y)).count())
                    .sum();
                if (nnz as f64) / (cells as f64) < 0.02 {
                    HeavyBackend::Sparse
                } else {
                    HeavyBackend::DenseF32
                }
            }
            other => other,
        }
    }

    fn build_sparse_matrices(&self, r: &Relation, s: &Relation) -> (CsrMatrix, CsrMatrix) {
        let (u, v, w) = (self.heavy_x.len(), self.heavy_y.len(), self.heavy_z.len());
        let mut pairs_a = Vec::new();
        for (row, &x) in self.heavy_x.iter().enumerate() {
            for &y in r.ys_of(x) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        pairs_a.push((row as u32, c as u32));
                    }
                }
            }
        }
        let mut pairs_b = Vec::new();
        for (col, &z) in self.heavy_z.iter().enumerate() {
            for &y in s.ys_of(z) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        pairs_b.push((c as u32, col as u32));
                    }
                }
            }
        }
        (
            CsrMatrix::from_pairs(u, v, &pairs_a),
            CsrMatrix::from_pairs(v, w, &pairs_b),
        )
    }

    fn build_bit_matrices(&self, r: &Relation, s: &Relation) -> (BitMatrix, BitMatrix) {
        let (u, v, w) = (self.heavy_x.len(), self.heavy_y.len(), self.heavy_z.len());
        let mut m1 = BitMatrix::zeros(u, v);
        for (row, &x) in self.heavy_x.iter().enumerate() {
            for &y in r.ys_of(x) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        m1.set(row, c as usize);
                    }
                }
            }
        }
        let mut m2 = BitMatrix::zeros(v, w);
        for (col, &z) in self.heavy_z.iter().enumerate() {
            for &y in s.ys_of(z) {
                if let Some(&c) = self.y_col.get(y as usize) {
                    if c >= 0 {
                        m2.set(c as usize, col);
                    }
                }
            }
        }
        (m1, m2)
    }
}

/// Light passes A (R side) and B (S side), optionally parallel over groups.
///
/// The passes partition the light witnesses so almost no pair is emitted
/// twice: pass A owns every pair whose `x` is light plus heavy-`x` pairs
/// through `y`s light in `S`; pass B only ever emits heavy-`x` pairs, and
/// only through `y`s heavy in `S` (anything else pass A already found).
/// In the degenerate all-light configuration pass B does no work at all,
/// which keeps MMJoin's fallback within noise of the plain combinatorial
/// engine.
fn light_passes(
    r: &Relation,
    s: &Relation,
    delta1: u32,
    delta2: u32,
    threads: usize,
    exec: &Executor,
) -> Vec<(Value, Value)> {
    let pass_a = |groups: &[(Value, &[Value])], out: &mut Vec<(Value, Value)>| {
        let mut dedup = DedupBuffer::new(s.x_domain());
        for &(a, ys) in groups {
            let a_light = ys.len() <= delta2 as usize;
            dedup.clear();
            for &y in ys {
                if (y as usize) >= s.y_domain() {
                    continue;
                }
                if a_light || s.y_degree(y) <= delta1 as usize {
                    for &z in s.xs_of(y) {
                        if dedup.insert(z) {
                            out.push((a, z));
                        }
                    }
                }
            }
        }
    };
    let pass_b = |groups: &[(Value, &[Value])], out: &mut Vec<(Value, Value)>| {
        let mut dedup = DedupBuffer::new(r.x_domain());
        for &(c, ys) in groups {
            let c_light = ys.len() <= delta2 as usize;
            dedup.clear();
            for &y in ys {
                if (y as usize) >= r.y_domain() || s.y_degree(y) <= delta1 as usize {
                    continue; // y light in S: pass A covered every x.
                }
                if c_light || r.y_degree(y) <= delta1 as usize {
                    for &x in r.xs_of(y) {
                        // Light x: pass A expanded all of its ys already.
                        if r.x_degree(x) > delta2 as usize && dedup.insert(x) {
                            out.push((x, c));
                        }
                    }
                }
            }
        }
    };

    let groups_a: Vec<(Value, &[Value])> = r.by_x().iter_nonempty().collect();
    let groups_b: Vec<(Value, &[Value])> = s.by_x().iter_nonempty().collect();
    if threads <= 1 {
        let mut out = Vec::new();
        pass_a(&groups_a, &mut out);
        pass_b(&groups_b, &mut out);
        out
    } else {
        // Both passes are chunked into one task list so A- and B-side
        // work interleaves on the shared pool instead of running as two
        // barriers. Chunking depends only on `threads` → deterministic.
        let chunk_a = groups_a.len().div_ceil(threads).max(1);
        let chunk_b = groups_b.len().div_ceil(threads).max(1);
        let chunks_a: Vec<&[(Value, &[Value])]> = groups_a.chunks(chunk_a).collect();
        let chunks_b: Vec<&[(Value, &[Value])]> = groups_b.chunks(chunk_b).collect();
        let na = chunks_a.len();
        let results = exec.map(threads, na + chunks_b.len(), |i| {
            let mut out = Vec::new();
            if i < na {
                pass_a(chunks_a[i], &mut out);
            } else {
                pass_b(chunks_b[i - na], &mut out);
            }
            out
        });
        results.concat()
    }
}

/// Combinatorial evaluation of the heavy core when the matrices would not
/// fit in the configured memory cap: expand heavy `x` through heavy `y`.
fn heavy_expansion_fallback(
    r: &Relation,
    s: &Relation,
    heavy: &HeavyIndex,
    out: &mut Vec<(Value, Value)>,
) {
    let mut dedup = DedupBuffer::new(s.x_domain());
    for &x in &heavy.heavy_x {
        dedup.clear();
        for &y in r.ys_of(x) {
            if !heavy.y_is_heavy(y) {
                continue;
            }
            for &z in s.xs_of(y) {
                if dedup.insert(z) {
                    out.push((x, z));
                }
            }
        }
    }
}

/// Counting passes L1/L2/L3 (see module docs): exact multiplicities with
/// disjoint witness partitions.
#[allow(clippy::too_many_arguments)]
fn count_passes(
    r: &Relation,
    s: &Relation,
    delta2: u32,
    min_count: u32,
    heavy: &HeavyIndex,
    prod: Option<&DenseMatrix>,
    config: &JoinConfig,
) -> Vec<(Value, Value, u32)> {
    let (threads, exec) = (config.effective_threads(), config.exec());
    let is_light_head_r = |deg: usize| deg <= delta2 as usize || delta2 == u32::MAX;
    // When no matrix product is available (memory cap, degenerate core),
    // pass L3 must expand *every* y — heavy-in-both witnesses included —
    // otherwise those counts would be lost.
    let skip_heavy_y = prod.is_some();

    // Pass L1: light x — full expansion, exact counts for (x, *).
    let l1 = |groups: &[(Value, &[Value])], out: &mut Vec<(Value, Value, u32)>| {
        let mut dedup = DedupBuffer::new(s.x_domain());
        let mut touched: Vec<Value> = Vec::new();
        for &(a, ys) in groups {
            if !is_light_head_r(ys.len()) {
                continue;
            }
            dedup.clear();
            touched.clear();
            for &y in ys {
                if (y as usize) >= s.y_domain() {
                    continue;
                }
                for &z in s.xs_of(y) {
                    if dedup.insert(z) {
                        touched.push(z);
                    }
                }
            }
            for &z in &touched {
                let m = dedup.multiplicity(z);
                if m >= min_count {
                    out.push((a, z, m));
                }
            }
        }
    };

    // Pass L2: light z — full expansion from the S side; emit only pairs
    // whose x is heavy (light x already exact in L1).
    let l2 = |groups: &[(Value, &[Value])], out: &mut Vec<(Value, Value, u32)>| {
        let mut dedup = DedupBuffer::new(r.x_domain());
        let mut touched: Vec<Value> = Vec::new();
        for &(c, ys) in groups {
            if !is_light_head_r(ys.len()) {
                continue;
            }
            dedup.clear();
            touched.clear();
            for &y in ys {
                if (y as usize) >= r.y_domain() {
                    continue;
                }
                for &x in r.xs_of(y) {
                    if dedup.insert(x) {
                        touched.push(x);
                    }
                }
            }
            for &x in &touched {
                if is_light_head_r(r.x_degree(x)) {
                    continue; // covered exactly by L1
                }
                let m = dedup.multiplicity(x);
                if m >= min_count {
                    out.push((x, c, m));
                }
            }
        }
    };

    // Pass L3: heavy x — expand only non-heavy-in-both y; combine with the
    // matrix row for heavy z; skip light z (covered by L2).
    let l3 = |groups: &[(Value, &[Value])], out: &mut Vec<(Value, Value, u32)>| {
        let mut dedup = DedupBuffer::new(s.x_domain());
        let mut touched: Vec<Value> = Vec::new();
        for &(a, ys) in groups {
            if is_light_head_r(ys.len()) {
                continue;
            }
            dedup.clear();
            touched.clear();
            for &y in ys {
                if (y as usize) >= s.y_domain() || (skip_heavy_y && heavy.y_is_heavy(y)) {
                    continue;
                }
                for &z in s.xs_of(y) {
                    if dedup.insert(z) {
                        touched.push(z);
                    }
                }
            }
            match (heavy.x_row_of(a), prod) {
                (Some(row), Some(m)) => {
                    // Scan all heavy z columns: matrix + light-witness counts.
                    for (j, &z) in heavy.heavy_z.iter().enumerate() {
                        let total = m.get(row, j) as u32 + dedup.multiplicity(z);
                        if total >= min_count && total > 0 {
                            out.push((a, z, total));
                        }
                    }
                    // Heavy-head z values *without* a matrix column (no
                    // heavy-in-both y adjacent) have no matrix witnesses:
                    // the expansion count is already exact for them.
                    for &z in &touched {
                        if heavy.z_is_heavy(z) || is_light_head_r(s.x_degree(z)) {
                            continue; // column scan / L2 covers these
                        }
                        let mult = dedup.multiplicity(z);
                        if mult >= min_count {
                            out.push((a, z, mult));
                        }
                    }
                }
                _ => {
                    // No matrix row (or matrix disabled): expansion was the
                    // complete witness set for heavy z partners.
                    for &z in &touched {
                        if !heavy.z_is_heavy(z) {
                            // z light head ⇒ L2 covers; z heavy-but-rowless
                            // still counts here.
                            if is_light_head_r(s.x_degree(z)) {
                                continue;
                            }
                        }
                        let m = dedup.multiplicity(z);
                        if m >= min_count {
                            out.push((a, z, m));
                        }
                    }
                }
            }
        }
    };

    let groups_r: Vec<(Value, &[Value])> = r.by_x().iter_nonempty().collect();
    let groups_s: Vec<(Value, &[Value])> = s.by_x().iter_nonempty().collect();
    if threads <= 1 {
        let mut out = Vec::new();
        l1(&groups_r, &mut out);
        l2(&groups_s, &mut out);
        l3(&groups_r, &mut out);
        out
    } else {
        let chunk_r = groups_r.len().div_ceil(threads).max(1);
        let chunk_s = groups_s.len().div_ceil(threads).max(1);
        let chunks_r: Vec<&[(Value, &[Value])]> = groups_r.chunks(chunk_r).collect();
        let chunks_s: Vec<&[(Value, &[Value])]> = groups_s.chunks(chunk_s).collect();
        let nr = chunks_r.len();
        let results = exec.map(threads, nr + chunks_s.len(), |i| {
            let mut out = Vec::new();
            if i < nr {
                l1(chunks_r[i], &mut out);
                l3(chunks_r[i], &mut out);
            } else {
                l2(chunks_s[i - nr], &mut out);
            }
            out
        });
        results.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_baseline::fulljoin::SortMergeEngine;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    /// Brute-force pair counts.
    fn brute_counts(r: &Relation, s: &Relation) -> BTreeMap<(Value, Value), u32> {
        let mut m = BTreeMap::new();
        for &(x, y) in r.edges() {
            for &(z, y2) in s.edges() {
                if y == y2 {
                    *m.entry((x, z)).or_insert(0) += 1;
                }
            }
        }
        m
    }

    fn clique_relation(sets: u32, elems: u32) -> Relation {
        let mut edges = Vec::new();
        for x in 0..sets {
            for y in 0..elems {
                edges.push((x, y));
            }
        }
        rel(&edges)
    }

    #[test]
    fn matches_reference_with_forced_deltas() {
        let r = rel(&[(0, 0), (0, 1), (1, 0), (2, 1), (3, 2), (3, 0)]);
        let s = rel(&[(5, 0), (6, 1), (7, 0), (7, 2), (8, 1)]);
        let expected = SortMergeEngine.join_project(&r, &s);
        for (d1, d2) in [(1, 1), (1, 2), (2, 1), (3, 3), (100, 100)] {
            let cfg = JoinConfig::with_deltas(d1, d2);
            assert_eq!(
                two_path_join_project(&r, &s, &cfg),
                expected,
                "Δ1={d1} Δ2={d2}"
            );
        }
    }

    #[test]
    fn matches_reference_with_optimizer() {
        let r = clique_relation(12, 6);
        let cfg = JoinConfig {
            wcoj_fallback_factor: 1.0,
            ..JoinConfig::default()
        };
        assert_eq!(
            two_path_join_project(&r, &r, &cfg),
            SortMergeEngine.join_project(&r, &r)
        );
    }

    #[test]
    fn sparse_and_auto_backends_match() {
        let r = clique_relation(10, 5);
        let expected = SortMergeEngine.join_project(&r, &r);
        for backend in [HeavyBackend::Sparse, HeavyBackend::Auto] {
            let cfg = JoinConfig {
                heavy_backend: backend,
                delta_override: Some((2, 2)),
                ..JoinConfig::default()
            };
            assert_eq!(two_path_join_project(&r, &r, &cfg), expected, "{backend:?}");
        }
    }

    #[test]
    fn bitmat_path_matches() {
        let r = clique_relation(10, 5);
        let cfg = JoinConfig {
            heavy_backend: HeavyBackend::BitMatrix,
            delta_override: Some((2, 2)),
            ..JoinConfig::default()
        };
        assert_eq!(
            two_path_join_project(&r, &r, &cfg),
            SortMergeEngine.join_project(&r, &r)
        );
    }

    #[test]
    fn memory_cap_fallback_matches() {
        let r = clique_relation(10, 5);
        let cfg = JoinConfig {
            delta_override: Some((2, 2)),
            matrix_cell_cap: 0, // force the combinatorial heavy path
            ..JoinConfig::default()
        };
        assert_eq!(
            two_path_join_project(&r, &r, &cfg),
            SortMergeEngine.join_project(&r, &r)
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let mut edges = Vec::new();
        for i in 0..600u32 {
            edges.push(((i * 7) % 80, (i * 13) % 50));
        }
        let r = rel(&edges);
        let serial = two_path_join_project(&r, &r, &JoinConfig::with_deltas(3, 3));
        for threads in [2, 4, 8] {
            let cfg = JoinConfig {
                threads,
                delta_override: Some((3, 3)),
                ..JoinConfig::default()
            };
            assert_eq!(
                two_path_join_project(&r, &r, &cfg),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn counts_exact_on_clique() {
        let r = clique_relation(8, 4);
        let got = two_path_with_counts(&r, &r, 1, &JoinConfig::with_deltas(2, 2));
        let brute = brute_counts(&r, &r);
        assert_eq!(got.len(), brute.len());
        for (x, z, c) in got {
            assert_eq!(brute[&(x, z)], c, "pair ({x},{z})");
        }
    }

    #[test]
    fn counts_min_count_filters() {
        // (0,1) share 3 elements; (0,2) share 1.
        let r = rel(&[(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 2)]);
        let got = two_path_with_counts(&r, &r, 3, &JoinConfig::with_deltas(1, 1));
        let pairs: Vec<(Value, Value)> = got.iter().map(|&(x, z, _)| (x, z)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        for &(_, _, c) in &got {
            assert!(c >= 3);
        }
    }

    #[test]
    fn empty_inputs() {
        let r = rel(&[]);
        let s = rel(&[(0, 0)]);
        assert!(two_path_join_project(&r, &s, &JoinConfig::default()).is_empty());
        assert!(two_path_with_counts(&s, &r, 1, &JoinConfig::default()).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All threshold choices must produce the reference result.
        #[test]
        fn any_deltas_match_reference(
            r_edges in proptest::collection::vec((0u32..20, 0u32..15), 1..80),
            s_edges in proptest::collection::vec((0u32..20, 0u32..15), 1..80),
            d1 in 1u32..8,
            d2 in 1u32..8,
            threads in 1usize..3,
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            let cfg = JoinConfig {
                threads,
                delta_override: Some((d1, d2)),
                ..JoinConfig::default()
            };
            prop_assert_eq!(
                two_path_join_project(&r, &s, &cfg),
                SortMergeEngine.join_project(&r, &s)
            );
        }

        /// Counting variant is exact for every pair, at any thresholds.
        #[test]
        fn counts_always_exact(
            r_edges in proptest::collection::vec((0u32..15, 0u32..12), 1..60),
            s_edges in proptest::collection::vec((0u32..15, 0u32..12), 1..60),
            d1 in 1u32..6,
            d2 in 1u32..6,
        ) {
            let r = rel(&r_edges);
            let s = rel(&s_edges);
            let cfg = JoinConfig::with_deltas(d1, d2);
            let got = two_path_with_counts(&r, &s, 1, &cfg);
            let brute = brute_counts(&r, &s);
            prop_assert_eq!(got.len(), brute.len());
            for (x, z, c) in got {
                prop_assert_eq!(brute[&(x, z)], c);
            }
        }
    }
}
