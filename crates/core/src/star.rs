//! MMJoin for star queries `Q*_k(x1,…,xk) = R1(x1,y), …, Rk(xk,y)` (§3.2).
//!
//! Tuples of each relation are split three ways with thresholds `Δ1, Δ2`:
//!
//! * `R⁻i` — tuples whose head `xi` is light (`deg ≤ Δ2`);
//! * `R⋄i` — tuples whose `y` is light (`deg ≤ Δ1`) in **all other**
//!   relations;
//! * `R⁺i` — the rest.
//!
//! Steps 1–2 run the WCOJ star join `k` times, substituting `R⁻j` (then
//! `R⋄j`) for one relation at a time, and project. Step 3 packs the
//! all-heavy tuples into two *grouped-variable* matrices: rows of `V` are
//! distinct half-tuples over `x1..x⌈k/2⌉`, rows of `W` over the remaining
//! variables, columns are the `y` values heavy in ≥ 2 relations (those are
//! exactly the witnesses steps 1–2 can miss); `V · Wᵀ` enumerates the heavy
//! output with witness counts.
//!
//! Correctness: an output tuple with witness `y` is found in step 1 if some
//! head is light, in step 2 if `y` is light in all-but-one relation, and
//! otherwise every head is heavy and `y` is heavy in ≥ 2 relations — step 3.

use crate::config::JoinConfig;
use mmjoin_api::PlanStats;
use mmjoin_matrix::{matmul_parallel_on, DenseMatrix};
use mmjoin_storage::{Relation, RelationBuilder, Value};
use mmjoin_wcoj::{
    full_join_count, star_full_join_for_each, star_join_project, ProjectionAccumulator,
};
use std::collections::HashMap;

/// Evaluates `π_{x1..xk}(R1 ⋈ … ⋈ Rk)` with the §3.2 algorithm, returning
/// sorted distinct tuples.
pub fn star_join_project_mm<R: AsRef<Relation>>(
    relations: &[R],
    config: &JoinConfig,
) -> Vec<Vec<Value>> {
    star_join_project_mm_with_stats(relations, config).0
}

/// [`star_join_project_mm`] plus the plan record of the run — the same
/// single decision sequence feeds both execution and the statistics, so
/// the reported thresholds are exactly the ones used (degenerate inputs
/// report no plan).
pub fn star_join_project_mm_with_stats<R: AsRef<Relation>>(
    relations: &[R],
    config: &JoinConfig,
) -> (Vec<Vec<Value>>, Option<PlanStats>) {
    assert!(
        !relations.is_empty(),
        "star query needs at least one relation"
    );
    if relations.iter().any(|r| r.as_ref().is_empty()) {
        return (Vec::new(), None);
    }
    if relations.len() == 1 {
        let out = relations[0]
            .as_ref()
            .by_x()
            .iter_nonempty()
            .map(|(x, _)| vec![x])
            .collect();
        return (out, Some(PlanStats::wcoj()));
    }
    if relations.len() == 2 {
        let (pairs, stats) = crate::two_path::two_path_join_project_with_stats(
            relations[0].as_ref(),
            relations[1].as_ref(),
            config,
        );
        let out = pairs.into_iter().map(|(x, z)| vec![x, z]).collect();
        return (out, stats);
    }

    let reduced = Relation::reduce_star(relations);
    if reduced.iter().any(|r| r.is_empty()) {
        return (Vec::new(), None);
    }
    let n = reduced.iter().map(|r| r.len()).max().unwrap() as u64;
    let full = full_join_count(&reduced);
    // Algorithm 3 line 2, star flavour: join already output-like.
    if config.delta_override.is_none() && full <= (config.wcoj_fallback_factor * n as f64) as u64 {
        return (star_join_project(&reduced), Some(PlanStats::wcoj()));
    }

    let (delta1, delta2) = match config.delta_override {
        Some(d) => d,
        None => choose_star_thresholds(&reduced, config),
    };

    let mut acc = ProjectionAccumulator::new(reduced.len());
    light_steps(&reduced, delta1, delta2, config, &mut acc);
    heavy_step(&reduced, delta1, delta2, config, &mut acc);
    (acc.finish(), Some(PlanStats::partitioned(delta1, delta2)))
}

/// Builds the `R⁻j` substitute: tuples with a light head.
fn build_minus(relations: &[Relation], j: usize, delta2: u32) -> Relation {
    let mut minus = RelationBuilder::with_domains(relations[j].x_domain(), relations[j].y_domain());
    for &(x, y) in relations[j].edges() {
        if relations[j].x_degree(x) <= delta2 as usize {
            minus.push(x, y);
        }
    }
    minus.build()
}

/// Builds the `R⋄j` substitute: tuples whose `y` is light in all other
/// relations.
fn build_diamond(relations: &[Relation], j: usize, delta1: u32) -> Relation {
    let mut diamond =
        RelationBuilder::with_domains(relations[j].x_domain(), relations[j].y_domain());
    for &(x, y) in relations[j].edges() {
        let light_elsewhere = relations.iter().enumerate().all(|(i, ri)| {
            i == j || (y as usize) >= ri.y_domain() || ri.y_degree(y) <= delta1 as usize
        });
        if light_elsewhere {
            diamond.push(x, y);
        }
    }
    diamond.build()
}

/// Steps 1–2: for each `j`, join with `R⁻j` (light heads) and `R⋄j`
/// (`y` light everywhere else) substituted. The `2k` substituted group
/// joins are independent, so with parallelism they run as executor tasks
/// each collecting into a private buffer, merged in job order.
fn light_steps(
    relations: &[Relation],
    delta1: u32,
    delta2: u32,
    config: &JoinConfig,
    acc: &mut ProjectionAccumulator,
) {
    let k = relations.len();
    let threads = config.effective_threads();
    if threads <= 1 {
        for j in 0..k {
            run_substituted(relations, j, build_minus(relations, j, delta2), acc);
            run_substituted(relations, j, build_diamond(relations, j, delta1), acc);
        }
        return;
    }
    let flats = config.exec().map(threads, 2 * k, |t| {
        let j = t / 2;
        let substitute = if t % 2 == 0 {
            build_minus(relations, j, delta2)
        } else {
            build_diamond(relations, j, delta1)
        };
        collect_substituted(relations, j, substitute, k)
    });
    for flat in flats {
        for tuple in flat.chunks_exact(k) {
            acc.push(tuple);
        }
    }
}

fn run_substituted(
    relations: &[Relation],
    j: usize,
    substitute: Relation,
    acc: &mut ProjectionAccumulator,
) {
    if substitute.is_empty() {
        return;
    }
    let mut working: Vec<Relation> = relations.to_vec();
    working[j] = substitute;
    star_full_join_for_each(&working, |_, tuple| acc.push(tuple));
}

/// [`run_substituted`] into a flat arity-`k` tuple buffer (the executor
/// tasks can't share the accumulator).
fn collect_substituted(
    relations: &[Relation],
    j: usize,
    substitute: Relation,
    k: usize,
) -> Vec<Value> {
    let mut flat: Vec<Value> = Vec::new();
    if substitute.is_empty() {
        return flat;
    }
    let mut working: Vec<Relation> = relations.to_vec();
    working[j] = substitute;
    star_full_join_for_each(&working, |_, tuple| {
        debug_assert_eq!(tuple.len(), k);
        flat.extend_from_slice(tuple);
    });
    flat
}

/// Step 3: grouped-variable matrices over the all-heavy core.
fn heavy_step(
    relations: &[Relation],
    delta1: u32,
    delta2: u32,
    config: &JoinConfig,
    acc: &mut ProjectionAccumulator,
) {
    let k = relations.len();
    let split = k.div_ceil(2);
    // Columns: y heavy (> Δ1) in at least two relations.
    let ydom = relations.iter().map(|r| r.y_domain()).min().unwrap();
    let mut heavy_y = Vec::new();
    for y in 0..ydom as Value {
        let heavy_in = relations
            .iter()
            .filter(|r| r.y_degree(y) > delta1 as usize)
            .count();
        if heavy_in >= 2 {
            heavy_y.push(y);
        }
    }
    if heavy_y.is_empty() {
        return;
    }

    // Per heavy y and relation: the heavy-head sublist.
    let heavy_list = |r: &Relation, y: Value| -> Vec<Value> {
        r.xs_of(y)
            .iter()
            .copied()
            .filter(|&x| r.x_degree(x) > delta2 as usize)
            .collect()
    };

    // Estimate row counts: Σ_y Π |H_i[y]| per group; bail to direct
    // enumeration when the cross products are too large for matrices.
    let mut row_est_a = 0u64;
    let mut row_est_b = 0u64;
    for &y in &heavy_y {
        let mut pa = 1u64;
        for r in &relations[..split] {
            pa = pa.saturating_mul(heavy_list(r, y).len() as u64);
        }
        let mut pb = 1u64;
        for r in &relations[split..] {
            pb = pb.saturating_mul(heavy_list(r, y).len() as u64);
        }
        row_est_a = row_est_a.saturating_add(pa);
        row_est_b = row_est_b.saturating_add(pb);
    }
    if row_est_a == 0 || row_est_b == 0 {
        return;
    }
    let cap = config.matrix_cell_cap as u64;
    if row_est_a.saturating_mul(heavy_y.len() as u64) > cap
        || row_est_b.saturating_mul(heavy_y.len() as u64) > cap
        || row_est_a.saturating_mul(row_est_b) > cap
    {
        // Direct heavy enumeration: cross products per heavy y, deduped by
        // the accumulator. Correct at any size, no dense allocation.
        for &y in &heavy_y {
            let lists: Vec<Vec<Value>> = relations.iter().map(|r| heavy_list(r, y)).collect();
            if lists.iter().any(|l| l.is_empty()) {
                continue;
            }
            cross_product_emit(&lists, &mut |tuple| acc.push(tuple));
        }
        return;
    }

    // Build row maps and matrices.
    let mut rows_a: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut rows_b: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut entries_a: Vec<(usize, usize)> = Vec::new(); // (row, y-col)
    let mut entries_b: Vec<(usize, usize)> = Vec::new();
    for (col, &y) in heavy_y.iter().enumerate() {
        let lists_a: Vec<Vec<Value>> = relations[..split]
            .iter()
            .map(|r| heavy_list(r, y))
            .collect();
        let lists_b: Vec<Vec<Value>> = relations[split..]
            .iter()
            .map(|r| heavy_list(r, y))
            .collect();
        if lists_a.iter().any(|l| l.is_empty()) || lists_b.iter().any(|l| l.is_empty()) {
            continue;
        }
        cross_product_emit(&lists_a, &mut |tuple| {
            let next = rows_a.len();
            let row = *rows_a.entry(tuple.to_vec()).or_insert(next);
            entries_a.push((row, col));
        });
        cross_product_emit(&lists_b, &mut |tuple| {
            let next = rows_b.len();
            let row = *rows_b.entry(tuple.to_vec()).or_insert(next);
            entries_b.push((row, col));
        });
    }
    if rows_a.is_empty() || rows_b.is_empty() {
        return;
    }
    let mut v = DenseMatrix::zeros(rows_a.len(), heavy_y.len());
    for (row, col) in entries_a {
        v.set(row, col, 1.0);
    }
    // W is built transposed (y rows × B-tuple columns) so the product is
    // V (A×y) · Wᵀ (y×B) directly.
    let mut wt = DenseMatrix::zeros(heavy_y.len(), rows_b.len());
    for (row, col) in entries_b {
        wt.set(col, row, 1.0);
    }
    let prod = matmul_parallel_on(config.exec(), &v, &wt, config.effective_threads());

    // Reverse row maps for tuple reconstruction.
    let mut tuple_a: Vec<Vec<Value>> = vec![Vec::new(); rows_a.len()];
    for (t, i) in rows_a {
        tuple_a[i] = t;
    }
    let mut tuple_b: Vec<Vec<Value>> = vec![Vec::new(); rows_b.len()];
    for (t, i) in rows_b {
        tuple_b[i] = t;
    }
    let mut tuple = vec![0 as Value; k];
    for (i, j, _) in prod.entries_at_least(0.5) {
        let (a, b) = (&tuple_a[i], &tuple_b[j]);
        tuple[..a.len()].copy_from_slice(a);
        tuple[a.len()..].copy_from_slice(b);
        acc.push(&tuple);
    }
}

/// Emits every tuple of the Cartesian product of `lists` via an odometer.
fn cross_product_emit(lists: &[Vec<Value>], f: &mut impl FnMut(&[Value])) {
    let k = lists.len();
    if lists.iter().any(|l| l.is_empty()) {
        return;
    }
    let mut idx = vec![0usize; k];
    let mut tuple = vec![0 as Value; k];
    'outer: loop {
        for i in 0..k {
            tuple[i] = lists[i][idx[i]];
        }
        f(&tuple);
        let mut d = k;
        loop {
            if d == 0 {
                break 'outer;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < lists[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Threshold search for the star query: evaluate a geometric grid of
/// `Δ = Δ1 = Δ2` candidates (the boundary regime of §3.1 case 2) by the
/// *exact* light-join sizes plus the modelled matrix cost, keeping the
/// cheapest. Each candidate costs `O(k·(N + |dom(y)|))` to evaluate.
fn choose_star_thresholds(relations: &[Relation], config: &JoinConfig) -> (u32, u32) {
    let max_deg = relations
        .iter()
        .map(|r| {
            r.by_y()
                .iter_nonempty()
                .map(|(_, l)| l.len())
                .max()
                .unwrap_or(1)
        })
        .max()
        .unwrap_or(1) as u32;
    let cores = config.effective_threads();
    let mut best = (1u32, 1u32);
    let mut best_cost = f64::INFINITY;
    let mut delta = 1u32;
    while delta <= max_deg.saturating_mul(2) {
        let cost = star_plan_cost(relations, delta, cores, config);
        if cost < best_cost {
            best_cost = cost;
            best = (delta, delta);
        }
        delta = delta.saturating_mul(2);
    }
    best
}

/// Predicted work at `Δ1 = Δ2 = Δ`: exact sizes of the 2k light-substituted
/// joins of steps 1–2, plus nnz-aware matrix construction / multiplication /
/// extraction costs for step 3.
fn star_plan_cost(relations: &[Relation], delta: u32, cores: usize, config: &JoinConfig) -> f64 {
    let k = relations.len();
    let split = k.div_ceil(2);
    let ydom = relations.iter().map(|r| r.y_domain()).min().unwrap_or(0);
    // Per relation, per y: total degree and light-head degree.
    let mut deg = vec![vec![0f64; ydom]; k];
    let mut light_deg = vec![vec![0f64; ydom]; k];
    for (i, r) in relations.iter().enumerate() {
        for y in 0..ydom as Value {
            let d = r.y_degree(y);
            deg[i][y as usize] = d as f64;
            if d > 0 {
                let light = r
                    .xs_of(y)
                    .iter()
                    .filter(|&&x| r.x_degree(x) <= delta as usize)
                    .count();
                light_deg[i][y as usize] = light as f64;
            }
        }
    }
    let mut light_join = 0f64;
    let mut nnz_a = 0f64; // Σ_y Π_{i∈A} heavy-head degree
    let mut nnz_b = 0f64;
    let mut heavy_cols = 0usize;
    for y in 0..ydom {
        let degs: Vec<f64> = (0..k).map(|i| deg[i][y]).collect();
        if degs.contains(&0.0) {
            continue;
        }
        let product: f64 = degs.iter().product();
        // Step 1: R⁻j-substituted joins.
        for j in 0..k {
            if degs[j] > 0.0 {
                light_join += product / degs[j] * light_deg[j][y];
            }
        }
        // Step 2: R⋄j joins — y must be light in all i ≠ j.
        for j in 0..k {
            let light_elsewhere = (0..k).all(|i| i == j || degs[i] <= delta as f64);
            if light_elsewhere {
                light_join += product;
            }
        }
        // Step 3: heavy columns are y heavy in ≥ 2 relations.
        let heavy_in = degs.iter().filter(|&&d| d > delta as f64).count();
        if heavy_in >= 2 {
            heavy_cols += 1;
            let pa: f64 = (0..split).map(|i| degs[i] - light_deg[i][y]).product();
            let pb: f64 = (split..k).map(|i| degs[i] - light_deg[i][y]).product();
            nnz_a += pa.max(0.0);
            nnz_b += pb.max(0.0);
        }
    }
    let consts = config.cost_model.constants;
    // Row counts bounded by the nonzero masses.
    let rows_a = nnz_a.max(1.0).min(nnz_a);
    let rows_b = nnz_b.max(1.0).min(nnz_b);
    let gemm = config.cost_model.estimate_effective(nnz_a * rows_b, cores);
    // Hash-keyed row interning is ~10 inserts worth per nonzero.
    let construction = consts.t_insert * 10.0 * (nnz_a + nnz_b)
        + consts.t_seq * rows_a * rows_b
        + 0.1e-9 * (rows_a + rows_b) * heavy_cols as f64;
    // A light-step witness costs far more than one dense insert: leapfrog
    // advancement, the product odometer and the accumulator's amortised
    // sort add up to roughly an order of magnitude over `TI`.
    const WITNESS_FACTOR: f64 = 12.0;
    light_join * consts.t_insert * WITNESS_FACTOR + gemm + construction
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn clique(sets: u32, elems: u32, seed: u32) -> Relation {
        let mut edges = Vec::new();
        for x in 0..sets {
            for y in 0..elems {
                edges.push((x, (y + seed) % (elems + seed + 1)));
            }
        }
        rel(&edges)
    }

    #[test]
    fn k3_matches_reference_forced_deltas() {
        let r1 = clique(10, 5, 0);
        let r2 = clique(8, 5, 0);
        let r3 = clique(9, 5, 0);
        let rels = vec![r1, r2, r3];
        let expected = star_join_project(&rels);
        for (d1, d2) in [(1, 1), (2, 2), (1, 3), (4, 2), (50, 50)] {
            let cfg = JoinConfig::with_deltas(d1, d2);
            assert_eq!(star_join_project_mm(&rels, &cfg), expected, "Δ=({d1},{d2})");
        }
    }

    #[test]
    fn k3_matches_reference_with_optimizer() {
        let rels = vec![clique(12, 4, 0), clique(10, 4, 0), clique(11, 4, 0)];
        let cfg = JoinConfig {
            wcoj_fallback_factor: 1.0,
            ..JoinConfig::default()
        };
        assert_eq!(star_join_project_mm(&rels, &cfg), star_join_project(&rels));
    }

    #[test]
    fn k4_matches_reference() {
        // Example 3 of the paper uses k = 4.
        let rels = vec![
            clique(6, 3, 0),
            clique(5, 3, 0),
            clique(6, 3, 0),
            clique(4, 3, 0),
        ];
        let expected = star_join_project(&rels);
        let cfg = JoinConfig::with_deltas(1, 1);
        assert_eq!(star_join_project_mm(&rels, &cfg), expected);
    }

    #[test]
    fn k1_and_k2_delegate() {
        let r = rel(&[(0, 0), (1, 0), (5, 1)]);
        let out1 = star_join_project_mm(std::slice::from_ref(&r), &JoinConfig::default());
        assert_eq!(out1, vec![vec![0], vec![1], vec![5]]);
        let out2 = star_join_project_mm(&[r.clone(), r.clone()], &JoinConfig::default());
        assert_eq!(out2, star_join_project(&[r.clone(), r]));
    }

    #[test]
    fn empty_relation_short_circuits() {
        let r = rel(&[(0, 0)]);
        let empty = rel(&[]);
        assert!(star_join_project_mm(&[r, empty], &JoinConfig::default()).is_empty());
    }

    #[test]
    fn memory_cap_fallback_matches() {
        let rels = vec![clique(10, 4, 0), clique(9, 4, 0), clique(8, 4, 0)];
        let cfg = JoinConfig {
            delta_override: Some((1, 1)),
            matrix_cell_cap: 0,
            ..JoinConfig::default()
        };
        assert_eq!(star_join_project_mm(&rels, &cfg), star_join_project(&rels));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn k3_always_matches_reference(
            e1 in proptest::collection::vec((0u32..10, 0u32..8), 1..40),
            e2 in proptest::collection::vec((0u32..10, 0u32..8), 1..40),
            e3 in proptest::collection::vec((0u32..10, 0u32..8), 1..40),
            d1 in 1u32..5,
            d2 in 1u32..5,
        ) {
            let rels = vec![rel(&e1), rel(&e2), rel(&e3)];
            let cfg = JoinConfig::with_deltas(d1, d2);
            prop_assert_eq!(
                star_join_project_mm(&rels, &cfg),
                star_join_project(&rels)
            );
        }
    }
}
