//! Executes a composed [`GeneralPlan`]: materialises the intermediate
//! steps as [`Relation`]s and streams the final stage through the
//! caller's [`Sink`] (honouring [`Sink::wants_more`] early termination).
//!
//! Every join step runs the full 2-path machinery — degree partitioning,
//! light expansion, heavy matrix core — so a k-path chain is evaluated
//! as k−1 output-sensitive joins instead of one combinatorial blow-up.
//! When the last materialising join feeds a plain `(a, b)` projection it
//! is streamed straight into the sink, skipping the final
//! re-materialisation.
//!
//! Independent steps of the plan DAG run **concurrently**: execution
//! proceeds in topological wavefronts — every step whose inputs are
//! materialised runs as a task on the shared executor (which each step's
//! internal light/heavy parallelism also shares), and materialised
//! intermediates are handed to their consumers by move, never copied.
//! Per-step statistics are still reported in plan order.

use crate::config::JoinConfig;
use crate::plan::{plan_general, FinalStage, GeneralPlan, PlanStep, ProjCols};
use crate::star::star_join_project_mm_with_stats;
use crate::two_path::two_path_join_project_with_stats;
use mmjoin_api::ir::QueryGraph;
use mmjoin_api::{emit_pairs, emit_tuples, EngineError, PlanStats, Sink, StepStats};
use mmjoin_obs::trace::{self, Stage};
use mmjoin_storage::{Relation, RelationBuilder, Value};
use std::borrow::Cow;

/// Evaluates a general acyclic query, streaming distinct rows into
/// `sink`; returns `(rows emitted, plan stats)` with one
/// [`StepStats`] record per executed step (in plan order, regardless of
/// the wavefront schedule that actually ran them).
pub fn execute_general(
    graph: &QueryGraph<'_>,
    config: &JoinConfig,
    sink: &mut dyn Sink,
) -> Result<(u64, PlanStats), EngineError> {
    let plan = plan_general(graph).map_err(|e| EngineError::Plan(e.to_string()))?;

    // Per-node materialised relation: atoms borrow, steps own.
    let mut mats: Vec<Option<Cow<'_, Relation>>> = vec![None; plan.nodes.len()];
    for (i, atom) in graph.atoms().iter().enumerate() {
        mats[i] = Some(Cow::Borrowed(atom.relation));
    }

    let nsteps = plan.steps.len();
    let mut step_stats: Vec<Option<StepStats>> = vec![None; nsteps];
    let mut done = vec![false; nsteps];
    let mut remaining = nsteps;
    let mut final_primitive: Option<PlanStats> = None;
    let mut rows = 0u64;
    let mut streamed = false;
    let threads = config.effective_threads();

    while remaining > 0 {
        // The next wavefront: every unfinished step whose inputs are
        // materialised. Each node feeds exactly one consumer (the plan
        // is a contraction tree), so ready steps touch disjoint inputs.
        let ready: Vec<usize> = (0..nsteps)
            .filter(|&i| {
                !done[i]
                    && step_inputs(&plan.steps[i])
                        .iter()
                        .all(|&n| mats[n].is_some())
            })
            .collect();
        if ready.is_empty() {
            return Err(EngineError::Plan(
                "composed plan has no runnable step (not a DAG)".into(),
            ));
        }

        // The final step (always alone in the last wavefront — every
        // other step is its ancestor) may stream straight into the sink
        // when it is a join feeding a plain (a, b) projection.
        if remaining == 1 && ready == [nsteps - 1] {
            if let PlanStep::Join {
                left,
                right,
                on,
                result,
                estimate,
            } = plan.steps[nsteps - 1]
            {
                if matches!(
                    plan.final_stage,
                    FinalStage::Project { node, cols: ProjCols::Ab } if node == result
                ) {
                    let l = oriented(
                        mats[left].as_ref().expect("left materialised"),
                        plan.nodes[left].b == on,
                    );
                    let r = oriented(
                        mats[right].as_ref().expect("right materialised"),
                        plan.nodes[right].b == on,
                    );
                    let step_span =
                        trace::span_dyn(Stage::Step, || format!("join v{on} (final, streamed)"));
                    let (pairs, prim) = two_path_join_project_with_stats(&l, &r, config);
                    drop(step_span);
                    drop((l, r));
                    mats[left] = None;
                    mats[right] = None;
                    step_stats[nsteps - 1] =
                        Some(join_step_stat(on, estimate.rows, pairs.len() as u64, &prim));
                    rows = emit_pairs(sink, &pairs);
                    final_primitive = prim;
                    streamed = true;
                    break;
                }
            }
        }

        // Run the wavefront: serial when there is nothing to overlap,
        // otherwise as executor tasks reading the shared materialisation
        // table (results are written back on this thread afterwards).
        let ran: Vec<StepResult> = if ready.len() == 1 || threads <= 1 {
            ready
                .iter()
                .map(|&i| run_step(&plan, i, &mats, config))
                .collect()
        } else {
            config
                .exec()
                .map(threads.min(ready.len()), ready.len(), |t| {
                    run_step(&plan, ready[t], &mats, config)
                })
        };
        for (idx, result) in ready.into_iter().zip(ran) {
            for input in step_inputs(&plan.steps[idx]) {
                mats[input] = None;
            }
            mats[result.node] = Some(Cow::Owned(result.relation));
            step_stats[idx] = Some(result.stat);
            done[idx] = true;
            remaining -= 1;
        }
    }

    if !streamed {
        let (emitted, prim) = run_final_stage(&plan, &mats, graph, config, sink)?;
        rows = emitted;
        final_primitive = prim;
    }

    let mut stats = final_primitive.unwrap_or_else(PlanStats::wcoj);
    stats.estimated_out = Some(plan.estimated_rows);
    let mut step_stats: Vec<StepStats> = step_stats
        .into_iter()
        .map(|s| s.expect("every step executed"))
        .collect();
    step_stats.push(StepStats {
        op: match plan.final_stage {
            FinalStage::Project { .. } => "project",
            FinalStage::Star { .. } => "star",
        },
        on_var: match plan.final_stage {
            FinalStage::Star { center, .. } => Some(center),
            FinalStage::Project { .. } => None,
        },
        estimated_rows: Some(plan.estimated_rows),
        actual_rows: Some(rows),
        kind: Some(stats.kind),
        delta1: stats.delta1,
        delta2: stats.delta2,
    });
    stats.steps = step_stats;
    Ok((rows, stats))
}

/// The node ids a step consumes.
fn step_inputs(step: &PlanStep) -> [usize; 2] {
    match *step {
        PlanStep::Semijoin { target, filter, .. } => [target, filter],
        PlanStep::Join { left, right, .. } => [left, right],
    }
}

/// A wavefront task's outcome: the materialised result relation for
/// `node`, plus the step's statistics record.
struct StepResult {
    node: usize,
    relation: Relation,
    stat: StepStats,
}

/// The [`StepStats`] record of one executed join step.
fn join_step_stat(on: u32, estimated: u64, actual: u64, prim: &Option<PlanStats>) -> StepStats {
    let mut stat = StepStats {
        op: "join",
        on_var: Some(on),
        estimated_rows: Some(estimated),
        actual_rows: Some(actual),
        kind: None,
        delta1: None,
        delta2: None,
    };
    if let Some(p) = prim {
        stat.kind = Some(p.kind);
        stat.delta1 = p.delta1;
        stat.delta2 = p.delta2;
    }
    stat
}

/// Executes one plan step against the current materialisation table
/// (read-only — the caller hands results back into the table). Runs
/// either inline or as an executor task; any internal parallelism of the
/// 2-path primitive shares the same executor.
fn run_step(
    plan: &GeneralPlan,
    idx: usize,
    mats: &[Option<Cow<'_, Relation>>],
    config: &JoinConfig,
) -> StepResult {
    let _step_span = trace::span_dyn(Stage::Step, || match plan.steps[idx] {
        PlanStep::Semijoin { on, .. } => format!("semijoin v{on}"),
        PlanStep::Join { on, .. } => format!("join v{on}"),
    });
    match plan.steps[idx] {
        PlanStep::Semijoin {
            target,
            filter,
            on,
            result,
        } => {
            let filter_rel = mats[filter].as_ref().expect("filter materialised");
            let target_rel = mats[target].as_ref().expect("target materialised");
            let filtered = semijoin(
                target_rel,
                plan.nodes[target].a == on,
                filter_rel,
                plan.nodes[filter].a == on,
            );
            StepResult {
                node: result,
                stat: StepStats {
                    op: "semijoin",
                    on_var: Some(on),
                    estimated_rows: None,
                    actual_rows: Some(filtered.len() as u64),
                    kind: None,
                    delta1: None,
                    delta2: None,
                },
                relation: filtered,
            }
        }
        PlanStep::Join {
            left,
            right,
            on,
            result,
            estimate,
        } => {
            let l = oriented(
                mats[left].as_ref().expect("left materialised"),
                plan.nodes[left].b == on,
            );
            let r = oriented(
                mats[right].as_ref().expect("right materialised"),
                plan.nodes[right].b == on,
            );
            let (pairs, prim) = two_path_join_project_with_stats(&l, &r, config);
            drop((l, r));
            StepResult {
                node: result,
                stat: join_step_stat(on, estimate.rows, pairs.len() as u64, &prim),
                relation: Relation::from_edges(pairs),
            }
        }
    }
}

fn run_final_stage(
    plan: &GeneralPlan,
    mats: &[Option<Cow<'_, Relation>>],
    graph: &QueryGraph<'_>,
    config: &JoinConfig,
    sink: &mut dyn Sink,
) -> Result<(u64, Option<PlanStats>), EngineError> {
    match &plan.final_stage {
        FinalStage::Project { node, cols } => {
            let _span = trace::span(Stage::Step, "project (final)");
            let rel = mats[*node].as_ref().expect("final node materialised");
            Ok((project_stream(rel, *cols, sink), None))
        }
        FinalStage::Star { center, legs } => {
            let _span = trace::span_dyn(Stage::Step, || format!("star v{center} (final)"));
            let oriented_legs: Vec<Cow<'_, Relation>> = legs
                .iter()
                .map(|&id| {
                    oriented(
                        mats[id].as_ref().expect("leg materialised"),
                        plan.nodes[id].b == *center,
                    )
                })
                .collect();
            let refs: Vec<&Relation> = oriented_legs.iter().map(|c| c.as_ref()).collect();
            let (tuples, prim) = star_join_project_mm_with_stats(&refs, config);
            let rows = emit_tuples(sink, graph.output_arity(), &tuples);
            Ok((rows, prim))
        }
    }
}

/// Reorients `rel` so the join variable sits in the `y` column: identity
/// when it already does (`on_is_y`), transposed otherwise.
fn oriented(rel: &Relation, on_is_y: bool) -> Cow<'_, Relation> {
    if on_is_y {
        Cow::Borrowed(rel)
    } else {
        Cow::Owned(rel.transposed())
    }
}

/// `target ⋉ filter` on the named columns: keeps target tuples whose
/// join-column value has at least one occurrence in the filter.
fn semijoin(
    target: &Relation,
    target_on_x: bool,
    filter: &Relation,
    filter_on_x: bool,
) -> Relation {
    let occurs = |v: Value| -> bool {
        if filter_on_x {
            (v as usize) < filter.x_domain() && filter.x_degree(v) > 0
        } else {
            (v as usize) < filter.y_domain() && filter.y_degree(v) > 0
        }
    };
    let mut b = RelationBuilder::with_domains(target.x_domain(), target.y_domain());
    for &(x, y) in target.edges() {
        if occurs(if target_on_x { x } else { y }) {
            b.push(x, y);
        }
    }
    b.build()
}

/// Streams a column selection of `rel` into `sink` in sorted output
/// order, honouring `wants_more`.
fn project_stream(rel: &Relation, cols: ProjCols, sink: &mut dyn Sink) -> u64 {
    let arity = match cols {
        ProjCols::Ab | ProjCols::Ba => 2,
        ProjCols::A | ProjCols::B => 1,
    };
    sink.begin(arity);
    let mut rows = 0u64;
    let mut emit = |sink: &mut dyn Sink, row: &[Value]| -> bool {
        if !sink.wants_more() {
            return false;
        }
        sink.row(row);
        rows += 1;
        true
    };
    match cols {
        ProjCols::Ab => {
            for &(a, b) in rel.edges() {
                if !emit(sink, &[a, b]) {
                    break;
                }
            }
        }
        ProjCols::Ba => {
            // Sorted by (b, a): walk the inverted index.
            'outer: for (b, xs) in rel.by_y().iter_nonempty() {
                for &a in xs {
                    if !emit(sink, &[b, a]) {
                        break 'outer;
                    }
                }
            }
        }
        ProjCols::A => {
            for (a, _) in rel.by_x().iter_nonempty() {
                if !emit(sink, &[a]) {
                    break;
                }
            }
        }
        ProjCols::B => {
            for (b, _) in rel.by_y().iter_nonempty() {
                if !emit(sink, &[b]) {
                    break;
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_api::ir::Atom;
    use mmjoin_api::{LimitSink, VecSink};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    /// Reference: brute-force evaluation by backtracking over atoms.
    fn naive(graph: &QueryGraph<'_>) -> Vec<Vec<Value>> {
        let mut atoms: Vec<&Atom> = graph.atoms().iter().collect();
        // Reorder atoms so each one shares a variable with the prefix.
        let mut ordered: Vec<&Atom> = vec![atoms.remove(0)];
        while !atoms.is_empty() {
            let pos = atoms
                .iter()
                .position(|a| {
                    ordered
                        .iter()
                        .any(|o| [o.x, o.y].contains(&a.x) || [o.x, o.y].contains(&a.y))
                })
                .expect("connected graph");
            ordered.push(atoms.remove(pos));
        }
        let mut bindings: std::collections::BTreeMap<u32, Value> = Default::default();
        let mut out: std::collections::BTreeSet<Vec<Value>> = Default::default();
        fn go(
            ordered: &[&Atom],
            i: usize,
            bindings: &mut std::collections::BTreeMap<u32, Value>,
            projection: &[u32],
            out: &mut std::collections::BTreeSet<Vec<Value>>,
        ) {
            if i == ordered.len() {
                out.insert(projection.iter().map(|v| bindings[v]).collect());
                return;
            }
            let a = ordered[i];
            let (bx, by) = (bindings.get(&a.x).copied(), bindings.get(&a.y).copied());
            match (bx, by) {
                (Some(x), Some(y)) => {
                    if (x as usize) < a.relation.x_domain() && a.relation.contains(x, y) {
                        go(ordered, i + 1, bindings, projection, out);
                    }
                }
                (Some(x), None) => {
                    if (x as usize) < a.relation.x_domain() {
                        for &y in a.relation.ys_of(x) {
                            bindings.insert(a.y, y);
                            go(ordered, i + 1, bindings, projection, out);
                        }
                        bindings.remove(&a.y);
                    }
                }
                (None, Some(y)) => {
                    if (y as usize) < a.relation.y_domain() {
                        for &x in a.relation.xs_of(y) {
                            bindings.insert(a.x, x);
                            go(ordered, i + 1, bindings, projection, out);
                        }
                        bindings.remove(&a.x);
                    }
                }
                (None, None) => {
                    for &(x, y) in a.relation.edges() {
                        bindings.insert(a.x, x);
                        bindings.insert(a.y, y);
                        go(ordered, i + 1, bindings, projection, out);
                    }
                    bindings.remove(&a.x);
                    bindings.remove(&a.y);
                }
            }
        }
        go(&ordered, 0, &mut bindings, graph.projection(), &mut out);
        out.into_iter().collect()
    }

    fn run(graph: &QueryGraph<'_>) -> Vec<Vec<Value>> {
        let mut sink = VecSink::new();
        execute_general(graph, &JoinConfig::default(), &mut sink).unwrap();
        sink.rows
    }

    #[test]
    fn chain_matches_naive_reference() {
        let rels = vec![
            rel(&[(0, 0), (1, 0), (2, 1), (3, 2)]),
            rel(&[(0, 5), (1, 5), (2, 6)]),
            rel(&[(5, 9), (6, 8), (6, 9)]),
        ];
        let graph = QueryGraph::chain(&rels).unwrap();
        assert_eq!(run(&graph), naive(&graph));
    }

    #[test]
    fn two_path_constructor_matches_primitive() {
        let r = rel(&[(0, 0), (1, 0), (2, 1), (2, 0), (3, 1)]);
        let s = rel(&[(5, 0), (6, 1), (7, 0)]);
        let graph = QueryGraph::two_path(&r, &s);
        let expected: Vec<Vec<Value>> =
            crate::two_path::two_path_join_project(&r, &s, &JoinConfig::default())
                .into_iter()
                .map(|(a, b)| vec![a, b])
                .collect();
        assert_eq!(run(&graph), expected);
        assert_eq!(run(&graph), naive(&graph));
    }

    #[test]
    fn star_constructor_matches_primitive() {
        let rels = vec![
            rel(&[(0, 0), (1, 0), (2, 1)]),
            rel(&[(5, 0), (6, 1)]),
            rel(&[(8, 0), (9, 0), (9, 1)]),
        ];
        let graph = QueryGraph::star(&rels).unwrap();
        let expected = crate::star::star_join_project_mm(&rels, &JoinConfig::default());
        assert_eq!(run(&graph), expected);
        assert_eq!(run(&graph), naive(&graph));
    }

    #[test]
    fn snowflake_matches_naive_reference() {
        // Two rays of length 2 plus one direct leg around centre 9.
        let edge = rel(&[(0, 0), (1, 0), (1, 1), (2, 1), (0, 2)]);
        let atom = |x, y| Atom {
            relation: &edge,
            x,
            y,
        };
        let graph = QueryGraph::new(
            vec![atom(0, 4), atom(4, 9), atom(1, 5), atom(5, 9), atom(2, 9)],
            vec![0, 1, 2],
        )
        .unwrap();
        assert_eq!(run(&graph), naive(&graph));
    }

    #[test]
    fn pendant_and_single_column_projection() {
        // Q(z) :- R(x, y), S(z, y), T(z, w): one pendant, arity-1 output.
        let r = rel(&[(0, 0), (1, 1)]);
        let s = rel(&[(5, 0), (6, 1), (7, 3)]);
        let t = rel(&[(5, 2), (7, 0)]);
        let atom = |relation, x, y| Atom { relation, x, y };
        let graph = QueryGraph::new(
            vec![atom(&r, 0, 1), atom(&s, 2, 1), atom(&t, 2, 3)],
            vec![2],
        )
        .unwrap();
        assert_eq!(run(&graph), naive(&graph));
        assert_eq!(run(&graph), vec![vec![5]]);
    }

    #[test]
    fn limit_sink_stops_final_stream() {
        let rels = vec![
            rel(&(0..10).map(|i| (i, 0)).collect::<Vec<_>>()),
            rel(&(0..10).map(|i| (i, 0)).collect::<Vec<_>>()),
            rel(&(0..10).map(|i| (i, 0)).collect::<Vec<_>>()),
        ];
        let graph = QueryGraph::chain(&rels).unwrap();
        let mut sink = LimitSink::new(VecSink::new(), 7);
        let (rows, _) = execute_general(&graph, &JoinConfig::default(), &mut sink).unwrap();
        assert_eq!(rows, 7);
        assert!(sink.limit_reached());
    }

    #[test]
    fn parallel_wavefronts_match_serial() {
        use mmjoin_executor::Executor;
        use std::sync::Arc;
        // A 5-chain over skewed relations: the contraction tree contains
        // independent joins that execute in the same wavefront.
        let rels: Vec<Relation> = (0..5u32)
            .map(|r| {
                Relation::from_edges(
                    (0..300u32).map(move |i| ((i * (7 + r)) % 40, (i * (13 + r)) % 30)),
                )
            })
            .collect();
        let graph = QueryGraph::chain(&rels).unwrap();
        let mut serial_sink = VecSink::new();
        let (serial_rows, serial_stats) =
            execute_general(&graph, &JoinConfig::default(), &mut serial_sink).unwrap();
        for threads in [2usize, 4, 8] {
            let cfg = JoinConfig {
                threads,
                executor: Some(Arc::new(Executor::new(4))),
                ..JoinConfig::default()
            };
            let mut sink = VecSink::new();
            let (rows, stats) = execute_general(&graph, &cfg, &mut sink).unwrap();
            assert_eq!(rows, serial_rows, "threads={threads}");
            assert_eq!(sink.rows, serial_sink.rows, "threads={threads}");
            // Stats stay in plan order with identical per-step rows.
            let actuals = |s: &PlanStats| s.steps.iter().map(|t| t.actual_rows).collect::<Vec<_>>();
            assert_eq!(actuals(&stats), actuals(&serial_stats), "threads={threads}");
        }
    }

    #[test]
    fn stats_report_per_step_records() {
        let rels = vec![
            rel(&[(0, 0), (1, 0)]),
            rel(&[(0, 1), (1, 0)]),
            rel(&[(0, 0), (1, 1)]),
            rel(&[(1, 0), (0, 1)]),
        ];
        let graph = QueryGraph::chain(&rels).unwrap();
        let mut sink = VecSink::new();
        let (_, stats) = execute_general(&graph, &JoinConfig::default(), &mut sink).unwrap();
        assert_eq!(stats.steps.len(), 4, "3 joins + final project");
        assert!(stats.steps[..3].iter().all(|s| s.op == "join"));
        assert_eq!(stats.steps[3].op, "project");
        assert!(stats.steps.iter().all(|s| s.actual_rows.is_some()));
    }
}
