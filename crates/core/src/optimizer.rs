//! Algorithm 3 — the cost-based optimizer choosing degree thresholds.
//!
//! Given the threshold indexes of §5 (O(log N) queries for the light-part
//! work at any candidate `(Δ1, Δ2)`) and the calibrated matmul estimator
//! `M̂`, the optimizer walks `Δ1` down geometrically from `N`, couples
//! `Δ2 = N·Δ1 / |OUT|` (the balance point of Eq. 1's `N·Δ1` and `|OUT|·Δ2`
//! terms), evaluates the predicted light and heavy costs, and stops at the
//! first local minimum — exactly the loop of Algorithm 3. When the full join
//! is no larger than `20·N` (paper's constant) it skips partitioning
//! entirely and reports the plain-WCOJ plan.

use crate::config::JoinConfig;
use crate::estimate::{estimate_output_size, OutputEstimate};
use mmjoin_storage::{Relation, ThresholdIndexes};

/// Which execution strategy the optimizer picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// Full join + dedup via the combinatorial WCOJ path (Algorithm 3
    /// line 3): the join is output-like already.
    Wcoj,
    /// Partitioned plan with the chosen degree thresholds.
    Mm {
        /// Join-variable (`y`) degree threshold `Δ1`.
        delta1: u32,
        /// Head-variable (`x`/`z`) degree threshold `Δ2`.
        delta2: u32,
    },
}

/// The optimizer's full decision record (for experiment logging).
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Chosen strategy.
    pub choice: PlanChoice,
    /// The output estimate that drove the choice.
    pub estimate: OutputEstimate,
    /// Predicted light-part seconds at the chosen thresholds (0 for WCOJ).
    pub predicted_light: f64,
    /// Predicted heavy-part seconds at the chosen thresholds (0 for WCOJ).
    pub predicted_heavy: f64,
    /// Number of candidate threshold pairs evaluated.
    pub iterations: usize,
    /// Name of the GEMM kernel the heavy path would dispatch to
    /// (`mmjoin_matrix::active_kernel`) — recorded so experiment logs and
    /// the misprediction gate can tell which kernel a plan was priced for.
    pub kernel: &'static str,
}

/// Geometric step for the Δ1 walk. The paper's footnote fixes ε = 0.95 in
/// `Δ1 ← (1-ε)·Δ1`; a 0.05× jump per step converges in very few, coarse
/// steps, so we use a finer 0.7× step (same asymptotics, better plans).
const DELTA1_STEP: f64 = 0.7;

/// Runs Algorithm 3 for the 2-path query over `r`, `s`.
pub fn choose_thresholds(r: &Relation, s: &Relation, config: &JoinConfig) -> ExecutionPlan {
    let estimate = estimate_output_size(r, s);
    let n = r.len().max(s.len()).max(1) as f64;

    // Line 2: small full join ⇒ plain WCOJ plan.
    if (estimate.full_join as f64) <= config.wcoj_fallback_factor * n {
        return ExecutionPlan {
            choice: PlanChoice::Wcoj,
            estimate,
            predicted_light: 0.0,
            predicted_heavy: 0.0,
            iterations: 0,
            kernel: mmjoin_matrix::active_kernel().name(),
        };
    }

    let ti = ThresholdIndexes::build(r, s);
    let consts = config.cost_model.constants;
    let out_est = estimate.estimate.max(1) as f64;
    let dom_x = r.active_x_count().max(1) as f64;
    let cores = config.effective_threads();

    let eval = |d1: u32, d2: u32| -> (f64, f64) {
        // Lines 10–11: light cost from the threshold indexes.
        let light = consts.t_insert * (ti.sum_y(d1) as f64 + ti.sum_x(d2) as f64)
            + consts.t_alloc * dom_x
            + consts.t_seq * ti.cdfx_y(d1) as f64;
        // Lines 12–13: heavy matrix cost. The GEMM term is priced by its
        // *effective* work — the kernel skips zero rows of M1, so the madds
        // executed are ≈ nnz(M1)·w, bounded by the heavy tuple mass of R —
        // plus the zero-branch scan of M1, the (calloc-cheap) matrix
        // allocations, and the product-extraction scan of all u·w cells
        // (the paper's `Tm·(u·v + u·w)` term).
        let (u, v, w) = ti.heavy_counts(d1, d2);
        let (uf, vf, wf) = (u as f64, v as f64, w as f64);
        let nnz_m1 = (ti.x.degree_sum_gt(d2) as f64).min(uf * vf);
        let gemm = config.cost_model.estimate_effective(nnz_m1 * wf, cores);
        let heavy = gemm
            + consts.t_seq * (uf * vf + uf * wf)
            + 0.1e-9 * (uf * vf + vf * wf + uf * wf)
            + consts.t_insert * (uf * wf).min(out_est);
        (light, heavy)
    };

    // Walk Δ1 geometrically down from the largest join-variable degree
    // (values above it are all equivalent to "everything light"). For each
    // Δ1 evaluate both the coupled Δ2 = N·Δ1/|OUT| (balancing Eq. 1's
    // N·Δ1 and |OUT|·Δ2 terms) and the boundary Δ2 = Δ1 (§3.1 case 2), and
    // keep the global minimum. The paper stops at the first local minimum;
    // scanning the whole O(log N)-point grid costs the same O(log² N)
    // index queries and is robust to plateaus.
    let max_deg = ti.y.max_degree().max(ti.y_r.max_degree()).max(2) as f64;
    let mut delta1 = max_deg;
    let mut best: Option<(u32, u32, f64, f64)> = None;
    let mut iterations = 0usize;
    while delta1 >= 1.0 && iterations < 256 {
        iterations += 1;
        let d1 = (delta1.round() as u32).max(1);
        let coupled = ((n * delta1 / out_est).round() as u32).clamp(1, n as u32);
        for d2 in [coupled, d1] {
            let (light, heavy) = eval(d1, d2);
            let better = match best {
                Some((_, _, bl, bh)) => light + heavy < bl + bh,
                None => true,
            };
            if better {
                best = Some((d1, d2, light, heavy));
            }
        }
        delta1 *= DELTA1_STEP;
    }
    let (d1, d2, light, heavy) = best.expect("at least one candidate evaluated");
    ExecutionPlan {
        choice: PlanChoice::Mm {
            delta1: d1,
            delta2: d2,
        },
        estimate,
        predicted_light: light,
        predicted_heavy: heavy,
        iterations,
        kernel: mmjoin_matrix::active_kernel().name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin_storage::{Relation, Value};

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn sparse_instance_picks_wcoj() {
        // Perfect matching: full join == N, way under 20·N.
        let edges: Vec<(Value, Value)> = (0..100).map(|i| (i, i)).collect();
        let r = rel(&edges);
        let plan = choose_thresholds(&r, &r, &JoinConfig::default());
        assert_eq!(plan.choice, PlanChoice::Wcoj);
        assert_eq!(plan.iterations, 0);
    }

    #[test]
    fn dense_instance_picks_mm() {
        // 60 sets over 4 shared elements: full join = 4·60² = 14400 >> 20·240.
        let mut edges = Vec::new();
        for x in 0..60u32 {
            for y in 0..4u32 {
                edges.push((x, y));
            }
        }
        let r = rel(&edges);
        let plan = choose_thresholds(&r, &r, &JoinConfig::default());
        match plan.choice {
            PlanChoice::Mm { delta1, delta2 } => {
                assert!(delta1 >= 1 && delta2 >= 1);
                assert!(plan.iterations >= 1);
            }
            PlanChoice::Wcoj => panic!("dense instance should partition: {plan:?}"),
        }
    }

    #[test]
    fn fallback_factor_respected() {
        // Full join is 20x input (3·400 vs 60 tuples): default factor 20
        // keeps WCOJ; factor 5 switches to MM.
        let mut edges = Vec::new();
        for x in 0..20u32 {
            for y in 0..3u32 {
                edges.push((x, y * 10));
            }
        }
        let r = rel(&edges);
        let default_plan = choose_thresholds(&r, &r, &JoinConfig::default());
        assert_eq!(default_plan.choice, PlanChoice::Wcoj);
        let tight = JoinConfig {
            wcoj_fallback_factor: 5.0,
            ..JoinConfig::default()
        };
        let tight_plan = choose_thresholds(&r, &r, &tight);
        assert!(matches!(tight_plan.choice, PlanChoice::Mm { .. }));
    }

    #[test]
    fn plan_records_dispatched_kernel() {
        let edges: Vec<(Value, Value)> = (0..10).map(|i| (i, i)).collect();
        let r = rel(&edges);
        let plan = choose_thresholds(&r, &r, &JoinConfig::default());
        assert_eq!(plan.kernel, mmjoin_matrix::active_kernel().name());
    }

    #[test]
    fn predicted_costs_nonnegative() {
        let mut edges = Vec::new();
        for x in 0..50u32 {
            for y in 0..5u32 {
                edges.push((x, y));
            }
        }
        let r = rel(&edges);
        let cfg = JoinConfig {
            wcoj_fallback_factor: 1.0,
            ..JoinConfig::default()
        };
        let plan = choose_thresholds(&r, &r, &cfg);
        assert!(plan.predicted_light >= 0.0);
        assert!(plan.predicted_heavy >= 0.0);
    }
}
