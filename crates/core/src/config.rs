//! Execution configuration for the MMJoin engine.

use mmjoin_executor::Executor;
use mmjoin_matrix::CostModel;
use std::sync::Arc;

/// Which kernel evaluates the heavy-core product of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeavyBackend {
    /// Cache-blocked dense f32 GEMM (the paper's SGEMM path).
    #[default]
    DenseF32,
    /// Bit-packed boolean product — existence only, no counts (extension).
    BitMatrix,
    /// Row-wise Gustavson SpGEMM over CSR operands — wins when the heavy
    /// block is very sparse (Amossen–Pagh's regime; extension).
    Sparse,
    /// Pick [`HeavyBackend::Sparse`] when the heavy block density is below
    /// 2%, [`HeavyBackend::DenseF32`] otherwise.
    Auto,
}

/// Configuration shared by the 2-path and star MMJoin evaluators.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Requested parallelism for the light-part expansion, the matrix
    /// multiplication, and composed-plan wavefronts. Normalized once by
    /// [`JoinConfig::effective_threads`]: `0` means "the executor's full
    /// thread budget", `1` means serial, `n` means `n` threads. Actual
    /// concurrency is arbitrated by the shared executor's token budget.
    pub threads: usize,
    /// The executor running this configuration's parallel work; `None`
    /// uses the process-global pool. Services install their own so one
    /// budget governs all in-flight queries.
    pub executor: Option<Arc<Executor>>,
    /// Calibrated matmul cost model driving Algorithm 3. The default is the
    /// deterministic analytic model; experiment binaries install a measured
    /// calibration (`CostModel::calibrate`).
    pub cost_model: CostModel,
    /// Force the degree thresholds `(Δ1, Δ2)` instead of running the
    /// optimizer — used by tests and the ablation benchmarks.
    pub delta_override: Option<(u32, u32)>,
    /// Algorithm 3 line 2: when the full join size is at most this factor
    /// times the input size, skip partitioning entirely and run the plain
    /// WCOJ + dedup plan. The paper uses 20.
    pub wcoj_fallback_factor: f64,
    /// Heavy-core multiplication kernel (ablated in `bench/ablation`).
    pub heavy_backend: HeavyBackend,
    /// Safety cap on total dense-matrix cells (`u·v + v·w + u·w`); above it
    /// the heavy part falls back to combinatorial expansion instead of
    /// allocating matrices that would not fit in memory.
    pub matrix_cell_cap: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            executor: None,
            cost_model: CostModel::analytic_default(),
            delta_override: None,
            wcoj_fallback_factor: 20.0,
            heavy_backend: HeavyBackend::default(),
            matrix_cell_cap: 200_000_000,
        }
    }
}

impl JoinConfig {
    /// Convenience: default config with fixed thresholds.
    pub fn with_deltas(delta1: u32, delta2: u32) -> Self {
        Self {
            delta_override: Some((delta1, delta2)),
            ..Self::default()
        }
    }

    /// The executor this configuration's parallel primitives run on.
    pub fn exec(&self) -> &Executor {
        match &self.executor {
            Some(exec) => exec,
            None => Executor::global(),
        }
    }

    /// The single normalization point for [`JoinConfig::threads`]:
    /// `0` ⇒ the executor's thread budget (all available parallelism),
    /// `1` ⇒ serial, `n` ⇒ `n`. Every evaluator resolves its worker
    /// count here — there are no scattered `.max(1)` fallbacks.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => self.exec().budget(),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_with_paper_fallback() {
        let c = JoinConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.wcoj_fallback_factor, 20.0);
        assert!(c.delta_override.is_none());
        assert_eq!(c.heavy_backend, HeavyBackend::DenseF32);
    }

    #[test]
    fn with_deltas_sets_override() {
        let c = JoinConfig::with_deltas(4, 9);
        assert_eq!(c.delta_override, Some((4, 9)));
    }

    #[test]
    fn effective_threads_normalizes_zero_and_n() {
        let auto = JoinConfig {
            threads: 0,
            ..JoinConfig::default()
        };
        assert_eq!(auto.effective_threads(), auto.exec().budget());
        let budgeted = JoinConfig {
            threads: 0,
            executor: Some(Arc::new(Executor::new(3))),
            ..JoinConfig::default()
        };
        assert_eq!(budgeted.effective_threads(), 3);
        for n in [1usize, 2, 7] {
            let c = JoinConfig {
                threads: n,
                ..JoinConfig::default()
            };
            assert_eq!(c.effective_threads(), n);
        }
    }
}
