//! Execution configuration for the MMJoin engine.

use mmjoin_executor::Executor;
use mmjoin_matrix::CostModel;
use std::sync::Arc;

/// Which kernel evaluates the heavy-core product of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeavyBackend {
    /// Cache-blocked dense f32 GEMM (the paper's SGEMM path).
    #[default]
    DenseF32,
    /// Bit-packed boolean product — existence only, no counts (extension).
    BitMatrix,
    /// Row-wise Gustavson SpGEMM over CSR operands — wins when the heavy
    /// block is very sparse (Amossen–Pagh's regime; extension).
    Sparse,
    /// Pick [`HeavyBackend::Sparse`] when the heavy block density is below
    /// 2%, [`HeavyBackend::DenseF32`] otherwise.
    Auto,
}

/// Configuration shared by the 2-path and star MMJoin evaluators.
#[derive(Debug, Clone)]
pub struct JoinConfig {
    /// Requested parallelism for the light-part expansion, the matrix
    /// multiplication, and composed-plan wavefronts. Normalized once by
    /// [`JoinConfig::effective_threads`]: `0` means "the executor's full
    /// thread budget", `1` means serial, `n` means `n` threads. Actual
    /// concurrency is arbitrated by the shared executor's token budget.
    pub threads: usize,
    /// The executor running this configuration's parallel work; `None`
    /// uses the process-global pool. Services install their own so one
    /// budget governs all in-flight queries.
    pub executor: Option<Arc<Executor>>,
    /// Calibrated matmul cost model driving Algorithm 3. The default is the
    /// deterministic analytic model; experiment binaries install a measured
    /// calibration (`CostModel::calibrate`).
    pub cost_model: CostModel,
    /// Force the degree thresholds `(Δ1, Δ2)` instead of running the
    /// optimizer — used by tests and the ablation benchmarks.
    pub delta_override: Option<(u32, u32)>,
    /// Algorithm 3 line 2: when the full join size is at most this factor
    /// times the input size, skip partitioning entirely and run the plain
    /// WCOJ + dedup plan. The paper uses 20.
    pub wcoj_fallback_factor: f64,
    /// Heavy-core multiplication kernel (ablated in `bench/ablation`).
    pub heavy_backend: HeavyBackend,
    /// Safety cap on total dense-matrix cells (`u·v + v·w + u·w`); above it
    /// the heavy part falls back to combinatorial expansion instead of
    /// allocating matrices that would not fit in memory.
    pub matrix_cell_cap: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            executor: None,
            cost_model: CostModel::analytic_default(),
            delta_override: None,
            wcoj_fallback_factor: 20.0,
            heavy_backend: HeavyBackend::default(),
            matrix_cell_cap: 200_000_000,
        }
    }
}

impl JoinConfig {
    /// Convenience: default config with fixed thresholds.
    pub fn with_deltas(delta1: u32, delta2: u32) -> Self {
        Self {
            delta_override: Some((delta1, delta2)),
            ..Self::default()
        }
    }

    /// The executor this configuration's parallel primitives run on.
    pub fn exec(&self) -> &Executor {
        match &self.executor {
            Some(exec) => exec,
            None => Executor::global(),
        }
    }

    /// The single normalization point for [`JoinConfig::threads`]:
    /// `0` ⇒ the executor's thread budget (all available parallelism),
    /// `1` ⇒ serial, `n` ⇒ `n`. Every evaluator resolves its worker
    /// count here — there are no scattered `.max(1)` fallbacks.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => self.exec().budget(),
            n => n,
        }
    }

    /// Installs a measured cost model and re-derives the strategy
    /// crossover from it.
    ///
    /// The Algorithm 3 line-2 short-circuit (`wcoj_fallback_factor`) encodes
    /// "the matrix path only pays off once the full join is ≳ F× the input".
    /// The paper's F = 20 assumes the analytic reference throughput; a
    /// calibrated model reporting [`CostModel::speed_vs_reference`] = r
    /// shifts the crossover by the matrix path's *effective* speedup. Only
    /// part of that path is kernel time — partitioning, adjacency
    /// construction and result handling are memory-bound and do not scale
    /// with GEMM throughput — so the shift is Amdahl-damped by
    /// [`Self::MM_GEMM_FRACTION`] rather than applied linearly (the
    /// `experiments crossover` sweep shows the forced matrix-path time is
    /// nearly flat across the sweep while the WCOJ time grows with the
    /// full join; a linear `20 / r` over-shifts the crossover and trips
    /// the misprediction gate). Clamped to [2, 200] so a wild calibration
    /// sample cannot disable either strategy outright.
    ///
    /// When this configuration will actually run GEMM in parallel
    /// (`effective_threads() > 1`), the kernel-time fraction additionally
    /// shrinks by the model's *measured* multi-core speedup at that
    /// thread count — the parallel scheduler speeds up only the GEMM
    /// term, so the shift composes multiplicatively with the single-core
    /// speed before the Amdahl damping. A serial config (the default)
    /// gets no parallel shift, and a model without multi-core samples
    /// contributes the analytic curve only until a cores sweep is
    /// installed.
    pub fn install_measured_model(&mut self, model: CostModel) {
        let speed = model.speed_vs_reference();
        if speed.is_finite() && speed > 0.0 {
            let cores = self.effective_threads();
            let par = if cores > 1 {
                model.speedup(cores).max(1.0)
            } else {
                1.0
            };
            let r = speed * par;
            let effective = 1.0 / (Self::MM_GEMM_FRACTION / r + (1.0 - Self::MM_GEMM_FRACTION));
            self.wcoj_fallback_factor = (Self::MEASURED_CROSSOVER_F / effective).clamp(2.0, 200.0);
        }
        self.cost_model = model;
    }

    /// Fraction of the matrix-path runtime that is GEMM kernel time at
    /// crossover-scale inputs (the rest is partitioning and result
    /// bookkeeping). Used by [`Self::install_measured_model`] to damp how
    /// far a measured kernel speed moves the strategy crossover.
    pub const MM_GEMM_FRACTION: f64 = 0.25;

    /// The crossover factor this implementation exhibits at reference
    /// kernel throughput, measured with `experiments crossover` on the
    /// dense-hub reference family (the scalar-kernel sweep times the two
    /// forced strategies to a dead tie near `full join / N ≈ 46`; the
    /// reference throughput sits below that box's scalar kernel, which
    /// scales the measured tie back up by the calibration ratio). It is
    /// ~3× the paper's analytic F = 20 (which stays as the uncalibrated
    /// default) because the partitioned plan's light path — threshold
    /// indexes plus hash inserts — costs several× a plain WCOJ probe per
    /// tuple, so the matrix plan only pays off once the heavy core
    /// dominates outright.
    pub const MEASURED_CROSSOVER_F: f64 = 62.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial_with_paper_fallback() {
        let c = JoinConfig::default();
        assert_eq!(c.threads, 1);
        assert_eq!(c.wcoj_fallback_factor, 20.0);
        assert!(c.delta_override.is_none());
        assert_eq!(c.heavy_backend, HeavyBackend::DenseF32);
    }

    #[test]
    fn with_deltas_sets_override() {
        let c = JoinConfig::with_deltas(4, 9);
        assert_eq!(c.delta_override, Some((4, 9)));
    }

    #[test]
    fn install_measured_model_rederives_crossover() {
        use mmjoin_matrix::cost::{Sample, SystemConstants};
        // A sample 4× faster than the 20 GFLOP/s reference: p=512 at
        // 1 core → reference time = 2·512³/20e9 s; quarter it.
        let p = 512usize;
        let reference = 2.0 * (p as f64).powi(3) / 20.0e9;
        let fast = CostModel::from_samples(
            vec![Sample {
                p,
                cores: 1,
                seconds: reference / 4.0,
            }],
            SystemConstants::default(),
        );
        let mut c = JoinConfig::default();
        c.install_measured_model(fast);
        // Amdahl-damped: with MM_GEMM_FRACTION of the path at 4× speed,
        // the effective matrix-path speedup is 1 / (0.25/4 + 0.75) and
        // the measured base crossover shifts by that — not by 4×.
        let expected =
            JoinConfig::MEASURED_CROSSOVER_F * (JoinConfig::MM_GEMM_FRACTION / 4.0 + 0.75);
        assert!(
            (c.wcoj_fallback_factor - expected).abs() < 1e-6,
            "4× kernel speed should damp the crossover to {expected}, got {}",
            c.wcoj_fallback_factor
        );
        assert!(
            c.wcoj_fallback_factor < JoinConfig::MEASURED_CROSSOVER_F,
            "faster kernel must still lower the crossover"
        );
        // A pathologically slow sample clamps instead of exploding.
        let slow = CostModel::from_samples(
            vec![Sample {
                p,
                cores: 1,
                seconds: reference * 1000.0,
            }],
            SystemConstants::default(),
        );
        let mut c = JoinConfig::default();
        c.install_measured_model(slow);
        assert_eq!(c.wcoj_fallback_factor, 200.0);
    }

    #[test]
    fn install_measured_model_damps_by_measured_parallel_speedup() {
        use mmjoin_matrix::cost::{Sample, SystemConstants};
        // Reference-speed single-core sample plus a measured 3× speedup
        // at 8 cores — the curve the cores sweep would produce.
        let p = 512usize;
        let reference = 2.0 * (p as f64).powi(3) / 20.0e9;
        let model = CostModel::from_samples(
            vec![
                Sample {
                    p,
                    cores: 1,
                    seconds: reference,
                },
                Sample {
                    p,
                    cores: 8,
                    seconds: reference / 3.0,
                },
            ],
            SystemConstants::default(),
        );
        // Serial config: parallel speedup must not shift the crossover.
        let mut serial = JoinConfig::default();
        serial.install_measured_model(model.clone());
        assert!(
            (serial.wcoj_fallback_factor - JoinConfig::MEASURED_CROSSOVER_F).abs() < 1e-6,
            "threads=1 must ignore the parallel curve, got {}",
            serial.wcoj_fallback_factor
        );
        // 8-thread config: the GEMM fraction runs 3× faster (measured,
        // not the analytic 6.6×), so the crossover drops by the
        // Amdahl-damped factor of r = 3.
        let mut par = JoinConfig {
            threads: 8,
            ..JoinConfig::default()
        };
        par.install_measured_model(model);
        let expected =
            JoinConfig::MEASURED_CROSSOVER_F * (JoinConfig::MM_GEMM_FRACTION / 3.0 + 0.75);
        assert!(
            (par.wcoj_fallback_factor - expected).abs() < 1e-6,
            "8 threads at measured 3× should damp to {expected}, got {}",
            par.wcoj_fallback_factor
        );
        assert!(par.wcoj_fallback_factor < serial.wcoj_fallback_factor);
    }

    #[test]
    fn effective_threads_normalizes_zero_and_n() {
        let auto = JoinConfig {
            threads: 0,
            ..JoinConfig::default()
        };
        assert_eq!(auto.effective_threads(), auto.exec().budget());
        let budgeted = JoinConfig {
            threads: 0,
            executor: Some(Arc::new(Executor::new(3))),
            ..JoinConfig::default()
        };
        assert_eq!(budgeted.effective_threads(), 3);
        for n in [1usize, 2, 7] {
            let c = JoinConfig {
                threads: n,
                ..JoinConfig::default()
            };
            assert_eq!(c.effective_threads(), n);
        }
    }
}
