//! `mmjoin-core` — output-sensitive join-project evaluation using matrix
//! multiplication.
//!
//! This crate implements the primary contribution of *Fast Join Project
//! Query Evaluation using Matrix Multiplication* (Deep, Hu, Koutris —
//! SIGMOD 2020):
//!
//! * [`two_path`] — Algorithm 1 for the 2-path query
//!   `Q(x, z) = R(x, y), S(z, y)`: degree-based partitioning into light and
//!   heavy parts, worst-case-optimal expansion for the light parts, dense
//!   matrix multiplication for the heavy core. Includes the counting variant
//!   that reports `|ys(x) ∩ ys(z)|` per output pair (the similarity joins
//!   build on it).
//! * [`star`] — the §3.2 generalisation to star queries `Q*_k` with grouped
//!   variable matrices `V` and `W`.
//! * [`estimate`] — the §5 output-size estimator.
//! * [`optimizer`] — Algorithm 3, the cost-based search for the degree
//!   thresholds `Δ1, Δ2` driven by the calibrated matmul cost model.
//! * [`MmJoinEngine`] — the packaged engine implementing the
//!   [`TwoPathEngine`](mmjoin_baseline::TwoPathEngine) and
//!   [`StarEngine`](mmjoin_baseline::StarEngine) traits used across the
//!   workspace's experiments.
//!
//! # Quick example
//!
//! ```
//! use mmjoin_core::{JoinConfig, MmJoinEngine};
//! use mmjoin_baseline::TwoPathEngine;
//! use mmjoin_storage::Relation;
//!
//! // Friend-of-friend pairs (Example 1 of the paper): a tiny 2-community
//! // graph where the full join has many duplicates.
//! let r = Relation::from_edges([(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
//! let engine = MmJoinEngine::new(JoinConfig::default());
//! let pairs = engine.join_project(&r, &r);
//! assert_eq!(pairs.len(), 9); // all 3×3 pairs share a friend
//! ```

pub mod config;
pub mod estimate;
pub mod optimizer;
pub mod star;
pub mod two_path;

pub use config::{HeavyBackend, JoinConfig};
pub use estimate::{estimate_output_size, OutputEstimate};
pub use optimizer::{choose_thresholds, ExecutionPlan, PlanChoice};
pub use star::star_join_project_mm;
pub use two_path::{two_path_join_project, two_path_with_counts};

use mmjoin_baseline::{StarEngine, TwoPathEngine};
use mmjoin_storage::{Relation, Value};

/// The packaged MMJoin engine: Algorithm 1 + Algorithm 3 behind the common
/// engine traits.
#[derive(Debug, Clone, Default)]
pub struct MmJoinEngine {
    /// Execution configuration (threads, cost model, overrides).
    pub config: JoinConfig,
}

impl MmJoinEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: JoinConfig) -> Self {
        Self { config }
    }

    /// Serial engine with default configuration.
    pub fn serial() -> Self {
        Self::new(JoinConfig::default())
    }

    /// Engine on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self::new(JoinConfig {
            threads,
            ..JoinConfig::default()
        })
    }
}

impl TwoPathEngine for MmJoinEngine {
    fn name(&self) -> &'static str {
        "MMJoin"
    }

    fn join_project(&self, r: &Relation, s: &Relation) -> Vec<(Value, Value)> {
        two_path_join_project(r, s, &self.config)
    }
}

impl StarEngine for MmJoinEngine {
    fn name(&self) -> &'static str {
        "MMJoin"
    }

    fn star_join_project(&self, relations: &[Relation]) -> Vec<Vec<Value>> {
        star_join_project_mm(relations, &self.config)
    }
}
