//! `mmjoin-core` — output-sensitive join-project evaluation using matrix
//! multiplication.
//!
//! This crate implements the primary contribution of *Fast Join Project
//! Query Evaluation using Matrix Multiplication* (Deep, Hu, Koutris —
//! SIGMOD 2020) and packages it as [`MmJoinEngine`], the workspace's
//! universal engine behind the unified [`mmjoin_api`] front door: one
//! `Query` in, streamed rows out, [`ExecStats`](mmjoin_api::ExecStats)
//! (plan choice, chosen `(Δ1, Δ2)`, heavy/light split) back.
//!
//! * [`two_path`] — Algorithm 1 for the 2-path query
//!   `Q(x, z) = R(x, y), S(z, y)`: degree-based partitioning into light and
//!   heavy parts, worst-case-optimal expansion for the light parts, dense
//!   matrix multiplication for the heavy core. Includes the counting variant
//!   that reports `|ys(x) ∩ ys(z)|` per output pair (the similarity joins
//!   build on it).
//! * [`star`] — the §3.2 generalisation to star queries `Q*_k`.
//! * [`plan`] / [`compose`] — the decomposing planner and executor for
//!   general acyclic join-project queries (`Query::General`): a
//!   [`QueryGraph`](mmjoin_api::QueryGraph) is lowered into a DAG of
//!   2-path steps, semijoin reductions and one final star step, ordered
//!   by the §5 estimates.
//! * [`estimate`] — the §5 output-size estimator.
//! * [`optimizer`] — Algorithm 3, the cost-based search for the degree
//!   thresholds `Δ1, Δ2` driven by the calibrated matmul cost model.
//! * [`engine_impl`] — the [`Engine`](mmjoin_api::Engine) implementation
//!   covering all four workload families (2-path, star, similarity join,
//!   containment join).
//!
//! # Quick example
//!
//! Every workload goes through the same three steps: build a
//! [`Query`](mmjoin_api::Query), pick an engine, execute into a
//! [`Sink`](mmjoin_api::Sink).
//!
//! ```
//! use mmjoin_api::{Engine, PairSink, Query};
//! use mmjoin_core::{JoinConfig, MmJoinEngine};
//! use mmjoin_storage::Relation;
//!
//! // Friend-of-friend pairs (Example 1 of the paper): a tiny 2-community
//! // graph where the full join has many duplicates.
//! let r = Relation::from_edges([(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
//! let engine = MmJoinEngine::new(JoinConfig::default());
//!
//! let query = Query::two_path(&r, &r).build()?;
//! let mut sink = PairSink::new();
//! let stats = engine.execute(&query, &mut sink)?;
//! assert_eq!(sink.pairs.len(), 9); // all 3×3 pairs share a friend
//! assert_eq!(stats.rows, 9);
//!
//! // The same engine answers similarity joins through the same door:
//! let query = Query::similarity(&r, 2).build()?;
//! let mut sink = PairSink::new();
//! engine.execute(&query, &mut sink)?;
//! assert_eq!(sink.pairs.len(), 3); // each pair shares both hubs
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The free functions ([`two_path_join_project`], [`star_join_project_mm`],
//! …) remain available for callers that want the raw algorithms without
//! the engine layer.

pub mod compose;
pub mod config;
pub mod engine_impl;
pub mod estimate;
pub mod optimizer;
pub mod plan;
pub mod star;
pub mod two_path;

pub use compose::execute_general;
pub use config::{HeavyBackend, JoinConfig};
pub use estimate::{estimate_from_parts, estimate_output_size, OutputEstimate};
pub use optimizer::{choose_thresholds, ExecutionPlan, PlanChoice};
pub use plan::{plan_general, FinalStage, GeneralPlan, PlanError, PlanNode, PlanStep, ProjCols};
pub use star::{star_join_project_mm, star_join_project_mm_with_stats};
pub use two_path::{
    two_path_join_project, two_path_join_project_with_stats, two_path_with_counts,
    two_path_with_counts_stats,
};

/// The packaged MMJoin engine: Algorithm 1 + Algorithm 3 behind the
/// unified [`Engine`](mmjoin_api::Engine) trait (see [`engine_impl`]).
///
/// Execution configuration — threads, cost model, threshold overrides —
/// lives here, not in the query; the same engine value serves every
/// workload family.
#[derive(Debug, Clone, Default)]
pub struct MmJoinEngine {
    /// Execution configuration (threads, cost model, overrides).
    pub config: JoinConfig,
}

impl MmJoinEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: JoinConfig) -> Self {
        Self { config }
    }

    /// Serial engine with default configuration.
    pub fn serial() -> Self {
        Self::new(JoinConfig::default())
    }

    /// Engine on `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        Self::new(JoinConfig {
            threads,
            ..JoinConfig::default()
        })
    }
}
