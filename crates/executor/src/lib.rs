//! `mmjoin-executor` — the workspace's shared fork-join thread pool.
//!
//! Every parallel primitive in the workspace (light-pass expansion, the
//! dense GEMM bands, the star group loops, the composed-plan wavefronts)
//! used to spawn fresh `std::thread::scope` threads per call. Under a
//! concurrent service that oversubscribes badly: K in-flight queries each
//! assume they own `config.threads` cores. This crate replaces the ad-hoc
//! spawning with one fixed worker set sized by a **global thread budget**:
//!
//! * [`Executor::run`] executes `n` index-addressed tasks. The calling
//!   thread always participates (so progress never depends on pool
//!   capacity) and idle pool workers *steal* remaining task indices from
//!   the shared batch — chunk-granularity work stealing through one
//!   atomic cursor.
//! * **Token arbitration**: the pool holds `budget − 1` helper tokens.
//!   A batch is granted `min(parallelism − 1, tokens free)` helpers at
//!   submission; concurrent batches therefore *split* the budget instead
//!   of each assuming it owns the machine. Tokens return when the batch
//!   completes. A grant of zero degrades to inline serial execution.
//! * Results are deterministic: task decomposition is fixed by the caller
//!   (not by the grant), so outputs are identical at any pool size —
//!   the property the workspace's parallel-consistency suite asserts.
//!
//! Nesting is safe: a task may itself call [`Executor::run`]; the inner
//! call drains its own batch as a caller, so completion never waits on a
//! queued ticket (no circular wait, no deadlock). A panicking task is
//! caught on the worker, the batch still completes, and the panic resumes
//! on the submitting thread — pool workers are never lost.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

use mmjoin_obs::trace;

/// Acquires a mutex, recovering the guard if a previous holder panicked
/// (executor state is a queue of `Arc`s and plain counters — always
/// consistent between operations, so poisoning is recoverable).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One submitted fork-join batch: `tasks` index-addressed closure calls,
/// claimed via the `next` cursor by the caller and by any pool worker
/// holding one of the batch's tickets.
struct Batch {
    /// Type-erased task body. Raw pointer because the closure lives on
    /// the submitting caller's stack; see the safety argument on
    /// [`Batch::work`].
    f: *const (dyn Fn(usize) + Sync),
    tasks: usize,
    /// Next unclaimed task index (may overshoot `tasks`).
    next: AtomicUsize,
    /// Finished tasks (panicked ones included).
    completed: AtomicUsize,
    /// First panic payload, replayed on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

// SAFETY: `f` points at a `Sync` closure, so concurrent shared calls are
// fine; the pointer itself is only dereferenced under the liveness
// protocol documented on `Batch::work`.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and executes tasks until the batch is exhausted, returning
    /// how many tasks this thread executed (so pool workers can account
    /// the indices they stole from the submitting caller).
    ///
    /// # Safety (liveness of `f`)
    /// The closure behind `f` lives on the stack of the `Executor::run`
    /// call that created this batch, which does not return before
    /// `completed == tasks`. A claim `i < tasks` therefore
    /// happens-before the closure's death: the claimer will execute and
    /// then bump `completed` (release), and the submitter only observes
    /// `completed == tasks` (acquire) after every claimed call returned.
    /// Workers that claim `i >= tasks` never touch `f`.
    fn work(&self) -> usize {
        let mut executed = 0;
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                return executed;
            }
            executed += 1;
            // SAFETY: i < tasks, see above.
            let f = unsafe { &*self.f };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(i))) {
                lock(&self.panic).get_or_insert(payload);
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.tasks {
                // Lock-then-notify so the submitter can't check the
                // counter and sleep between our increment and the wake.
                let _g = lock(&self.done_lock);
                self.done.notify_all();
            }
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_available: Condvar,
    shutdown: AtomicBool,
    /// Helper tokens not currently granted to a batch.
    tokens_free: AtomicUsize,
    /// Batches submitted through [`Executor::run`] (tasks > 0).
    batches: AtomicU64,
    /// Task indices executed, across all batches.
    tasks_run: AtomicU64,
    /// Of those, tasks executed by pool workers rather than the
    /// submitting caller — the work-stealing volume.
    stolen_tasks: AtomicU64,
    /// Helper tokens granted across all batches.
    granted_tokens: AtomicU64,
    /// Batches that wanted helpers but were granted none and degraded
    /// to an inline serial loop (budget exhausted by concurrent work).
    inline_serial: AtomicU64,
}

/// Point-in-time counters for one [`Executor`] — surfaced by the
/// service's `stats executor` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Total thread budget (callers + pool workers).
    pub budget: usize,
    /// Helper tokens currently unclaimed.
    pub tokens_free: usize,
    /// Batches submitted.
    pub batches: u64,
    /// Task closure invocations.
    pub tasks: u64,
    /// Tasks executed by pool workers (stolen from the caller).
    pub stolen_tasks: u64,
    /// Helper tokens granted, summed over batches.
    pub granted_tokens: u64,
    /// Batches that degraded to inline serial on a zero grant.
    pub inline_serial: u64,
}

impl std::fmt::Display for ExecutorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget {} (tokens free {}), batches {}, tasks {} (stolen {}), \
             tokens granted {}, inline degradations {}",
            self.budget,
            self.tokens_free,
            self.batches,
            self.tasks,
            self.stolen_tasks,
            self.granted_tokens,
            self.inline_serial,
        )
    }
}

/// A fixed-size fork-join pool; see the crate docs.
///
/// The process-global instance ([`Executor::global`]) is sized by
/// `MMJOIN_THREADS` (when set) or the machine's available parallelism.
/// Subsystems that want their own budget (e.g. a [`Service`] arbitrating
/// intra- vs inter-query parallelism) construct one with
/// [`Executor::new`] and share it via `Arc`.
///
/// [`Service`]: https://docs.rs/mmjoin-service
pub struct Executor {
    shared: Arc<Shared>,
    budget: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("budget", &self.budget)
            .field("tokens_free", &self.tokens_free())
            .finish()
    }
}

impl Executor {
    /// A pool with `budget` total threads of parallelism: the caller of
    /// each [`run`](Executor::run) plus `budget − 1` pool workers.
    /// `budget = 0` means "all available parallelism".
    pub fn new(budget: usize) -> Self {
        let budget = if budget == 0 {
            available_parallelism()
        } else {
            budget
        };
        let helpers = budget.saturating_sub(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tokens_free: AtomicUsize::new(helpers),
            batches: AtomicU64::new(0),
            tasks_run: AtomicU64::new(0),
            stolen_tasks: AtomicU64::new(0),
            granted_tokens: AtomicU64::new(0),
            inline_serial: AtomicU64::new(0),
        });
        let workers = (0..helpers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mmjoin-exec-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Self {
            shared,
            budget,
            workers: Mutex::new(workers),
        }
    }

    /// The process-global executor, sized once from `MMJOIN_THREADS` or
    /// the available parallelism. Code paths without an explicitly
    /// plumbed executor run here.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let budget = std::env::var("MMJOIN_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(available_parallelism);
            Executor::new(budget)
        })
    }

    /// Total thread budget (callers + pool workers), at least 1.
    pub fn budget(&self) -> usize {
        self.budget.max(1)
    }

    /// Helper tokens currently unclaimed — `budget() − 1` when idle.
    pub fn tokens_free(&self) -> usize {
        self.shared.tokens_free.load(Ordering::Relaxed)
    }

    /// Snapshot of the pool's lifetime counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            budget: self.budget(),
            tokens_free: self.tokens_free(),
            batches: self.shared.batches.load(Ordering::Relaxed),
            tasks: self.shared.tasks_run.load(Ordering::Relaxed),
            stolen_tasks: self.shared.stolen_tasks.load(Ordering::Relaxed),
            granted_tokens: self.shared.granted_tokens.load(Ordering::Relaxed),
            inline_serial: self.shared.inline_serial.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the lifetime counters (`stats reset`); the token state is
    /// live bookkeeping and is left alone.
    pub fn reset_stats(&self) {
        self.shared.batches.store(0, Ordering::Relaxed);
        self.shared.tasks_run.store(0, Ordering::Relaxed);
        self.shared.stolen_tasks.store(0, Ordering::Relaxed);
        self.shared.granted_tokens.store(0, Ordering::Relaxed);
        self.shared.inline_serial.store(0, Ordering::Relaxed);
    }

    /// Takes up to `want` helper tokens, returning the grant.
    fn acquire_tokens(&self, want: usize) -> usize {
        let free = &self.shared.tokens_free;
        let mut cur = free.load(Ordering::Relaxed);
        loop {
            let take = want.min(cur);
            if take == 0 {
                return 0;
            }
            match free.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return take,
                Err(now) => cur = now,
            }
        }
    }

    fn release_tokens(&self, n: usize) {
        if n > 0 {
            self.shared.tokens_free.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Executes `f(0), f(1), …, f(tasks − 1)` with up to `parallelism`
    /// threads (the caller plus granted pool helpers), returning when
    /// every call has finished. The task decomposition — and therefore
    /// any output assembled per task index — is independent of the
    /// grant, so results are deterministic. Panics in any task resume on
    /// this thread after the batch completes.
    pub fn run<F: Fn(usize) + Sync>(&self, parallelism: usize, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        self.shared
            .tasks_run
            .fetch_add(tasks as u64, Ordering::Relaxed);
        let want_helpers = parallelism.max(1).min(tasks) - 1;
        let granted = if want_helpers == 0 {
            0
        } else {
            self.acquire_tokens(want_helpers)
        };
        if granted == 0 {
            if want_helpers > 0 {
                self.shared.inline_serial.fetch_add(1, Ordering::Relaxed);
            }
            // No helpers (serial request, exhausted budget, or a
            // zero-worker pool): plain inline loop, no erasure needed.
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        self.shared
            .granted_tokens
            .fetch_add(granted as u64, Ordering::Relaxed);

        // When the submitting thread is part of a trace, tasks executed
        // by pool workers must contribute their spans to the same trace:
        // wrap the body so each invocation installs (and panic-safely
        // restores) the submitter's ctx. The wrapper is chosen *before*
        // lifetime erasure, so a disabled tracer costs one atomic load
        // per batch and the raw closure runs unwrapped.
        match trace::current_if_enabled() {
            Some(ctx) => {
                let wrapped = move |i: usize| {
                    let _ctx = trace::install(Some(ctx));
                    f(i);
                };
                self.run_batch(granted, tasks, &wrapped);
            }
            None => self.run_batch(granted, tasks, &f),
        }
    }

    /// Submits the erased batch and drains it as a participant; split
    /// out of [`run`](Executor::run) so the traced and untraced paths
    /// share one unsafe block.
    fn run_batch(&self, granted: usize, tasks: usize, f_obj: &(dyn Fn(usize) + Sync)) {
        // SAFETY: erases the stack lifetime of `f` in the stored pointer;
        // the wait below keeps `f` alive until every claimed task
        // returned (see `Batch::work`).
        let f_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f_obj) };
        let batch = Arc::new(Batch {
            f: f_ptr,
            tasks,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        {
            let mut q = lock(&self.shared.queue);
            for _ in 0..granted {
                q.push_back(Arc::clone(&batch));
            }
        }
        if granted == 1 {
            self.shared.work_available.notify_one();
        } else {
            self.shared.work_available.notify_all();
        }

        // The caller is always one of the batch's threads.
        let _ = batch.work();
        {
            let mut g = lock(&batch.done_lock);
            while batch.completed.load(Ordering::Acquire) < tasks {
                g = batch.done.wait(g).unwrap_or_else(PoisonError::into_inner);
            }
        }
        self.release_tokens(granted);
        let payload = lock(&batch.panic).take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// [`run`](Executor::run) collecting each task's return value, in
    /// task order.
    pub fn map<T, F>(&self, parallelism: usize, tasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        self.run(parallelism, tasks, |i| {
            *lock(&slots[i]) = Some(f(i));
        });
        slots
            .into_iter()
            .map(|slot| {
                lock(&slot)
                    .take()
                    .expect("every task index ran to completion")
            })
            .collect()
    }

    /// Splits `items` into at most `parallelism` contiguous chunks
    /// (`len.div_ceil(parallelism)` each — the workspace's historical
    /// static partitioning) and maps `f` over them, preserving chunk
    /// order. Empty input yields no chunks.
    pub fn map_chunks<T, R, F>(&self, parallelism: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let parts = parallelism.max(1).min(items.len());
        let chunks: Vec<&[T]> = items.chunks(items.len().div_ceil(parts)).collect();
        self.map(parts, chunks.len(), |i| f(chunks[i]))
    }

    /// Runs two closures, potentially in parallel, returning both results.
    pub fn fork_join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        let fa = Mutex::new(Some(fa));
        let fb = Mutex::new(Some(fb));
        let ra: Mutex<Option<A>> = Mutex::new(None);
        let rb: Mutex<Option<B>> = Mutex::new(None);
        self.run(2, 2, |i| {
            if i == 0 {
                let f = lock(&fa).take().expect("fork task runs once");
                *lock(&ra) = Some(f());
            } else {
                let f = lock(&fb).take().expect("join task runs once");
                *lock(&rb) = Some(f());
            }
        });
        let a = lock(&ra).take().expect("fork arm completed");
        let b = lock(&rb).take().expect("join arm completed");
        (a, b)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // lint:allow(seqcst): the shutdown latch must be globally
        // ordered with the queue mutex and notify_all so no worker can
        // observe a stale `false` after waking and sleep forever.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_available.notify_all();
        for handle in lock(&self.workers).drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut q = lock(&shared.queue);
            loop {
                // lint:allow(seqcst): pairs with the SeqCst store in
                // `Drop for Executor`; the latch check and queue pop
                // must not be reordered across the condvar wait.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(batch) = q.pop_front() {
                    break batch;
                }
                q = shared
                    .work_available
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let stolen = batch.work();
        if stolen > 0 {
            shared
                .stolen_tasks
                .fetch_add(stolen as u64, Ordering::Relaxed);
        }
    }
}

/// `std::thread::available_parallelism`, defaulting to 1 when unknown.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_budget_runs_inline() {
        let exec = Executor::new(1);
        assert_eq!(exec.budget(), 1);
        assert_eq!(exec.tokens_free(), 0);
        let hits = AtomicUsize::new(0);
        exec.run(8, 10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn map_preserves_task_order() {
        let exec = Executor::new(4);
        let out = exec.map(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        // Tokens return after every batch.
        assert_eq!(exec.tokens_free(), 3);
    }

    #[test]
    fn map_chunks_matches_serial_partitioning() {
        let exec = Executor::new(3);
        let items: Vec<u64> = (0..997).collect();
        for parallelism in [1, 2, 3, 8, 997, 2000] {
            let sums = exec.map_chunks(parallelism, &items, |chunk| chunk.iter().sum::<u64>());
            assert_eq!(
                sums.len(),
                items
                    .chunks(items.len().div_ceil(parallelism.min(items.len())))
                    .count()
            );
            assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        }
        assert!(exec.map_chunks(4, &[] as &[u64], |_| 0u64).is_empty());
    }

    #[test]
    fn fork_join_returns_both_arms() {
        let exec = Executor::new(2);
        let (a, b) = exec.fork_join(|| "left".to_string(), || 42u64);
        assert_eq!((a.as_str(), b), ("left", 42));
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let exec = Executor::new(4);
        let total = AtomicU64::new(0);
        exec.run(4, 8, |i| {
            // Inner batches contend for the same tokens; the caller
            // always drains its own batch, so this completes even when
            // every helper token is taken.
            exec.run(4, 8, |j| {
                total.fetch_add((i * 8 + j) as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..64).sum::<u64>());
        assert_eq!(exec.tokens_free(), 3);
    }

    #[test]
    fn panicking_task_resumes_on_caller_and_pool_survives() {
        let exec = Executor::new(4);
        let before = exec.tokens_free();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run(4, 16, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom"), "{msg}");
        // Tokens returned, workers alive: the next batch still runs.
        assert_eq!(exec.tokens_free(), before);
        let hits = AtomicUsize::new(0);
        exec.run(4, 32, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_batches_split_the_token_budget() {
        let exec = Arc::new(Executor::new(4));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let exec = Arc::clone(&exec);
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    exec.run(4, 64, |_| {
                        let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    });
                });
            }
        });
        // 4 submitters + 3 helper tokens: never more than budget+callers.
        assert!(peak.load(Ordering::SeqCst) <= 7, "{peak:?}");
        assert_eq!(exec.tokens_free(), 3);
    }

    #[test]
    fn global_executor_is_usable() {
        let exec = Executor::global();
        assert!(exec.budget() >= 1);
        let out = exec.map(exec.budget(), 9, |i| i + 1);
        assert_eq!(out, (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_batches_grants_and_steals() {
        let exec = Executor::new(4);
        assert_eq!(exec.stats().batches, 0);
        // A batch big enough that helpers almost surely steal some work.
        exec.run(4, 10_000, |_| {});
        let s = exec.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.tasks, 10_000);
        assert_eq!(s.granted_tokens, 3);
        assert_eq!(s.inline_serial, 0);
        assert!(s.stolen_tasks <= s.tasks);
        // A parallelism-1 request wants no helpers: not a degradation.
        exec.run(1, 5, |_| {});
        assert_eq!(exec.stats().inline_serial, 0);
        exec.reset_stats();
        let s = exec.stats();
        assert_eq!((s.batches, s.tasks, s.granted_tokens), (0, 0, 0));
        assert_eq!(s.budget, 4);

        // On a zero-helper pool, wanting parallelism degrades inline.
        let serial = Executor::new(1);
        serial.run(8, 4, |_| {});
        assert_eq!(serial.stats().inline_serial, 1);
        let display = format!("{}", serial.stats());
        assert!(display.contains("inline degradations 1"), "{display}");
    }

    #[test]
    fn trace_ctx_propagates_to_stolen_tasks() {
        use mmjoin_obs::trace::{self, Stage, Tracer};
        let exec = Executor::new(4);
        let tracer = Tracer::global();
        tracer.set_enabled(true);
        let seen: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let expected = {
            let root = tracer.begin_forced("propagation test").unwrap();
            let trace_id = root.ctx().trace;
            exec.run(4, 64, |i| {
                let _s = trace::span(Stage::Step, "task");
                seen[i].store(
                    trace::current().map(|c| c.trace).unwrap_or(0),
                    Ordering::Relaxed,
                );
                // Give helpers a chance to actually steal.
                std::thread::yield_now();
            });
            trace_id
        };
        tracer.set_enabled(false);
        // Every task — caller-run or stolen — observed the same trace.
        for (i, slot) in seen.iter().enumerate() {
            assert_eq!(slot.load(Ordering::Relaxed), expected, "task {i}");
        }
        // And their spans landed in that trace's tree.
        let t = tracer.spans_of(expected).expect("trace retained");
        let steps = t.spans.iter().filter(|s| s.stage == Stage::Step).count();
        assert_eq!(steps, 64);
        // The pool workers' thread-locals were restored.
        exec.run(4, 8, |_| {
            assert_eq!(trace::current(), None);
        });
    }

    #[test]
    fn determinism_across_pool_sizes() {
        let items: Vec<u32> = (0..1000).map(|i| i * 7 % 313).collect();
        let reference: Vec<Vec<u32>> = Executor::new(1).map_chunks(4, &items, |c| c.to_vec());
        for budget in [2, 4, 8] {
            let exec = Executor::new(budget);
            for _ in 0..3 {
                assert_eq!(
                    exec.map_chunks(4, &items, |c| c.to_vec()),
                    reference,
                    "budget={budget}"
                );
            }
        }
    }
}
