//! Criterion bench for Figure 4a (and 4d/4e): 2-path join-project across
//! engines and datasets, single- and multi-core.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_api::{Engine, PairSink, Query};
use mmjoin_baseline::fulljoin::{HashJoinEngine, SortMergeEngine};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_baseline::setintersect::SetIntersectEngine;
use mmjoin_core::MmJoinEngine;
use mmjoin_datagen::DatasetKind;

const SCALE: f64 = 0.08;
const SEED: u64 = 2020;

fn fig4a_engines(c: &mut Criterion) {
    for kind in [
        DatasetKind::Dblp,
        DatasetKind::Jokes,
        DatasetKind::Protein,
        DatasetKind::Image,
    ] {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let mut g = c.benchmark_group(format!("fig4a_{}", kind.name()));
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(MmJoinEngine::serial()),
            Box::new(ExpandDedupEngine::serial()),
            Box::new(HashJoinEngine),
            Box::new(SortMergeEngine),
            Box::new(SetIntersectEngine),
        ];
        for e in engines {
            g.bench_with_input(BenchmarkId::new(e.name(), kind.name()), &r, |b, r| {
                let q = Query::two_path(r, r).build().unwrap();
                b.iter(|| {
                    let mut sink = PairSink::new();
                    e.execute(&q, &mut sink).unwrap();
                    sink.pairs.len()
                });
            });
        }
        g.finish();
    }
}

fn fig4de_multicore(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED);
    let mut g = c.benchmark_group("fig4de_jokes_multicore");
    // Clamp ≥ 4 so the sweep stays non-degenerate (unique IDs) on 1-CPU hosts.
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .clamp(4, 8);
    for cores in [1usize, 2, max] {
        let q = Query::two_path(&r, &r).build().unwrap();
        g.bench_with_input(BenchmarkId::new("MMJoin", cores), &cores, |b, &cores| {
            let e = MmJoinEngine::parallel(cores);
            b.iter(|| {
                let mut sink = PairSink::new();
                e.execute(&q, &mut sink).unwrap();
                sink.pairs.len()
            });
        });
        g.bench_with_input(BenchmarkId::new("NonMM", cores), &cores, |b, &cores| {
            let e = ExpandDedupEngine::parallel(cores);
            b.iter(|| {
                let mut sink = PairSink::new();
                e.execute(&q, &mut sink).unwrap();
                sink.pairs.len()
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig4a_engines, fig4de_multicore
);
criterion_main!(benches);
