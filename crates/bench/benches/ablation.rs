//! Ablation benches: Figure 8 (SizeAware++ optimization levels) plus the
//! design-choice ablations DESIGN.md calls out (heavy-core backend,
//! threshold sensitivity, dedup strategy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_core::{two_path_join_project, HeavyBackend, JoinConfig};
use mmjoin_datagen::DatasetKind;
use mmjoin_ssj::{unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};

const SCALE: f64 = 0.06;
const SEED: u64 = 2020;

fn fig8_sizeaware_ablation(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Words, SCALE, SEED);
    let mut g = c.benchmark_group("fig8_sizeaware_ablation_words");
    let variants: Vec<(&str, SizeAwarePPOpts)> = vec![
        ("noop", SizeAwarePPOpts::none()),
        (
            "light",
            SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            },
        ),
        (
            "heavy",
            SizeAwarePPOpts {
                light: true,
                heavy: true,
                prefix: false,
            },
        ),
        ("prefix", SizeAwarePPOpts::all()),
    ];
    for (name, opts) in variants {
        let algo = SsjAlgorithm::SizeAwarePP(opts);
        g.bench_function(name, |b| {
            b.iter(|| unordered_ssj(&r, 2, &algo, &JoinConfig::default()))
        });
    }
    g.finish();
}

fn heavy_backend_ablation(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Protein, SCALE, SEED);
    let mut g = c.benchmark_group("heavy_backend_protein");
    g.bench_function("f32_gemm", |b| {
        let cfg = JoinConfig::default();
        b.iter(|| two_path_join_project(&r, &r, &cfg));
    });
    g.bench_function("bitmatrix", |b| {
        let cfg = JoinConfig {
            heavy_backend: HeavyBackend::BitMatrix,
            ..JoinConfig::default()
        };
        b.iter(|| two_path_join_project(&r, &r, &cfg));
    });
    g.bench_function("spgemm", |b| {
        let cfg = JoinConfig {
            heavy_backend: HeavyBackend::Sparse,
            ..JoinConfig::default()
        };
        b.iter(|| two_path_join_project(&r, &r, &cfg));
    });
    g.bench_function("combinatorial_cap", |b| {
        // Memory cap 0 forces the expansion fallback for the heavy core.
        let cfg = JoinConfig {
            matrix_cell_cap: 0,
            ..JoinConfig::default()
        };
        b.iter(|| two_path_join_project(&r, &r, &cfg));
    });
    g.finish();
}

fn threshold_sensitivity(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED);
    let mut g = c.benchmark_group("threshold_sensitivity_jokes");
    for delta in [1u32, 8, 64, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, &d| {
            let cfg = JoinConfig::with_deltas(d, d);
            b.iter(|| two_path_join_project(&r, &r, &cfg));
        });
    }
    // The optimizer's pick, for comparison against the grid.
    g.bench_function("optimizer", |b| {
        let cfg = JoinConfig::default();
        b.iter(|| two_path_join_project(&r, &r, &cfg));
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig8_sizeaware_ablation, heavy_backend_ablation, threshold_sensitivity
);
criterion_main!(benches);
