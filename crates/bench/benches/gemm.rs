//! Criterion bench for Figure 3: matrix-multiplication kernel scaling
//! (single-core vs dimension, and vs core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmjoin_matrix::strassen::strassen;
use mmjoin_matrix::{
    available_kernels, matmul_parallel, matmul_with_kernel, strassen_parallel, BitMatrix,
    DenseMatrix,
};

fn adjacency(n: usize, phase: usize) -> DenseMatrix {
    DenseMatrix::from_fn(n, n, |i, j| {
        ((i + phase) * 31 + j * 17).is_multiple_of(4) as u8 as f32
    })
}

fn fig3a_single_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a_gemm_single_core");
    for n in [128usize, 256, 512, 1024] {
        let a = adjacency(n, 0);
        let b = adjacency(n, 1);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| matmul_parallel(&a, &b, 1));
        });
    }
    g.finish();
}

fn fig3b_multicore(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_gemm_multicore");
    let n = 768usize;
    let a = adjacency(n, 0);
    let b = adjacency(n, 1);
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(8);
    for cores in 1..=max {
        g.bench_with_input(
            BenchmarkId::from_parameter(cores),
            &cores,
            |bench, &cores| {
                bench.iter(|| matmul_parallel(&a, &b, cores));
            },
        );
    }
    g.finish();
}

/// Every dispatchable kernel (scalar always; AVX2/AVX-512 under
/// `--features simd` on capable hardware) on the same product — the
/// per-kernel ladder behind the crossover gate's ≥ 1.5× requirement.
fn kernel_ladder(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_kernel_ladder");
    for n in [256usize, 512] {
        let a = adjacency(n, 0);
        let b = adjacency(n, 1);
        g.throughput(Throughput::Elements((n * n * n) as u64));
        for kernel in available_kernels() {
            g.bench_with_input(BenchmarkId::new(kernel.name(), n), &n, |bench, _| {
                bench.iter(|| matmul_with_kernel(kernel, &a, &b));
            });
        }
    }
    g.finish();
}

fn backend_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_backend_ablation");
    let n = 512usize;
    let a = adjacency(n, 0);
    let b = adjacency(n, 1);
    g.bench_function("f32_blocked", |bench| {
        bench.iter(|| matmul_parallel(&a, &b, 1))
    });
    g.bench_function("strassen_cutoff128", |bench| {
        bench.iter(|| strassen(&a, &b, 128))
    });
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(7); // seven Strassen leaves cap the useful parallelism
    g.bench_function("strassen_parallel_leaves", |bench| {
        bench.iter(|| strassen_parallel(&a, &b, 128, cores))
    });
    let mut ab = BitMatrix::zeros(n, n);
    let mut bb = BitMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if a.get(i, j) != 0.0 {
                ab.set(i, j);
            }
            if b.get(i, j) != 0.0 {
                bb.set(i, j);
            }
        }
    }
    g.bench_function("bitmatrix_boolean", |bench| {
        bench.iter(|| ab.bool_product(&bb))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig3a_single_core, fig3b_multicore, kernel_ladder, backend_ablation
);
criterion_main!(benches);
