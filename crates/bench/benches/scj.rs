//! Criterion bench for Figures 4c / 7: set-containment joins.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_core::JoinConfig;
use mmjoin_datagen::DatasetKind;
use mmjoin_scj::{set_containment_join, ScjAlgorithm};

const SCALE: f64 = 0.06;
const SEED: u64 = 2020;

fn algos() -> Vec<(&'static str, ScjAlgorithm)> {
    vec![
        ("MMJoin", ScjAlgorithm::MmJoin),
        ("PIEJoin", ScjAlgorithm::PieJoin),
        ("PRETTI", ScjAlgorithm::Pretti),
        ("LIMIT+", ScjAlgorithm::LimitPlus { limit: 2 }),
    ]
}

fn fig4c_scj(c: &mut Criterion) {
    for kind in [DatasetKind::Dblp, DatasetKind::Protein, DatasetKind::Image] {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let mut g = c.benchmark_group(format!("fig4c_{}", kind.name()));
        for (name, algo) in algos() {
            g.bench_function(name, |b| {
                b.iter(|| set_containment_join(&r, &algo, &JoinConfig::default()))
            });
        }
        g.finish();
    }
}

fn fig7_parallel_scj(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Image, SCALE, SEED);
    let mut g = c.benchmark_group("fig7_image_parallel");
    // Clamp ≥ 4 so the sweep stays non-degenerate (unique IDs) on 1-CPU hosts.
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .clamp(4, 8);
    for cores in [1usize, max] {
        let config = JoinConfig {
            threads: cores,
            ..JoinConfig::default()
        };
        g.bench_with_input(BenchmarkId::new("MMJoin", cores), &config, |b, config| {
            b.iter(|| set_containment_join(&r, &ScjAlgorithm::MmJoin, config));
        });
        g.bench_with_input(BenchmarkId::new("PIEJoin", cores), &config, |b, config| {
            b.iter(|| set_containment_join(&r, &ScjAlgorithm::PieJoin, config));
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig4c_scj, fig7_parallel_scj
);
criterion_main!(benches);
