//! Criterion bench for Figures 5 / 6a: set-similarity joins, unordered and
//! ordered, across the three algorithm families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_core::JoinConfig;
use mmjoin_datagen::DatasetKind;
use mmjoin_ssj::{ordered_ssj, unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};

const SCALE: f64 = 0.06;
const SEED: u64 = 2020;

fn algos() -> Vec<(&'static str, SsjAlgorithm)> {
    vec![
        ("MMJoin", SsjAlgorithm::MmJoin),
        (
            "SizeAwarePP",
            SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all()),
        ),
        ("SizeAware", SsjAlgorithm::SizeAware),
    ]
}

fn fig5_unordered(c: &mut Criterion) {
    for kind in [DatasetKind::Dblp, DatasetKind::Jokes] {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let mut g = c.benchmark_group(format!("fig5_unordered_{}", kind.name()));
        for cc in [2u32, 4] {
            for (name, algo) in algos() {
                g.bench_with_input(BenchmarkId::new(name, format!("c{cc}")), &cc, |b, &cc| {
                    b.iter(|| unordered_ssj(&r, cc, &algo, &JoinConfig::default()))
                });
            }
        }
        g.finish();
    }
}

fn fig5ef_ordered(c: &mut Criterion) {
    let r = mmjoin_datagen::generate(DatasetKind::Jokes, SCALE, SEED);
    let mut g = c.benchmark_group("fig5ef_ordered_jokes");
    for (name, algo) in algos() {
        g.bench_function(name, |b| {
            b.iter(|| ordered_ssj(&r, 2, &algo, &JoinConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig5_unordered, fig5ef_ordered
);
criterion_main!(benches);
