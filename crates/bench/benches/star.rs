//! Criterion bench for Figure 4b (and 4f/4g): star queries `Q*_3`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_api::{Engine, Query, VecSink};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_core::MmJoinEngine;
use mmjoin_datagen::DatasetKind;
use mmjoin_storage::Relation;

const SEED: u64 = 2020;

fn star_instance(kind: DatasetKind) -> Vec<Relation> {
    let scale = if kind.is_dense() { 0.015 } else { 0.06 };
    mmjoin_datagen::generate_star(kind, scale, SEED, 3)
        .into_iter()
        .map(|r| Relation::from_edges(r.edges().iter().copied().filter(|&(x, _)| x < 120)))
        .collect()
}

fn fig4b_star(c: &mut Criterion) {
    for kind in [DatasetKind::Dblp, DatasetKind::Jokes, DatasetKind::Image] {
        let rels = star_instance(kind);
        let mut g = c.benchmark_group(format!("fig4b_{}", kind.name()));
        let q = Query::star(&rels).build().unwrap();
        g.bench_function("MMJoin", |b| {
            let e = MmJoinEngine::serial();
            b.iter(|| {
                let mut sink = VecSink::new();
                e.execute(&q, &mut sink).unwrap();
                sink.rows.len()
            });
        });
        g.bench_function("NonMM", |b| {
            let e = ExpandDedupEngine::serial();
            b.iter(|| {
                let mut sink = VecSink::new();
                e.execute(&q, &mut sink).unwrap();
                sink.rows.len()
            });
        });
        g.finish();
    }
}

fn fig4fg_star_multicore(c: &mut Criterion) {
    let rels = star_instance(DatasetKind::Jokes);
    let mut g = c.benchmark_group("fig4fg_jokes_star_multicore");
    // Clamp ≥ 4 so the sweep stays non-degenerate (unique IDs) on 1-CPU hosts.
    let max = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .clamp(4, 8);
    let q = Query::star(&rels).build().unwrap();
    for cores in [1usize, max] {
        g.bench_with_input(BenchmarkId::new("MMJoin", cores), &cores, |b, &cores| {
            let e = MmJoinEngine::parallel(cores);
            b.iter(|| {
                let mut sink = VecSink::new();
                e.execute(&q, &mut sink).unwrap();
                sink.rows.len()
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig4b_star, fig4fg_star_multicore
);
criterion_main!(benches);
