//! Criterion bench for Figure 6b–d: batched boolean set intersection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmjoin_bsi::{answer_batch, random_workload, BsiStrategy};
use mmjoin_datagen::DatasetKind;

const SCALE: f64 = 0.08;
const SEED: u64 = 2020;

fn fig6_batch_processing(c: &mut Criterion) {
    for kind in [DatasetKind::Jokes, DatasetKind::Image] {
        let r = mmjoin_datagen::generate(kind, SCALE, SEED);
        let workload = random_workload(&r, &r, 2000, SEED);
        let mut g = c.benchmark_group(format!("fig6_{}", kind.name()));
        for batch in [200usize, 1000] {
            let slice = &workload[..batch];
            g.bench_with_input(BenchmarkId::new("MMJoin", batch), &batch, |b, _| {
                let st = BsiStrategy::mm(1);
                b.iter(|| answer_batch(&r, &r, slice, &st));
            });
            g.bench_with_input(BenchmarkId::new("NonMM", batch), &batch, |b, _| {
                b.iter(|| answer_batch(&r, &r, slice, &BsiStrategy::NonMm));
            });
            g.bench_with_input(BenchmarkId::new("PerRequest", batch), &batch, |b, _| {
                b.iter(|| answer_batch(&r, &r, slice, &BsiStrategy::PerRequest));
            });
        }
        g.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets = fig6_batch_processing
);
criterion_main!(benches);
