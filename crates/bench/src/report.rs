//! Plain-text experiment report rendering.

/// A rectangular results table: one row per configuration, one column per
/// measured series, rendered with fixed-width alignment.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure/table id + description).
    pub title: String,
    /// Column headers; `headers[0]` labels the row key.
    pub headers: Vec<String>,
    /// Rows: `(key, cells)`.
    pub rows: Vec<(String, Vec<String>)>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, key: impl Into<String>, cells: Vec<String>) {
        self.rows.push((key.into(), cells));
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for (key, cells) in &self.rows {
            widths[0] = widths[0].max(key.len());
            for (i, c) in cells.iter().enumerate() {
                if i + 1 < widths.len() {
                    widths[i + 1] = widths[i + 1].max(c.len());
                } else {
                    widths.push(c.len().max(self.headers.get(i + 1).map_or(0, |h| h.len())));
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", h, w = widths[i]));
        }
        out.push('\n');
        for (key, cells) in &self.rows {
            out.push_str(&format!("{:<w$}  ", key, w = widths[0]));
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!(
                    "{:<w$}  ",
                    c,
                    w = widths.get(i + 1).copied().unwrap_or(8)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a JSON object
    /// `{"title": …, "headers": […], "rows": [{"key": …, "cells": […]}]}`
    /// — the machine-readable form behind `experiments --json`.
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_string(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(key, cells)| {
                let cells: Vec<String> = cells.iter().map(|c| json_string(c)).collect();
                format!(
                    "{{\"key\": {}, \"cells\": [{}]}}",
                    json_string(key),
                    cells.join(", ")
                )
            })
            .collect();
        format!(
            "{{\"title\": {}, \"headers\": [{}], \"rows\": [{}]}}",
            json_string(&self.title),
            headers.join(", "),
            rows.join(", ")
        )
    }
}

/// Escapes and quotes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats seconds with adaptive precision (`1.23s`, `45.6ms`).
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(
            "Fig X",
            vec!["Dataset".into(), "MMJoin".into(), "Baseline".into()],
        );
        t.push_row("Jokes", vec!["1.2s".into(), "50.0s".into()]);
        t.push_row("RoadNet".to_string(), vec!["0.1s".into(), "0.1s".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("Jokes"));
        assert!(s.contains("RoadNet"));
        assert!(s.contains("Baseline"));
    }

    #[test]
    fn json_round_trip_shape() {
        let mut t = Table::new("Fig \"X\"", vec!["k".into(), "v".into()]);
        t.push_row("a\nb", vec!["1.2s".into()]);
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"title\": \"Fig \\\"X\\\"\""));
        assert!(json.contains("\"key\": \"a\\nb\""));
        assert!(json.contains("\"cells\": [\"1.2s\"]"));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0456), "45.6ms");
        assert_eq!(fmt_secs(0.000_045), "45us");
    }
}
