//! The cost-model misprediction experiment behind `experiments crossover`.
//!
//! Algorithm 3's line-2 short-circuit decides between the combinatorial
//! WCOJ plan and the partitioned matrix plan; a cost model calibrated
//! against the wrong kernel moves that crossover and silently picks the
//! slower strategy. This experiment measures the crossover directly: a
//! family of hub instances whose `full join / N` ratio sweeps across the
//! predicted crossover, with *both* strategies forced and timed at every
//! point. The `--gate` check ([`crate::gate::check_crossover`]) fails CI
//! when the model's pick is more than 25% (and > 2 ms) slower than the
//! strategy it rejected — the misprediction gate ROADMAP asks for.
//!
//! The table also carries two `gemm n=…` rows timing the dispatched GEMM
//! kernel against the scalar fallback on the same shapes the cost model
//! samples; under `--features simd` the gate requires the ≥ 1.25×
//! speedup that justifies shifting the crossover at all. `par n=… t=…`
//! rows time
//! the tiled multi-core scheduler against the serial kernel at the
//! requested thread counts and record whether the products are
//! bit-identical — the gate requires `identical` always, plus a scaling
//! floor keyed on the granted core budget (≥ 3× at 8 cores).
//!
//! Column reuse: the `wcoj ms` / `mm ms` columns hold the two forced
//! strategies for crossover rows, the scalar / dispatched kernel times
//! for `gemm` rows, and the serial / parallel scheduler times for `par`
//! rows (same "slow path vs fast path" shape).

use crate::report::Table;
use crate::timed_median;
use mmjoin::{CountSink, Engine, JoinConfig, MmJoinEngine, Query, Relation};
use mmjoin_core::{choose_thresholds, PlanChoice};
use mmjoin_matrix::{
    active_kernel, matmul_parallel_with_kernel, matmul_with_kernel, CostModel, DenseMatrix, Kernel,
};

/// Multipliers applied to the *derived* crossover factor to build the
/// sweep grid. Centering the grid on the model's own crossover (instead
/// of a fixed factor list) guarantees the sweep brackets it — points at
/// 8× and ⅛× stay on opposite sides even though hub-instance dedup makes
/// the realized `full join / N` ratio track the requested one only
/// within about 2×.
const FACTOR_MULTIPLIERS: [f64; 8] = [8.0, 4.0, 2.0, 1.3, 0.77, 0.5, 0.25, 0.125];

/// Square sizes for the kernel-speedup rows (the same orders the cost
/// model samples in `CostModel::calibrate_quick`).
const GEMM_SIZES: [usize; 2] = [256, 384];

/// Square size for the parallel-scheduler rows. The gate's multi-core
/// scaling floor applies from this size up — below it the packed-panel
/// reuse cannot amortize the fork cost and the floor would only measure
/// scheduler overhead.
const PAR_SIZE: usize = 512;

/// A hub instance: `sets · deg` edges with *both* endpoints drawn from a
/// universe sized so the expected two-path full join is `factor · N`.
/// Every join-variable degree is ≈ `N / universe`, so
/// `full_join ≈ N² / universe`; solving for `factor = full_join / N`
/// gives `universe = N / factor`. Shrinking both endpoint universes
/// together is what makes the adjacency *dense* (and the result matrix
/// small) as the factor grows — the regime where the partitioned matrix
/// plan actually beats WCOJ, rather than a sparse tall matrix whose
/// product costs more than enumerating the join.
fn hub_instance(sets: u32, deg: u32, factor: f64) -> Relation {
    let n = (sets * deg) as f64;
    let universe = (n / factor).round().max(4.0) as u64;
    // splitmix64 finalizer: a multiplicative hash alone keeps enough
    // linear structure that `% universe` aliases for unlucky universe
    // sizes, skewing degrees and blowing the full join up ~5× past the
    // requested factor. Deterministic (no RNG): the gate must time
    // identical instances on every run.
    let mix = |mut z: u64| {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut edges = Vec::with_capacity((sets * deg) as usize);
    for i in 0..(sets * deg) as u64 {
        let hx = mix(i.wrapping_mul(0x9E3779B97F4A7C15));
        let hy = mix(i.wrapping_mul(0xD1B54A32D192ED03).wrapping_add(0x8BB8_4B93));
        edges.push(((hx % universe) as u32, (hy % universe) as u32));
    }
    Relation::from_edges(edges)
}

/// Times the two-path self-join of `r` under `config` (median of
/// `trials`, one warmup) without materialising the output.
fn time_strategy(r: &Relation, config: &JoinConfig, trials: usize) -> f64 {
    let engine = MmJoinEngine::new(config.clone());
    let q = Query::two_path(r, r).build().expect("valid two-path query");
    let (_, secs) = timed_median(1, trials, || {
        let mut sink = CountSink::new();
        engine
            .execute(&q, &mut sink)
            .expect("two-path execution succeeds");
        sink.rows
    });
    secs
}

/// Runs the crossover sweep plus the kernel-speedup and
/// parallel-scheduler rows. `trials` is the measured-run count per point
/// (the gate uses 3; interactive runs 1); `threads` is the intra-query
/// budget whose cores axis the calibration sweeps. Calibrates against
/// the dispatched kernel, then re-derives the crossover exactly the way
/// a `--calibrate --threads n` service would: the measured multi-core
/// curve damps the derived factor, so the sweep exercises the same
/// crossover the planner would actually use at that budget.
pub fn crossover_experiment(scale: f64, trials: usize, threads: usize) -> Table {
    let mut config = JoinConfig {
        threads,
        ..JoinConfig::default()
    };
    config.install_measured_model(CostModel::calibrate_quick(threads));
    crossover_sweep(config, scale, trials, threads)
}

/// The sweep body, parameterised on the (already recalibrated) config so
/// tests can pin `wcoj_fallback_factor` instead of depending on how fast
/// the build machine happens to be.
pub fn crossover_sweep(config: JoinConfig, scale: f64, trials: usize, threads: usize) -> Table {
    let kernel = active_kernel();

    let mut t = Table::new(
        format!(
            "Crossover misprediction sweep (kernel {kernel}, derived factor {:.1})",
            config.wcoj_fallback_factor
        ),
        vec![
            "point".into(),
            "N".into(),
            "full join".into(),
            "predicted".into(),
            "wcoj ms".into(),
            "mm ms".into(),
            "winner".into(),
            "penalty %".into(),
            "excess ms".into(),
        ],
    );

    // The realized ratio is capped near `sets` (each element's degree is
    // at most the set count), so keep `sets` comfortably above the
    // derived factor's clamp ceiling times the largest multiplier's
    // dedup slack.
    let sets = ((4800.0 * scale).round() as u32).max(400);
    let deg = 16u32;
    // Beyond factor ≈ ½√N the universe is so small that edge dedup
    // saturates it (every cell filled) and the realized ratio *falls*
    // as the requested one rises — those instances are degenerate
    // near-complete graphs, not points near the crossover. Cap the grid
    // at the saturation bound and drop the duplicate rows the cap makes.
    let saturation_cap = 0.5 * ((sets * deg) as f64).sqrt();
    let force = |factor: f64| JoinConfig {
        wcoj_fallback_factor: factor,
        ..config.clone()
    };
    let mut prev_factor = f64::NAN;
    for mult in FACTOR_MULTIPLIERS {
        let factor = (config.wcoj_fallback_factor * mult).min(saturation_cap);
        if factor == prev_factor {
            continue;
        }
        prev_factor = factor;
        let r = hub_instance(sets, deg, factor);
        let plan = choose_thresholds(&r, &r, &config);
        let predicted = match plan.choice {
            PlanChoice::Wcoj => "wcoj",
            PlanChoice::Mm { .. } => "mm",
        };
        let t_wcoj = time_strategy(&r, &force(f64::INFINITY), trials);
        let t_mm = time_strategy(&r, &force(0.0), trials);
        let (winner, t_best) = if t_wcoj <= t_mm {
            ("wcoj", t_wcoj)
        } else {
            ("mm", t_mm)
        };
        let t_pred = if predicted == "wcoj" { t_wcoj } else { t_mm };
        t.push_row(
            format!("f={factor:.1}"),
            vec![
                r.len().to_string(),
                format!("{}", plan.estimate.full_join),
                predicted.to_string(),
                format!("{:.3}", t_wcoj * 1e3),
                format!("{:.3}", t_mm * 1e3),
                winner.to_string(),
                format!("{:.1}", (t_pred / t_best - 1.0) * 100.0),
                format!("{:.3}", (t_pred - t_best) * 1e3),
            ],
        );
    }

    // Kernel-speedup rows: scalar fallback vs the dispatched kernel on
    // 0/1 matrices of calibration-order sizes. Under the scalar build
    // both columns time the same kernel (speedup 1×) and the gate's
    // ≥ 1.25× clause is dormant.
    for n in GEMM_SIZES {
        // Density 1/4 — the bench suite's `adjacency()` density, and what
        // the sweep's own heavy cores run at near the crossover
        // (`m / u² ≈ 0.2` for the instances the matrix plan wins).
        let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 4 == 0) as u8 as f32);
        let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 4 == 0) as u8 as f32);
        // Sub-millisecond timings on a shared box need deeper medians
        // than the multi-ms crossover points; the extra runs are cheap.
        let gemm_trials = trials.max(3) * 3;
        let (_, t_scalar) = timed_median(2, gemm_trials, || {
            matmul_with_kernel(Kernel::Scalar, &a, &b)
        });
        let (_, t_active) = timed_median(2, gemm_trials, || matmul_with_kernel(kernel, &a, &b));
        t.push_row(
            format!("gemm n={n}"),
            vec![
                n.to_string(),
                "-".into(),
                kernel.name().into(),
                format!("{:.3}", t_scalar * 1e3),
                format!("{:.3}", t_active * 1e3),
                if t_active <= t_scalar {
                    kernel.name().into()
                } else {
                    "scalar".into()
                },
                "-".into(),
                "-".into(),
            ],
        );
    }

    // Parallel-scheduler rows: the serial dispatched kernel (`wcoj ms`
    // column) against the tiled multi-core scheduler (`mm ms`) on a
    // dense all-nonzero matrix — arbitrary floats, so any accumulation
    // reorder would show up bit-for-bit. `predicted` records the
    // bit-exactness verdict, `penalty %` holds the measured speedup, and
    // `excess ms` carries `requested/granted` thread counts so the gate
    // can pick a scaling floor the host can actually meet.
    let cores = config.exec().budget();
    let mut t_list = vec![2usize, threads];
    t_list.retain(|&v| v >= 2);
    t_list.sort_unstable();
    t_list.dedup();
    let n = PAR_SIZE;
    let a = DenseMatrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 97 + 1) as f32);
    let b = DenseMatrix::from_fn(n, n, |i, j| ((i * 13 + j * 29) % 89 + 1) as f32);
    let par_trials = trials.max(2);
    let (serial, t_serial) = timed_median(1, par_trials, || matmul_with_kernel(kernel, &a, &b));
    for t_req in t_list {
        let (par, t_par) = timed_median(1, par_trials, || {
            matmul_parallel_with_kernel(kernel, &a, &b, t_req)
        });
        let identical = par.data() == serial.data();
        t.push_row(
            format!("par n={n} t={t_req}"),
            vec![
                n.to_string(),
                "-".into(),
                if identical { "identical" } else { "diverged" }.into(),
                format!("{:.3}", t_serial * 1e3),
                format!("{:.3}", t_par * 1e3),
                if t_par <= t_serial { "par" } else { "serial" }.into(),
                format!("{:.2}", t_serial / t_par.max(1e-9)),
                format!("{t_req}/{cores}"),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_instance_hits_requested_factor() {
        for factor in [4.0, 32.0] {
            let r = hub_instance(400, 16, factor);
            let n = r.len() as f64;
            let plan = choose_thresholds(&r, &r, &JoinConfig::default());
            let measured = plan.estimate.full_join as f64 / n;
            // Hash mixing spreads degrees, so the realized ratio tracks
            // the requested one loosely but monotonically.
            assert!(
                measured > factor * 0.5 && measured < factor * 2.0,
                "factor {factor}: measured full-join ratio {measured:.1}"
            );
        }
    }

    #[test]
    fn tiny_sweep_has_both_prediction_kinds_and_gemm_rows() {
        // Pin the crossover (skip calibration) so the grid — and hence
        // which predictions appear — doesn't depend on machine speed.
        let t = crossover_sweep(JoinConfig::default(), 0.05, 1, 2);
        // The saturation cap may merge the top grid points, but the
        // sweep must keep enough of the grid to bracket the crossover.
        let crossover_rows = t.rows.iter().filter(|(k, _)| k.starts_with("f=")).count();
        assert!(
            (4..=FACTOR_MULTIPLIERS.len()).contains(&crossover_rows),
            "unexpected sweep size {crossover_rows}"
        );
        // threads = 2 collapses the par thread list to the single t=2 row.
        assert_eq!(t.rows.len(), crossover_rows + GEMM_SIZES.len() + 1);
        let predictions: Vec<&str> = t
            .rows
            .iter()
            .filter(|(k, _)| k.starts_with("f="))
            .map(|(_, cells)| cells[2].as_str())
            .collect();
        assert!(
            predictions.contains(&"wcoj"),
            "no wcoj prediction: {predictions:?}"
        );
        assert!(
            predictions.contains(&"mm"),
            "no mm prediction: {predictions:?}"
        );
        assert!(t.rows.iter().any(|(k, _)| k == "gemm n=256"));
    }

    #[test]
    fn par_rows_are_bit_exact_and_carry_thread_budget() {
        let t = crossover_sweep(JoinConfig::default(), 0.05, 1, 8);
        let par_rows: Vec<&(String, Vec<String>)> = t
            .rows
            .iter()
            .filter(|(k, _)| k.starts_with("par "))
            .collect();
        // threads = 8 requests both the fixed t=2 probe and the budget.
        assert_eq!(par_rows.len(), 2, "expected t=2 and t=8 rows");
        for (key, cells) in par_rows {
            assert_eq!(cells[2], "identical", "{key} diverged");
            let (req, granted) = cells[7].split_once('/').expect("t/cores cell");
            assert!(req.parse::<usize>().is_ok(), "{key}: bad requested `{req}`");
            assert!(
                granted.parse::<usize>().map(|c| c >= 1).unwrap_or(false),
                "{key}: bad granted budget `{granted}`"
            );
            assert!(
                cells[6].parse::<f64>().map(|s| s > 0.0).unwrap_or(false),
                "{key}: speedup cell `{}` must be a positive number",
                cells[6]
            );
        }
    }
}
