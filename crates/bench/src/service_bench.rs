//! The `service` experiment target: replay a mixed multi-family workload
//! against a live [`Service`] from concurrent clients and report
//! throughput, cache hit rate, and tail latency — the serving-path
//! numbers the figure experiments (single-query, cold) cannot show.

use crate::report::Table;
use crate::{dataset, timed};
use mmjoin::{MetricsSnapshot, Request, Service, ServiceConfig};
use mmjoin_datagen::DatasetKind;

/// Clients firing concurrently in the warm phase.
const CLIENTS: usize = 4;
/// Workload replays per client.
const ROUNDS: usize = 5;

/// The mixed workload: every query family, both dense and sparse inputs,
/// one bounded query.
fn workload() -> Vec<Request> {
    vec![
        Request::two_path("jokes", "jokes"),
        Request::two_path("dblp", "dblp"),
        Request::two_path_counts("jokes", "dblp", 1),
        Request::star(["dblp", "dblp", "dblp"]),
        Request::similarity("jokes", 2),
        Request::similarity("dblp", 2),
        Request::containment("dblp"),
        Request::two_path("jokes", "jokes").limit(100),
    ]
}

/// Runs the workload: one cold pass, then `CLIENTS` threads × `ROUNDS`
/// replays, and reports per-phase throughput plus the service metrics.
pub fn service_experiment(scale: f64) -> Table {
    let service = Service::with_config(ServiceConfig {
        workers: CLIENTS,
        ..ServiceConfig::default()
    });
    // Registration profiles stats once; time it to show it is a
    // pay-once cost.
    let (_, reg_secs) = timed(|| {
        service.register("jokes", dataset(DatasetKind::Jokes, scale * 0.4));
        service.register("dblp", dataset(DatasetKind::Dblp, scale * 0.4));
    });

    let queries = workload();

    let (_, cold_secs) = timed(|| {
        for request in &queries {
            service.query(request.clone()).expect("cold query");
        }
    });
    let cold = service.metrics();

    // Measure warm latencies at the client so the warm row reports
    // phase-local percentiles (the service-wide window still contains
    // the cold samples and would skew the warm tail).
    let mut warm_latencies_us: Vec<u64> = Vec::new();
    let (_, warm_secs) = timed(|| {
        // lint:allow(thread-spawn): bench client threads simulate an
        // external load generator hammering the service; they are not
        // workspace compute and must not consume executor tokens.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let service = &service;
                    let queries = &queries;
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(ROUNDS * queries.len());
                        for _ in 0..ROUNDS {
                            for request in queries {
                                let (_, secs) =
                                    timed(|| service.query(request.clone()).expect("warm query"));
                                latencies.push((secs * 1e6).round() as u64);
                            }
                        }
                        latencies
                    })
                })
                .collect();
            for handle in handles {
                warm_latencies_us.extend(handle.join().expect("client thread"));
            }
        });
    });
    warm_latencies_us.sort_unstable();
    let warm = service.metrics();

    let mut table = Table::new(
        format!(
            "service: mixed workload, {} relations, {} workers, {} clients x {} rounds (scale {scale})",
            service.relation_names().len(),
            service.workers(),
            CLIENTS,
            ROUNDS
        ),
        vec![
            "phase".into(),
            "queries".into(),
            "wall".into(),
            "qps".into(),
            "hit rate".into(),
            "p50".into(),
            "p99".into(),
        ],
    );
    table.push_row(
        "register",
        vec![
            "2".into(),
            crate::report::fmt_secs(reg_secs),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    );
    table.push_row("cold", phase_cells(queries.len() as u64, cold_secs, &cold));
    let warm_queries = warm.queries_served - cold.queries_served;
    let pct = |p: f64| -> u64 {
        if warm_latencies_us.is_empty() {
            return 0;
        }
        warm_latencies_us[((warm_latencies_us.len() as f64 - 1.0) * p).round() as usize]
    };
    let warm_delta = MetricsSnapshot {
        queries_served: warm_queries,
        cache_hits: warm.cache_hits - cold.cache_hits,
        cache_hit_rate: if warm_queries == 0 {
            0.0
        } else {
            (warm.cache_hits - cold.cache_hits) as f64 / warm_queries as f64
        },
        p50_latency_us: pct(0.50),
        p99_latency_us: pct(0.99),
        ..warm
    };
    table.push_row("warm", phase_cells(warm_queries, warm_secs, &warm_delta));
    table.push_row(
        "total",
        vec![
            warm.queries_served.to_string(),
            crate::report::fmt_secs(cold_secs + warm_secs),
            format!(
                "{:.0}",
                warm.queries_served as f64 / (cold_secs + warm_secs)
            ),
            format!("{:.1}%", warm.cache_hit_rate * 100.0),
            format!("{}us", warm.p50_latency_us),
            format!("{}us", warm.p99_latency_us),
        ],
    );

    // Thread-budget scaling axis: the same cold query set under an
    // intra-query budget of 1 vs 4 — the executor's wavefronts and
    // light/heavy passes are the only difference (all cache misses, so
    // hit rate is not meaningful here).
    for budget in [1usize, 4] {
        let svc = Service::with_config(ServiceConfig {
            workers: 2,
            thread_budget: budget,
            join_config: mmjoin::JoinConfig {
                threads: 0, // auto: use the whole budget per query
                ..mmjoin::JoinConfig::default()
            },
            ..ServiceConfig::default()
        });
        svc.register("jokes", dataset(DatasetKind::Jokes, scale * 0.4));
        svc.register("dblp", dataset(DatasetKind::Dblp, scale * 0.4));
        let cold_queries: Vec<Request> = vec![
            Request::two_path("jokes", "jokes"),
            Request::two_path("dblp", "dblp"),
            Request::two_path_counts("jokes", "dblp", 1),
            Request::star(["dblp", "dblp", "dblp"]),
        ];
        let (_, secs) = timed(|| {
            for request in &cold_queries {
                svc.query(request.clone()).expect("budget-axis query");
            }
        });
        let m = svc.metrics();
        table.push_row(
            format!("budget {budget}"),
            vec![
                cold_queries.len().to_string(),
                crate::report::fmt_secs(secs),
                format!("{:.0}", cold_queries.len() as f64 / secs.max(1e-9)),
                "-".into(),
                format!("{}us", m.p50_latency_us),
                format!("{}us", m.p99_latency_us),
            ],
        );
    }

    // Tracing-overhead axis: replay the (warm, cached) workload serially
    // with tracing off vs. fully on, and bound the *disabled* cost — the
    // contract is that every span site degenerates to one relaxed atomic
    // load, so "trace off" must track the untraced rows above. The
    // "overhead" row puts the disabled-path bound in the hit-rate column
    // (measured probe ns × span sites / per-query time) for the gate.
    let tracer = mmjoin::obs::trace::Tracer::global();
    tracer.set_enabled(false);
    let replay = || {
        for request in &queries {
            service.query(request.clone()).expect("replay query");
        }
    };
    let (_, off_secs) = crate::timed_median(1, 3, replay);
    tracer.clear();
    tracer.set_sample_every(1);
    tracer.set_enabled(true);
    let (_, on_secs) = crate::timed_median(1, 3, replay);
    tracer.set_enabled(false);
    tracer.clear();
    // The disabled fast path, measured directly: one span-site probe.
    const PROBES: u32 = 1_000_000;
    let (_, probe_secs) = timed(|| {
        for _ in 0..PROBES {
            std::hint::black_box(mmjoin::obs::trace::current_if_enabled());
        }
    });
    let probe_ns = probe_secs * 1e9 / PROBES as f64;
    // Span sites a served query crosses end to end (root, queue-wait,
    // cache-probe, plan, exec, ~2 steps, serialize).
    const SPAN_SITES: f64 = 8.0;
    let per_query_ns = off_secs.max(1e-9) * 1e9 / queries.len() as f64;
    let overhead_pct = probe_ns * SPAN_SITES / per_query_ns * 100.0;
    for (phase, secs) in [("trace off", off_secs), ("trace on", on_secs)] {
        table.push_row(
            phase,
            vec![
                queries.len().to_string(),
                crate::report::fmt_secs(secs),
                format!("{:.0}", queries.len() as f64 / secs.max(1e-9)),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        );
    }
    table.push_row(
        "trace overhead",
        vec![
            queries.len().to_string(),
            "-".into(),
            "-".into(),
            format!("{overhead_pct:.3}%"),
            format!("{probe_ns:.1}ns"),
            "-".into(),
        ],
    );
    table
}

fn phase_cells(queries: u64, wall: f64, metrics: &MetricsSnapshot) -> Vec<String> {
    vec![
        queries.to_string(),
        crate::report::fmt_secs(wall),
        format!("{:.0}", queries as f64 / wall.max(1e-9)),
        format!("{:.1}%", metrics.cache_hit_rate * 100.0),
        format!("{}us", metrics.p50_latency_us),
        format!("{}us", metrics.p99_latency_us),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_experiment_reports_hits() {
        let table = service_experiment(0.02);
        // register / cold / warm / total + two thread-budget rows + the
        // trace off / trace on / trace overhead rows.
        assert_eq!(table.rows.len(), 9);
        assert!(table.rows.iter().any(|(k, _)| k == "budget 1"));
        assert!(table.rows.iter().any(|(k, _)| k == "budget 4"));
        let (_, total) = &table.rows[3];
        // 8 cold + 4×5×8 warm = 168 queries.
        assert_eq!(total[0], "168");
        // Warm phase must be nearly all cache hits.
        let (_, warm) = &table.rows[2];
        let hit_rate: f64 = warm[3].trim_end_matches('%').parse().unwrap();
        assert!(hit_rate > 90.0, "warm hit rate {hit_rate}%");
        // The disabled-tracing overhead bound must be present and tiny.
        let (_, overhead) = table
            .rows
            .iter()
            .find(|(k, _)| k == "trace overhead")
            .unwrap();
        let pct: f64 = overhead[3].trim_end_matches('%').parse().unwrap();
        assert!(pct < 5.0, "disabled-tracing overhead {pct}%");
    }
}
