//! The `updates` experiment target: replay a mixed query/update trace
//! against a live [`Service`] twice — once with incremental maintenance
//! enabled, once with the invalidate-everything baseline — and report
//! cache hit rate and update (maintenance) latency for both.
//!
//! This is the serving-path payoff of the delta-join machinery: under the
//! baseline every relation update cold-starts all cached results over
//! that relation, while maintenance keeps them warm by patching support
//! counts, so the measured hit rate must come out strictly higher.

use crate::report::Table;
use crate::{dataset, timed};
use mmjoin::{MaintenancePolicy, MetricsSnapshot, Request, Service, ServiceConfig, Value};
use mmjoin_datagen::DatasetKind;

/// Query/update rounds in the trace.
const ROUNDS: usize = 6;
/// Tuples per staged insert (and per trailing delete) batch.
const BATCH: usize = 8;

/// Every query in the replay is a maintainable two-path shape, across
/// self joins, cross joins, and the counting variant.
fn workload() -> Vec<Request> {
    vec![
        Request::two_path("jokes", "jokes"),
        Request::two_path("dblp", "dblp"),
        Request::two_path_counts("jokes", "jokes", 1),
        Request::two_path("jokes", "dblp"),
    ]
}

/// One replay's measurements.
struct Outcome {
    metrics: MetricsSnapshot,
    update_mean_ms: f64,
    update_max_ms: f64,
    wall_secs: f64,
}

/// Replays the trace under `policy`: each round runs the whole workload,
/// then stages a deterministic insert batch on `jokes` plus a delete of
/// the previous round's batch (so deletions always hit live tuples and
/// the relation stays bounded). A final query pass closes the trace.
fn replay(policy: MaintenancePolicy, scale: f64) -> Outcome {
    let service = Service::with_config(ServiceConfig {
        workers: 2,
        maintenance: policy,
        ..ServiceConfig::default()
    });
    service.register("jokes", dataset(DatasetKind::Jokes, scale * 0.4));
    service.register("dblp", dataset(DatasetKind::Dblp, scale * 0.4));
    let queries = workload();
    let base_edges = service.relation_edges("jokes").expect("registered");
    let max_x = base_edges.iter().map(|&(x, _)| x).max().unwrap_or(0);

    let mut update_secs: Vec<f64> = Vec::with_capacity(ROUNDS);
    let mut prev_batch: Vec<(Value, Value)> = Vec::new();
    let (_, wall_secs) = timed(|| {
        for round in 0..ROUNDS {
            for request in &queries {
                service.query(request.clone()).expect("trace query");
            }
            // Fresh set ids joined to existing elements: the inserts hit
            // the same join values the cached results were built over.
            let batch: Vec<(Value, Value)> = (0..BATCH)
                .map(|j| {
                    let (_, y) = base_edges[(round * 131 + j * 17) % base_edges.len()];
                    (max_x + 1 + (round * BATCH + j) as Value, y)
                })
                .collect();
            let (_, secs) = timed(|| {
                service
                    .insert("jokes", batch.clone())
                    .expect("insert batch");
                if !prev_batch.is_empty() {
                    service
                        .delete("jokes", prev_batch.clone())
                        .expect("delete batch");
                }
            });
            update_secs.push(secs);
            prev_batch = batch;
        }
        for request in &queries {
            service.query(request.clone()).expect("final pass");
        }
    });

    let mean = update_secs.iter().sum::<f64>() / update_secs.len().max(1) as f64;
    let max = update_secs.iter().cloned().fold(0.0, f64::max);
    Outcome {
        metrics: service.metrics(),
        update_mean_ms: mean * 1e3,
        update_max_ms: max * 1e3,
        wall_secs,
    }
}

/// Runs the trace under both policies and tabulates them side by side.
pub fn updates_experiment(scale: f64) -> Table {
    let maintain = replay(MaintenancePolicy::default(), scale);
    let invalidate = replay(MaintenancePolicy::disabled(), scale);

    let mut table = Table::new(
        format!(
            "updates: {} rounds x {} queries + {}-tuple delta batches on jokes (scale {scale})",
            ROUNDS,
            workload().len(),
            BATCH
        ),
        vec![
            "policy".into(),
            "queries".into(),
            "updates".into(),
            "hit rate".into(),
            "maintained".into(),
            "recomputed".into(),
            "invalidated".into(),
            "update mean".into(),
            "update max".into(),
            "wall".into(),
        ],
    );
    for (key, outcome) in [("maintain", &maintain), ("invalidate", &invalidate)] {
        let m = &outcome.metrics;
        table.push_row(
            key,
            vec![
                m.queries_served.to_string(),
                m.updates.to_string(),
                format!("{:.1}%", m.cache_hit_rate * 100.0),
                m.maintained.to_string(),
                m.recomputed.to_string(),
                m.invalidated.to_string(),
                format!("{:.2}ms", outcome.update_mean_ms),
                format!("{:.2}ms", outcome.update_max_ms),
                crate::report::fmt_secs(outcome.wall_secs),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate;

    #[test]
    fn maintenance_beats_invalidation_on_hit_rate() {
        let table = updates_experiment(0.02);
        let hit = |key: &str| {
            gate::cell(&table, key, "hit rate")
                .and_then(gate::parse_percent)
                .unwrap_or_else(|| panic!("missing hit rate for {key}"))
        };
        let (maintain, invalidate) = (hit("maintain"), hit("invalidate"));
        assert!(
            maintain > invalidate,
            "maintenance must strictly beat the invalidate baseline: \
             {maintain}% vs {invalidate}%"
        );
        let maintained: u64 = gate::cell(&table, "maintain", "maintained")
            .unwrap()
            .parse()
            .unwrap();
        assert!(maintained >= 1, "at least one entry must be patched");
        // The baseline run must not have maintained anything.
        assert_eq!(gate::cell(&table, "invalidate", "maintained").unwrap(), "0");
    }
}
