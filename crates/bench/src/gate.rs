//! The CI perf-regression gate: threshold checks over experiment tables.
//!
//! `experiments -- <target> --gate` runs these after producing the
//! table; a violated threshold fails the process (exit 1), turning the
//! experiment targets into a cheap serving-path regression gate. The
//! thresholds are deliberately coarse — they catch "the cache stopped
//! working" and "maintenance stopped paying off", not microsecond noise,
//! so they hold on any CI machine.

use crate::report::Table;

/// Looks up one cell by row key and column header.
pub fn cell<'t>(table: &'t Table, row_key: &str, header: &str) -> Option<&'t str> {
    // headers[0] labels the key column; cells start at headers[1].
    let col = table.headers.iter().position(|h| h == header)?;
    let (_, cells) = table.rows.iter().find(|(key, _)| key == row_key)?;
    cells.get(col.checked_sub(1)?).map(String::as_str)
}

/// Parses `"85.7%"` → `85.7`.
pub fn parse_percent(cell: &str) -> Option<f64> {
    cell.trim().trim_end_matches('%').parse().ok()
}

/// Gates the `service` target: the warm phase must be nearly all cache
/// hits — the entire point of the result cache — and the disabled
/// tracing instrumentation must stay within its near-zero-cost contract
/// (≤ 5% of per-query time, from the measured single-atomic-load probe).
pub fn check_service(table: &Table) -> Result<(), String> {
    let warm = cell(table, "warm", "hit rate")
        .and_then(parse_percent)
        .ok_or("service table has no warm hit rate")?;
    if warm < 90.0 {
        return Err(format!("warm cache hit rate {warm:.1}% < 90% threshold"));
    }
    let overhead = cell(table, "trace overhead", "hit rate")
        .and_then(parse_percent)
        .ok_or("service table has no trace overhead row")?;
    if overhead > 5.0 {
        return Err(format!(
            "disabled-tracing overhead {overhead:.2}% of per-query time exceeds the 5% bound"
        ));
    }
    Ok(())
}

/// Gates the `updates` target: maintenance must strictly beat the
/// invalidate-everything baseline on hit rate, and must actually have
/// maintained entries in place (not just eagerly recomputed them).
pub fn check_updates(table: &Table) -> Result<(), String> {
    let hit = |key: &str| {
        cell(table, key, "hit rate")
            .and_then(parse_percent)
            .ok_or_else(|| format!("updates table has no hit rate for `{key}`"))
    };
    let maintain = hit("maintain")?;
    let invalidate = hit("invalidate")?;
    if maintain <= invalidate {
        return Err(format!(
            "maintenance hit rate {maintain:.1}% must strictly exceed the \
             invalidate baseline {invalidate:.1}%"
        ));
    }
    let maintained: u64 = cell(table, "maintain", "maintained")
        .and_then(|c| c.parse().ok())
        .ok_or("updates table has no maintained count")?;
    if maintained == 0 {
        return Err("no cache entry was maintained in place".into());
    }
    Ok(())
}

/// Gates the `chains` target: composed-plan results (serial *and*
/// executor-parallel) must equal the baseline's on every k; the deepest
/// chain (k = 5, where the full join is at its most redundant) must run
/// no slower than the materialize-everything baseline; and the
/// thread-scaling smoke must hold — the 4-thread executor run of the
/// k = 5 chain must not be slower than the serial composed plan
/// (within 5% measurement noise) on hosts with real parallelism. On a
/// single-core host scaling is physically impossible, so only a
/// catastrophic pool overhead (> 2×) fails there.
pub fn check_chains(table: &Table) -> Result<(), String> {
    for (k, _) in &table.rows {
        let matched = cell(table, k, "rows match").ok_or("chains table has no match column")?;
        if matched != "yes" {
            return Err(format!(
                "k={k}: composed rows diverge from baseline ({matched})"
            ));
        }
        let rows: u64 = cell(table, k, "rows")
            .and_then(|c| c.parse().ok())
            .ok_or("chains table has no rows column")?;
        if rows == 0 {
            return Err(format!("k={k}: empty output — the instance is degenerate"));
        }
    }
    let speedup = cell(table, "5", "speedup")
        .and_then(|c| c.parse::<f64>().ok())
        .ok_or("chains table has no k=5 speedup")?;
    if speedup < 1.0 {
        return Err(format!(
            "k=5 composed plan is {speedup:.2}x the baseline — must be ≥ 1.0x"
        ));
    }
    let par_speedup = cell(table, "5", "par speedup")
        .and_then(|c| c.parse::<f64>().ok())
        .ok_or("chains table has no k=5 par speedup")?;
    let cores: u64 = cell(table, "5", "cores")
        .and_then(|c| c.parse().ok())
        .ok_or("chains table has no cores column")?;
    let floor = if cores >= 2 { 0.95 } else { 0.5 };
    if par_speedup < floor {
        return Err(format!(
            "k=5 executor run is {par_speedup:.2}x the serial composed plan \
             on a {cores}-core host — must be ≥ {floor:.2}x"
        ));
    }
    Ok(())
}

/// Gates the `saturation` target: the 16-client TCP storm must produce
/// zero answers diverging from serial replay, the admission queue's
/// high-water mark must respect its bound (bounded memory), and an
/// update storm on one catalog shard must not degrade reader p99 on
/// another shard relative to the single-lock baseline.
pub fn check_saturation(table: &Table) -> Result<(), String> {
    let wrong = cell(table, "saturation", "wrong").ok_or("saturation table has no wrong column")?;
    if wrong != "0" {
        return Err(format!(
            "{wrong} responses diverged from serial replay — wrong results under concurrency"
        ));
    }
    let depth = cell(table, "saturation", "depth").ok_or("saturation table has no depth column")?;
    let (used, cap) = depth
        .split_once('/')
        .ok_or_else(|| format!("malformed depth cell `{depth}`"))?;
    let used: u64 = used.trim().parse().map_err(|_| "bad depth value")?;
    let cap: u64 = cap.trim().parse().map_err(|_| "bad depth bound")?;
    if used > cap {
        return Err(format!(
            "admission queue reached depth {used}, exceeding its bound {cap}"
        ));
    }
    let p99 = |key: &str| {
        cell(table, key, "p99")
            .and_then(|c| c.trim().trim_end_matches("us").parse::<f64>().ok())
            .ok_or_else(|| format!("saturation table has no p99 for `{key}`"))
    };
    let single = p99("reads shards=1")?;
    let sharded = p99("reads shards=8")?;
    // 20% slack for scheduler noise, plus an absolute floor so two
    // already-tiny tails (an uncontended host) can never fail on noise.
    if sharded > single * 1.2 && sharded > 500.0 {
        return Err(format!(
            "sharded reader p99 {sharded:.0}us degraded vs single-lock baseline \
             {single:.0}us — cross-shard updates are stalling readers"
        ));
    }
    Ok(())
}

/// Gates the `crossover` target — the cost-model misprediction check.
///
/// For every sweep point (`f=…` rows) both strategies were forced and
/// timed; the row records which one the calibrated model predicted and
/// which actually won. A misprediction fails only when it *matters*:
/// the predicted strategy must be more than 25% slower than the winner
/// (`penalty %`) **and** more than 2 ms slower in absolute terms
/// (`excess ms`) — sub-millisecond flips near the crossover are noise,
/// not model error. The sweep must also contain both predictions, or
/// the grid failed to bracket the derived crossover at all.
///
/// The `gemm n=…` rows time the scalar fallback (`wcoj ms` column)
/// against the dispatched kernel (`mm ms` column); when a non-scalar
/// kernel is active it must deliver the ≥ 1.25× speedup that justifies
/// shifting the crossover. (The floor was 1.5× when the scalar fallback
/// still bounds-checked its inner loops; the strided raw-pointer
/// refactor sped scalar up ~25%, so the SIMD margin over it shrank —
/// the clause now guards against the dispatched kernel regressing to
/// scalar parity, with the same ~20% slack under the measured ratio.)
///
/// The `par n=… t=…` rows prove the tiled multi-core scheduler: the
/// `predicted` column must read `identical` (bit-exactness is the
/// scheduler's contract at any occupancy), and at n ≥ 512 the measured
/// speedup (`penalty %` column) must clear a floor keyed on the
/// *effective* parallelism `min(requested, granted)` from the
/// `excess ms` column's `t/cores` pair: ≥ 3× at 8 cores, ≥ 1.8× at 4,
/// ≥ 1.2× at 2, and only a no-catastrophic-overhead 0.5× floor when the
/// host grants a single core (scaling is physically impossible there).
pub fn check_crossover(table: &Table) -> Result<(), String> {
    let mut saw = (false, false);
    for (key, _) in &table.rows {
        if !key.starts_with("f=") {
            continue;
        }
        let predicted =
            cell(table, key, "predicted").ok_or("crossover table has no predicted column")?;
        match predicted {
            "wcoj" => saw.0 = true,
            "mm" => saw.1 = true,
            other => return Err(format!("{key}: unknown prediction `{other}`")),
        }
        let winner = cell(table, key, "winner").ok_or("crossover table has no winner column")?;
        if predicted == winner {
            continue;
        }
        let penalty = cell(table, key, "penalty %")
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| format!("{key}: missing penalty"))?;
        let excess = cell(table, key, "excess ms")
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| format!("{key}: missing excess"))?;
        if penalty > 25.0 && excess > 2.0 {
            return Err(format!(
                "{key}: model predicted {predicted} but {winner} won — \
                 {penalty:.1}% ({excess:.1} ms) slower than necessary"
            ));
        }
    }
    if !(saw.0 && saw.1) {
        return Err(format!(
            "sweep predicted only {} — the factor grid no longer brackets \
             the derived crossover",
            if saw.0 { "wcoj" } else { "mm" }
        ));
    }
    for (key, _) in &table.rows {
        if !key.starts_with("gemm ") {
            continue;
        }
        let kernel = cell(table, key, "predicted").ok_or("crossover table has no kernel column")?;
        if kernel == "scalar" {
            continue;
        }
        let scalar_ms = cell(table, key, "wcoj ms")
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| format!("{key}: missing scalar time"))?;
        let active_ms = cell(table, key, "mm ms")
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| format!("{key}: missing kernel time"))?;
        let speedup = scalar_ms / active_ms.max(1e-9);
        if speedup < 1.25 {
            return Err(format!(
                "{key}: kernel `{kernel}` is only {speedup:.2}x the scalar \
                 fallback — must be ≥ 1.25x"
            ));
        }
    }
    for (key, _) in &table.rows {
        if !key.starts_with("par ") {
            continue;
        }
        let verdict =
            cell(table, key, "predicted").ok_or("crossover table has no verdict column")?;
        if verdict != "identical" {
            return Err(format!(
                "{key}: parallel scheduler diverged from the serial kernel ({verdict})"
            ));
        }
        let n: u64 = cell(table, key, "N")
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| format!("{key}: missing size"))?;
        let speedup = cell(table, key, "penalty %")
            .and_then(|c| c.parse::<f64>().ok())
            .ok_or_else(|| format!("{key}: missing speedup"))?;
        let budget =
            cell(table, key, "excess ms").ok_or_else(|| format!("{key}: missing t/cores"))?;
        let (req, granted) = budget
            .split_once('/')
            .ok_or_else(|| format!("{key}: malformed thread budget `{budget}`"))?;
        let req: u64 = req.trim().parse().map_err(|_| "bad requested threads")?;
        let granted: u64 = granted.trim().parse().map_err(|_| "bad granted cores")?;
        let effective = req.min(granted);
        let floor = match effective {
            8.. => 3.0,
            4.. => 1.8,
            2.. => 1.2,
            _ => 0.5,
        };
        if n >= 512 && speedup < floor {
            return Err(format!(
                "{key}: parallel scheduler is only {speedup:.2}x the serial kernel \
                 at {effective} effective cores ({req} requested, {granted} granted) \
                 — must be ≥ {floor:.1}x"
            ));
        }
    }
    Ok(())
}

/// Dispatches the gate for a target; targets without thresholds pass.
pub fn check(target: &str, table: &Table) -> Result<(), String> {
    match target {
        "service" => check_service(table),
        "updates" => check_updates(table),
        "chains" => check_chains(table),
        "saturation" => check_saturation(table),
        "crossover" => check_crossover(table),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: Vec<(&str, Vec<&str>)>) -> Table {
        let mut t = Table::new(
            "test",
            vec!["policy".into(), "hit rate".into(), "maintained".into()],
        );
        for (key, cells) in rows {
            t.push_row(key, cells.into_iter().map(String::from).collect());
        }
        t
    }

    #[test]
    fn cell_lookup_and_percent_parse() {
        let t = table(vec![("maintain", vec!["85.7%", "12"])]);
        assert_eq!(cell(&t, "maintain", "hit rate"), Some("85.7%"));
        assert_eq!(cell(&t, "maintain", "nope"), None);
        assert_eq!(cell(&t, "nope", "hit rate"), None);
        assert_eq!(parse_percent("85.7%"), Some(85.7));
    }

    #[test]
    fn updates_gate_requires_strict_win() {
        let pass = table(vec![
            ("maintain", vec!["80.0%", "5"]),
            ("invalidate", vec!["20.0%", "0"]),
        ]);
        assert!(check_updates(&pass).is_ok());
        let tie = table(vec![
            ("maintain", vec!["20.0%", "5"]),
            ("invalidate", vec!["20.0%", "0"]),
        ]);
        assert!(check_updates(&tie).is_err());
        let unmaintained = table(vec![
            ("maintain", vec!["80.0%", "0"]),
            ("invalidate", vec!["20.0%", "0"]),
        ]);
        assert!(check_updates(&unmaintained).is_err());
    }

    fn service_table(warm_hit: &str, overhead: &str) -> Table {
        let mut t = Table::new("svc", vec!["phase".into(), "hit rate".into()]);
        t.push_row("warm", vec![warm_hit.into()]);
        t.push_row("trace overhead", vec![overhead.into()]);
        t
    }

    #[test]
    fn service_gate_threshold() {
        assert!(check_service(&service_table("95.0%", "0.1%")).is_ok());
        assert!(check_service(&service_table("50.0%", "0.1%")).is_err());
        // Disabled-tracing overhead has its own bound…
        assert!(check_service(&service_table("95.0%", "7.3%")).is_err());
        // …and the row must exist at all.
        let mut t = Table::new("svc", vec!["phase".into(), "hit rate".into()]);
        t.push_row("warm", vec!["95.0%".into()]);
        assert!(check_service(&t).is_err());
    }

    #[test]
    fn unknown_targets_pass() {
        assert!(check("fig3a", &table(vec![])).is_ok());
    }

    fn chains_table(speedup: &str, par_speedup: &str, cores: &str) -> Table {
        let mut t = Table::new(
            "chains",
            vec![
                "k".into(),
                "par speedup".into(),
                "speedup".into(),
                "rows".into(),
                "rows match".into(),
                "cores".into(),
            ],
        );
        t.push_row(
            "5",
            vec![
                par_speedup.into(),
                speedup.into(),
                "10".into(),
                "yes".into(),
                cores.into(),
            ],
        );
        t
    }

    fn crossover_table(rows: Vec<(&str, Vec<&str>)>) -> Table {
        let mut t = Table::new(
            "crossover",
            vec![
                "point".into(),
                "N".into(),
                "full join".into(),
                "predicted".into(),
                "wcoj ms".into(),
                "mm ms".into(),
                "winner".into(),
                "penalty %".into(),
                "excess ms".into(),
            ],
        );
        for (key, cells) in rows {
            t.push_row(key, cells.into_iter().map(String::from).collect());
        }
        t
    }

    #[test]
    fn crossover_gate_flags_costly_mispredictions_only() {
        let base = vec![
            (
                "f=50",
                vec!["1000", "50000", "mm", "90.0", "10.0", "mm", "0.0", "0.000"],
            ),
            (
                "f=3",
                vec!["1000", "3000", "wcoj", "5.0", "9.0", "wcoj", "0.0", "0.000"],
            ),
        ];
        assert!(check_crossover(&crossover_table(base.clone())).is_ok());
        // Wrong pick, 60% and 6 ms slower: fail.
        let mut bad = base.clone();
        bad.push((
            "f=12",
            vec![
                "1000", "12000", "wcoj", "16.0", "10.0", "mm", "60.0", "6.000",
            ],
        ));
        assert!(check_crossover(&crossover_table(bad)).is_err());
        // Wrong pick but under the 2 ms absolute floor: noise, pass.
        let mut tiny = base.clone();
        tiny.push((
            "f=12",
            vec!["1000", "12000", "wcoj", "1.6", "1.0", "mm", "60.0", "0.600"],
        ));
        assert!(check_crossover(&crossover_table(tiny)).is_ok());
        // Wrong pick but under the 25% relative bar: pass.
        let mut close = base;
        close.push((
            "f=12",
            vec![
                "1000", "12000", "mm", "10.0", "11.0", "wcoj", "10.0", "3.000",
            ],
        ));
        assert!(check_crossover(&crossover_table(close)).is_ok());
    }

    #[test]
    fn crossover_gate_requires_both_predictions() {
        let one_sided = crossover_table(vec![(
            "f=50",
            vec!["1000", "50000", "mm", "90.0", "10.0", "mm", "0.0", "0.000"],
        )]);
        let err = check_crossover(&one_sided).unwrap_err();
        assert!(err.contains("brackets"), "{err}");
    }

    #[test]
    fn crossover_gate_enforces_simd_speedup() {
        let both = |gemm_rows: Vec<(&str, Vec<&str>)>| {
            let mut rows = vec![
                (
                    "f=50",
                    vec!["1000", "50000", "mm", "90.0", "10.0", "mm", "0.0", "0.000"],
                ),
                (
                    "f=3",
                    vec!["1000", "3000", "wcoj", "5.0", "9.0", "wcoj", "0.0", "0.000"],
                ),
            ];
            rows.extend(gemm_rows);
            crossover_table(rows)
        };
        // Scalar build: speedup clause dormant.
        let scalar = both(vec![(
            "gemm n=256",
            vec!["256", "-", "scalar", "10.0", "10.0", "scalar", "-", "-"],
        )]);
        assert!(check_crossover(&scalar).is_ok());
        // SIMD kernel 3x faster: pass.
        let fast = both(vec![(
            "gemm n=256",
            vec!["256", "-", "avx512", "30.0", "10.0", "avx512", "-", "-"],
        )]);
        assert!(check_crossover(&fast).is_ok());
        // SIMD kernel barely faster than scalar: fail.
        let slow = both(vec![(
            "gemm n=256",
            vec!["256", "-", "avx512", "11.0", "10.0", "avx512", "-", "-"],
        )]);
        let err = check_crossover(&slow).unwrap_err();
        assert!(err.contains("1.25x"), "{err}");
    }

    #[test]
    fn crossover_gate_par_rows_require_bit_exactness_and_scaling() {
        let with_par = |par_rows: Vec<(&str, Vec<&str>)>| {
            let mut rows = vec![
                (
                    "f=50",
                    vec!["1000", "50000", "mm", "90.0", "10.0", "mm", "0.0", "0.000"],
                ),
                (
                    "f=3",
                    vec!["1000", "3000", "wcoj", "5.0", "9.0", "wcoj", "0.0", "0.000"],
                ),
            ];
            rows.extend(par_rows);
            crossover_table(rows)
        };
        // 8 granted cores at 3.4×: clears the 3× floor.
        let fast = with_par(vec![(
            "par n=512 t=8",
            vec![
                "512",
                "-",
                "identical",
                "100.0",
                "29.4",
                "par",
                "3.40",
                "8/8",
            ],
        )]);
        assert!(check_crossover(&fast).is_ok());
        // 8 granted cores at 2.1×: under the floor.
        let slow = with_par(vec![(
            "par n=512 t=8",
            vec![
                "512",
                "-",
                "identical",
                "100.0",
                "47.6",
                "par",
                "2.10",
                "8/8",
            ],
        )]);
        let err = check_crossover(&slow).unwrap_err();
        assert!(err.contains("3.0x"), "{err}");
        // 8 requested but 1 granted (single-core host): only the 0.5×
        // catastrophic-overhead floor applies.
        let one_core = with_par(vec![(
            "par n=512 t=8",
            vec![
                "512",
                "-",
                "identical",
                "100.0",
                "105.0",
                "serial",
                "0.95",
                "8/1",
            ],
        )]);
        assert!(check_crossover(&one_core).is_ok());
        let pathological = with_par(vec![(
            "par n=512 t=8",
            vec![
                "512",
                "-",
                "identical",
                "100.0",
                "400.0",
                "serial",
                "0.25",
                "8/1",
            ],
        )]);
        assert!(check_crossover(&pathological).is_err());
        // 2 effective cores: the 1.2× floor.
        let two_core = with_par(vec![(
            "par n=512 t=2",
            vec![
                "512",
                "-",
                "identical",
                "100.0",
                "90.9",
                "par",
                "1.10",
                "2/8",
            ],
        )]);
        assert!(check_crossover(&two_core).is_err());
        // Divergence fails regardless of speed.
        let diverged = with_par(vec![(
            "par n=512 t=8",
            vec![
                "512", "-", "diverged", "100.0", "10.0", "par", "10.00", "8/8",
            ],
        )]);
        let err = check_crossover(&diverged).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
        // Sub-512 rows never hit the scaling floor (still must be exact).
        let small = with_par(vec![(
            "par n=256 t=8",
            vec![
                "256",
                "-",
                "identical",
                "10.0",
                "11.0",
                "serial",
                "0.91",
                "8/8",
            ],
        )]);
        assert!(check_crossover(&small).is_ok());
    }

    #[test]
    fn chains_gate_scaling_clause_is_core_aware() {
        // Multi-core host: the executor run must keep up with serial.
        assert!(check_chains(&chains_table("5.0", "1.10", "4")).is_ok());
        assert!(check_chains(&chains_table("5.0", "0.80", "4")).is_err());
        // Single-core host: only catastrophic pool overhead fails.
        assert!(check_chains(&chains_table("5.0", "0.80", "1")).is_ok());
        assert!(check_chains(&chains_table("5.0", "0.40", "1")).is_err());
        // Baseline-speedup clause still applies.
        assert!(check_chains(&chains_table("0.90", "1.10", "4")).is_err());
    }
}
