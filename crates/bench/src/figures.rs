//! Per-figure experiment drivers (§7). Each function regenerates one table
//! or figure of the paper and returns a rendered [`Table`].
//!
//! Engines are enumerated through the [`EngineRegistry`] — a figure asks
//! the registry for "everything that can run this query" (or for a named
//! engine) instead of hard-coding engine constructors, so newly registered
//! engines show up in the experiment tables automatically.

use crate::report::{fmt_secs, Table};
use crate::{core_grid, dataset, star_dataset, timed, SEED};
use mmjoin::{
    default_registry, CountSink, Engine, EngineRegistry, ExecStats, HeavyBackend, JoinConfig,
    MmJoinEngine, PlanKind, Query, Relation,
};
use mmjoin_bsi::{random_workload, simulate_batching, BsiStrategy};
use mmjoin_datagen::DatasetKind;
use mmjoin_matrix::{matmul_parallel, DenseMatrix};
use mmjoin_ssj::{unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};

/// Runs `query` on `engine`, returning `(stats, seconds)` without
/// materialising the output (a [`CountSink`] absorbs the rows).
fn run_counted(engine: &dyn Engine, query: &Query<'_>) -> (ExecStats, f64) {
    let mut sink = CountSink::new();
    let (stats, secs) = timed(|| {
        engine
            .execute(query, &mut sink)
            .expect("engine advertised support for this query")
    });
    (stats, secs)
}

/// One row of engine timings for `query` over every supporting engine in
/// `registry`; returns the cells plus the (engine-agreed) output size.
fn sweep_engines(registry: &EngineRegistry, query: &Query<'_>) -> (Vec<String>, u64) {
    let mut cells = Vec::new();
    let mut out_rows = 0u64;
    for engine in registry.engines_for(query) {
        let (stats, secs) = run_counted(engine, query);
        out_rows = stats.rows;
        cells.push(fmt_secs(secs));
    }
    (cells, out_rows)
}

/// Two-edge probe relation: engine support depends only on the query
/// family, so header construction never needs a generated dataset.
fn probe_relation() -> Relation {
    Relation::from_edges([(0, 0), (1, 0)])
}

/// Header row listing the engines that support `query`.
fn engine_headers(registry: &EngineRegistry, query: &Query<'_>, key: &str) -> Vec<String> {
    let mut headers: Vec<String> = vec![key.into()];
    headers.extend(
        registry
            .engines_for(query)
            .iter()
            .map(|e| e.name().to_string()),
    );
    headers
}

/// Table 2: dataset characteristics at the experiment scale.
pub fn table2(scale: f64) -> String {
    format!(
        "== Table 2: dataset characteristics (scale {scale}) ==\n{}",
        mmjoin_datagen::table2_report(scale, SEED)
    )
}

/// Figure 3a: single-core GEMM runtime vs square dimension.
pub fn fig3a() -> Table {
    let mut t = Table::new(
        "Figure 3a: matrix multiplication, single core",
        vec!["n".into(), "multiply".into(), "GFLOP/s".into()],
    );
    // Warm up caches/frequency so the first row is not an outlier.
    {
        let a = DenseMatrix::from_fn(256, 256, |i, j| ((i + j) % 2) as f32);
        std::hint::black_box(matmul_parallel(&a, &a, 1));
    }
    for &n in &[256usize, 384, 512, 768, 1024, 1536] {
        let a = DenseMatrix::from_fn(n, n, |i, j| ((i + j) % 3 == 0) as u8 as f32);
        let b = DenseMatrix::from_fn(n, n, |i, j| ((i * j) % 5 == 0) as u8 as f32);
        let (_, secs) = timed(|| std::hint::black_box(matmul_parallel(&a, &b, 1)));
        let gflops = 2.0 * (n as f64).powi(3) / secs / 1e9;
        t.push_row(n.to_string(), vec![fmt_secs(secs), format!("{gflops:.2}")]);
    }
    t
}

/// Figure 3b: construction + multiplication vs core count (fixed n).
pub fn fig3b() -> Table {
    const N: usize = 1024;
    let mut t = Table::new(
        format!("Figure 3b: {N}x{N} GEMM scaling with cores"),
        vec![
            "cores".into(),
            "construct".into(),
            "multiply".into(),
            "speedup".into(),
        ],
    );
    let mut base = 0.0f64;
    for cores in core_grid() {
        let (ab, construct) = timed(|| {
            let a = DenseMatrix::from_fn(N, N, |i, j| ((i + j) % 3 == 0) as u8 as f32);
            let b = DenseMatrix::from_fn(N, N, |i, j| ((i * j) % 5 == 0) as u8 as f32);
            (a, b)
        });
        let (_, mult) = timed(|| std::hint::black_box(matmul_parallel(&ab.0, &ab.1, cores)));
        if cores == 1 {
            base = mult;
        }
        t.push_row(
            cores.to_string(),
            vec![
                fmt_secs(construct),
                fmt_secs(mult),
                format!("{:.2}x", base / mult),
            ],
        );
    }
    t
}

/// Figure 4a: 2-path join-project across datasets, every registered
/// 2-path engine, single core.
pub fn fig4a(scale: f64) -> Table {
    let registry = default_registry(1);
    let probe = probe_relation();
    let probe_q = Query::two_path(&probe, &probe).build().unwrap();
    let mut headers = engine_headers(&registry, &probe_q, "Dataset");
    headers.push("|OUT|".into());
    let mut t = Table::new("Figure 4a: two-path query, single core", headers);
    for kind in DatasetKind::ALL {
        let r = dataset(kind, scale);
        let q = Query::two_path(&r, &r).build().unwrap();
        let (mut cells, out_rows) = sweep_engines(&registry, &q);
        cells.push(out_rows.to_string());
        t.push_row(kind.name(), cells);
    }
    t
}

/// Figure 4b: star query (k = 3), MMJoin vs Non-MMJoin, single core.
pub fn fig4b(scale: f64) -> Table {
    let registry = default_registry(1);
    let mut t = Table::new(
        "Figure 4b: three-relation star query, single core",
        vec![
            "Dataset".into(),
            "MMJoin".into(),
            "Non-MMJoin".into(),
            "|OUT|".into(),
        ],
    );
    for kind in DatasetKind::ALL {
        let rels = star_dataset(kind, scale, 3);
        let q = Query::star(&rels).build().unwrap();
        let (mm_stats, secs_mm) = run_counted(registry.get("MMJoin").unwrap(), &q);
        let (nm_stats, secs_nm) = run_counted(registry.get("Non-MMJoin").unwrap(), &q);
        assert_eq!(mm_stats.rows, nm_stats.rows, "{kind:?}: engines disagree");
        t.push_row(
            kind.name(),
            vec![
                fmt_secs(secs_mm),
                fmt_secs(secs_nm),
                mm_stats.rows.to_string(),
            ],
        );
    }
    t
}

/// Figure 4c: set-containment join across datasets, every registered
/// containment engine, single core.
pub fn fig4c(scale: f64) -> Table {
    let registry = default_registry(1);
    let probe = probe_relation();
    let probe_q = Query::containment(&probe).build().unwrap();
    let mut headers = engine_headers(&registry, &probe_q, "Dataset");
    headers.push("|SCJ|".into());
    let mut t = Table::new("Figure 4c: set containment join, single core", headers);
    for kind in DatasetKind::ALL {
        let r = dataset(kind, scale);
        let q = Query::containment(&r).build().unwrap();
        let (mut cells, out_rows) = sweep_engines(&registry, &q);
        cells.push(out_rows.to_string());
        t.push_row(kind.name(), cells);
    }
    t
}

/// Figures 4d/4e: 2-path multicore scaling (Jokes, Words).
pub fn fig4de(scale: f64) -> Table {
    let mut t = Table::new(
        "Figures 4d/4e: two-path query, multicore",
        vec![
            "cores".into(),
            "Jokes MMJoin".into(),
            "Jokes Non-MM".into(),
            "Words MMJoin".into(),
            "Words Non-MM".into(),
        ],
    );
    let jokes = dataset(DatasetKind::Jokes, scale);
    let words = dataset(DatasetKind::Words, scale);
    for cores in core_grid() {
        let registry = default_registry(cores);
        let mut cells = Vec::new();
        for r in [&jokes, &words] {
            let q = Query::two_path(r, r).build().unwrap();
            let (_, secs_mm) = run_counted(registry.get("MMJoin").unwrap(), &q);
            let (_, secs_nm) = run_counted(registry.get("Non-MMJoin").unwrap(), &q);
            cells.push(fmt_secs(secs_mm));
            cells.push(fmt_secs(secs_nm));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figures 4f/4g: star query multicore scaling (Jokes, Words).
pub fn fig4fg(scale: f64) -> Table {
    let mut t = Table::new(
        "Figures 4f/4g: star query, multicore",
        vec![
            "cores".into(),
            "Jokes MMJoin".into(),
            "Jokes Non-MM".into(),
            "Words MMJoin".into(),
            "Words Non-MM".into(),
        ],
    );
    let jokes = star_dataset(DatasetKind::Jokes, scale, 3);
    let words = star_dataset(DatasetKind::Words, scale, 3);
    for cores in core_grid() {
        let registry = default_registry(cores);
        let mut cells = Vec::new();
        for rels in [&jokes, &words] {
            let q = Query::star(rels).build().unwrap();
            let (_, secs_mm) = run_counted(registry.get("MMJoin").unwrap(), &q);
            let (_, secs_nm) = run_counted(registry.get("Non-MMJoin").unwrap(), &q);
            cells.push(fmt_secs(secs_mm));
            cells.push(fmt_secs(secs_nm));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figures 5a/5b/5c: unordered SSJ vs overlap threshold `c`, every
/// registered similarity engine.
pub fn fig5_unordered(kind: DatasetKind, scale: f64) -> Table {
    let registry = default_registry(1);
    let r = dataset(kind, scale);
    let probe_q = Query::similarity(&r, 2).build().unwrap();
    let mut headers = engine_headers(&registry, &probe_q, "c");
    headers.push("|OUT|".into());
    let mut t = Table::new(
        format!("Figure 5 (unordered SSJ, {})", kind.name()),
        headers,
    );
    for c in 2..=6u32 {
        let q = Query::similarity(&r, c).build().unwrap();
        let (mut cells, out_rows) = sweep_engines(&registry, &q);
        cells.push(out_rows.to_string());
        t.push_row(c.to_string(), cells);
    }
    t
}

/// Figures 5d/5g/5h: parallel unordered SSJ at `c = 2`.
pub fn fig5_parallel(kind: DatasetKind, scale: f64) -> Table {
    let r = dataset(kind, scale);
    let probe_q = Query::similarity(&r, 2).build().unwrap();
    let headers = engine_headers(&default_registry(1), &probe_q, "cores");
    let mut t = Table::new(
        format!("Figure 5 (parallel unordered SSJ c=2, {})", kind.name()),
        headers,
    );
    for cores in core_grid() {
        let registry = default_registry(cores);
        let (cells, _) = sweep_engines(&registry, &probe_q);
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figures 5e/5f/6a: ordered SSJ vs overlap threshold.
pub fn fig_ordered_ssj(kind: DatasetKind, scale: f64) -> Table {
    let registry = default_registry(1);
    let r = dataset(kind, scale);
    let probe_q = Query::similarity(&r, 2).ordered().build().unwrap();
    let headers = engine_headers(&registry, &probe_q, "c");
    let mut t = Table::new(
        format!("Figures 5e/5f/6a (ordered SSJ, {})", kind.name()),
        headers,
    );
    for c in 2..=6u32 {
        let q = Query::similarity(&r, c).ordered().build().unwrap();
        let (cells, _) = sweep_engines(&registry, &q);
        t.push_row(c.to_string(), cells);
    }
    t
}

/// Figures 6b/6c/6d: BSI average delay vs batch size.
pub fn fig6_bsi(kind: DatasetKind, scale: f64) -> Table {
    let mut t = Table::new(
        format!("Figure 6 (BSI average delay, {})", kind.name()),
        vec![
            "batch".into(),
            "MMJoin delay".into(),
            "Non-MM delay".into(),
            "MM machines".into(),
            "Non-MM machines".into(),
        ],
    );
    let r = dataset(kind, scale);
    let workload = random_workload(&r, &r, 20_000, SEED);
    // The paper's arrival rate (1000 q/s) matched datasets ~1000× larger;
    // the scaled-down instances need a proportionally faster stream for the
    // queueing/processing trade-off to be visible.
    const RATE: f64 = 100_000.0;
    for &batch in &[250usize, 500, 1000, 2000, 4000] {
        let mm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::mm(1));
        let nm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::NonMm);
        t.push_row(
            batch.to_string(),
            vec![
                fmt_secs(mm.avg_delay_secs),
                fmt_secs(nm.avg_delay_secs),
                mm.machines_needed.to_string(),
                nm.machines_needed.to_string(),
            ],
        );
    }
    t
}

/// Figure 7: parallel SCJ, MMJoin vs PIEJoin, dense datasets.
pub fn fig7(scale: f64) -> Table {
    let kinds = [
        DatasetKind::Jokes,
        DatasetKind::Words,
        DatasetKind::Protein,
        DatasetKind::Image,
    ];
    let mut headers: Vec<String> = vec!["cores".into()];
    for k in kinds {
        headers.push(format!("{} MMJoin", k.name()));
        headers.push(format!("{} PIEJoin", k.name()));
    }
    let mut t = Table::new("Figure 7: parallel SCJ", headers);
    let datasets: Vec<_> = kinds.iter().map(|&k| dataset(k, scale)).collect();
    for cores in core_grid() {
        let registry = default_registry(cores);
        let mut cells = Vec::new();
        for r in &datasets {
            let q = Query::containment(r).build().unwrap();
            let (_, mm) = run_counted(registry.get("MMJoin").unwrap(), &q);
            let (_, pie) = run_counted(registry.get("PIEJoin").unwrap(), &q);
            cells.push(fmt_secs(mm));
            cells.push(fmt_secs(pie));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figure 8: SizeAware++ optimization ablation on Words (c = 2), reported
/// as a percentage of the NO-OP runtime. (An ablation of one algorithm's
/// internal flags, so it drives the `unordered_ssj` dispatcher directly
/// rather than the registry.)
pub fn fig8(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 8: SizeAware++ ablation on Words (c=2)",
        vec!["Optimizations".into(), "time".into(), "% of NO-OP".into()],
    );
    let r = dataset(DatasetKind::Words, scale);
    let variants: Vec<(&str, SizeAwarePPOpts)> = vec![
        ("NO-OP", SizeAwarePPOpts::none()),
        (
            "Light",
            SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            },
        ),
        (
            "Heavy",
            SizeAwarePPOpts {
                light: true,
                heavy: true,
                prefix: false,
            },
        ),
        ("Prefix", SizeAwarePPOpts::all()),
    ];
    let config = JoinConfig::default();
    let mut noop = 0.0f64;
    for (name, opts) in variants {
        let algo = SsjAlgorithm::SizeAwarePP(opts);
        let (_, secs) = timed(|| unordered_ssj(&r, 2, &algo, &config));
        if name == "NO-OP" {
            noop = secs;
        }
        t.push_row(
            name,
            vec![fmt_secs(secs), format!("{:.1}%", 100.0 * secs / noop)],
        );
    }
    t
}

/// Ablation (beyond the paper): f32 GEMM vs bit-matrix boolean product vs
/// SpGEMM for the heavy core of the 2-path join on a dense dataset.
pub fn ablation_matrix_backends(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablation: heavy-core backend (Jokes dataset)",
        vec!["backend".into(), "time".into(), "|OUT|".into()],
    );
    let r = dataset(DatasetKind::Jokes, scale);
    let q = Query::two_path(&r, &r).build().unwrap();
    let backend_cfg = |backend| JoinConfig {
        heavy_backend: backend,
        ..JoinConfig::default()
    };
    for (name, cfg) in [
        ("f32 GEMM", backend_cfg(HeavyBackend::DenseF32)),
        ("bit-matrix", backend_cfg(HeavyBackend::BitMatrix)),
        ("spgemm", backend_cfg(HeavyBackend::Sparse)),
        ("auto", backend_cfg(HeavyBackend::Auto)),
    ] {
        let engine = MmJoinEngine::new(cfg);
        let (stats, secs) = run_counted(&engine, &q);
        t.push_row(name, vec![fmt_secs(secs), stats.rows.to_string()]);
    }
    t
}

/// Plan report (beyond the paper): what MMJoin's optimizer decided per
/// dataset — plan kind, chosen `(Δ1, Δ2)`, heavy-core shape and light
/// tuple mass — straight out of [`ExecStats`].
pub fn plan_report(scale: f64) -> Table {
    let registry = default_registry(1);
    let mut t = Table::new(
        "Plan report: MMJoin optimizer decisions per dataset",
        vec![
            "Dataset".into(),
            "plan".into(),
            "Δ1".into(),
            "Δ2".into(),
            "heavy (u×v×w)".into(),
            "matrix core".into(),
            "light tuples".into(),
            "est |OUT|".into(),
            "|OUT|".into(),
        ],
    );
    for kind in DatasetKind::ALL {
        let r = dataset(kind, scale);
        let q = Query::two_path(&r, &r).build().unwrap();
        let (stats, _) = run_counted(registry.get("MMJoin").unwrap(), &q);
        let plan = stats.plan.expect("MMJoin reports a plan");
        let fmt_opt = |v: Option<u32>| v.map_or("-".to_string(), |x| x.to_string());
        t.push_row(
            kind.name(),
            vec![
                match plan.kind {
                    PlanKind::Wcoj => "wcoj".to_string(),
                    PlanKind::MatrixPartitioned => "matrix".to_string(),
                },
                fmt_opt(plan.delta1),
                fmt_opt(plan.delta2),
                plan.heavy_dims
                    .map_or("-".to_string(), |(u, v, w)| format!("{u}x{v}x{w}")),
                plan.heavy_core_matrix.map_or("-".to_string(), |m| {
                    if m { "yes" } else { "no" }.to_string()
                }),
                plan.light_tuples
                    .map_or("-".to_string(), |(lr, _)| lr.to_string()),
                plan.estimated_out
                    .map_or("-".to_string(), |e| e.to_string()),
                stats.rows.to_string(),
            ],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmjoin::PairSink;

    const TINY: f64 = 0.03;

    #[test]
    fn table2_renders() {
        let s = table2(TINY);
        assert!(s.contains("DBLP"));
    }

    #[test]
    fn registry_engines_agree_on_tiny_scale() {
        let r = dataset(DatasetKind::Jokes, TINY);
        let registry = default_registry(1);
        let q = Query::two_path(&r, &r).build().unwrap();
        let engines = registry.engines_for(&q);
        assert!(engines.len() >= 6, "expected the full 2-path roster");
        let mut reference: Option<Vec<(u32, u32)>> = None;
        for e in engines {
            let mut sink = PairSink::new();
            e.execute(&q, &mut sink).unwrap();
            match &reference {
                None => reference = Some(sink.pairs),
                Some(r0) => assert_eq!(&sink.pairs, r0, "{}", e.name()),
            }
        }
    }

    #[test]
    fn fig8_variants_run() {
        let t = fig8(TINY);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn fig6_runs_tiny() {
        let r = dataset(DatasetKind::Words, TINY);
        let w = random_workload(&r, &r, 50, 1);
        let rep = simulate_batching(&r, &r, &w, 25, 1000.0, &BsiStrategy::NonMm);
        assert!(rep.machines_needed >= 1);
    }

    #[test]
    fn plan_report_reports_thresholds_for_dense_data() {
        let t = plan_report(TINY);
        assert_eq!(t.rows.len(), DatasetKind::ALL.len());
        // At least one dense dataset must take the matrix plan and report
        // concrete thresholds.
        assert!(
            t.rows
                .iter()
                .any(|(_, cells)| cells[0] == "matrix" && cells[1] != "-"),
            "{t:?}"
        );
    }
}
