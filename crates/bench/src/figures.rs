//! Per-figure experiment drivers (§7). Each function regenerates one table
//! or figure of the paper and returns a rendered [`Table`].

use crate::report::{fmt_secs, Table};
use crate::{core_grid, dataset, star_dataset, timed, SEED};
use mmjoin_baseline::fulljoin::{HashJoinEngine, SortMergeEngine, SystemXEngine};
use mmjoin_baseline::nonmm::ExpandDedupEngine;
use mmjoin_baseline::setintersect::SetIntersectEngine;
use mmjoin_baseline::{StarEngine, TwoPathEngine};
use mmjoin_bsi::{random_workload, simulate_batching, BsiStrategy};
use mmjoin_core::{HeavyBackend, JoinConfig, MmJoinEngine};
use mmjoin_datagen::DatasetKind;
use mmjoin_matrix::{matmul_parallel, DenseMatrix};
use mmjoin_scj::{set_containment_join, ScjAlgorithm};
use mmjoin_ssj::{ordered_ssj, unordered_ssj, SizeAwarePPOpts, SsjAlgorithm};

/// Table 2: dataset characteristics at the experiment scale.
pub fn table2(scale: f64) -> String {
    format!(
        "== Table 2: dataset characteristics (scale {scale}) ==\n{}",
        mmjoin_datagen::table2_report(scale, SEED)
    )
}

/// Figure 3a: single-core GEMM runtime vs square dimension.
pub fn fig3a() -> Table {
    let mut t = Table::new(
        "Figure 3a: matrix multiplication, single core",
        vec!["n".into(), "multiply".into(), "GFLOP/s".into()],
    );
    // Warm up caches/frequency so the first row is not an outlier.
    {
        let a = DenseMatrix::from_fn(256, 256, |i, j| ((i + j) % 2) as f32);
        std::hint::black_box(matmul_parallel(&a, &a, 1));
    }
    for &n in &[256usize, 384, 512, 768, 1024, 1536] {
        let a = DenseMatrix::from_fn(n, n, |i, j| ((i + j) % 3 == 0) as u8 as f32);
        let b = DenseMatrix::from_fn(n, n, |i, j| ((i * j) % 5 == 0) as u8 as f32);
        let (_, secs) = timed(|| std::hint::black_box(matmul_parallel(&a, &b, 1)));
        let gflops = 2.0 * (n as f64).powi(3) / secs / 1e9;
        t.push_row(n.to_string(), vec![fmt_secs(secs), format!("{gflops:.2}")]);
    }
    t
}

/// Figure 3b: construction + multiplication vs core count (fixed n).
pub fn fig3b() -> Table {
    const N: usize = 1024;
    let mut t = Table::new(
        format!("Figure 3b: {N}x{N} GEMM scaling with cores"),
        vec!["cores".into(), "construct".into(), "multiply".into(), "speedup".into()],
    );
    let mut base = 0.0f64;
    for cores in core_grid() {
        let (ab, construct) = timed(|| {
            let a = DenseMatrix::from_fn(N, N, |i, j| ((i + j) % 3 == 0) as u8 as f32);
            let b = DenseMatrix::from_fn(N, N, |i, j| ((i * j) % 5 == 0) as u8 as f32);
            (a, b)
        });
        let (_, mult) = timed(|| std::hint::black_box(matmul_parallel(&ab.0, &ab.1, cores)));
        if cores == 1 {
            base = mult;
        }
        t.push_row(
            cores.to_string(),
            vec![
                fmt_secs(construct),
                fmt_secs(mult),
                format!("{:.2}x", base / mult),
            ],
        );
    }
    t
}

fn two_path_engines() -> Vec<Box<dyn TwoPathEngine>> {
    vec![
        Box::new(MmJoinEngine::serial()),
        Box::new(ExpandDedupEngine::serial()),
        Box::new(HashJoinEngine),
        Box::new(SortMergeEngine),
        Box::new(SetIntersectEngine),
        Box::new(SystemXEngine),
    ]
}

/// Figure 4a: 2-path join-project across datasets and engines, single core.
pub fn fig4a(scale: f64) -> Table {
    let engines = two_path_engines();
    let mut headers: Vec<String> = vec!["Dataset".into()];
    headers.extend(engines.iter().map(|e| e.name().to_string()));
    headers.push("|OUT|".into());
    let mut t = Table::new("Figure 4a: two-path query, single core", headers);
    for kind in DatasetKind::ALL {
        let r = dataset(kind, scale);
        let mut cells = Vec::new();
        let mut out_len = 0usize;
        for e in &engines {
            let (out, secs) = timed(|| e.join_project(&r, &r));
            out_len = out.len();
            cells.push(fmt_secs(secs));
        }
        cells.push(out_len.to_string());
        t.push_row(kind.name(), cells);
    }
    t
}

/// Figure 4b: star query (k = 3), MMJoin vs Non-MMJoin, single core.
pub fn fig4b(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 4b: three-relation star query, single core",
        vec!["Dataset".into(), "MMJoin".into(), "Non-MMJoin".into(), "|OUT|".into()],
    );
    for kind in DatasetKind::ALL {
        let rels = star_dataset(kind, scale, 3);
        let mm = MmJoinEngine::serial();
        let (out_mm, secs_mm) = timed(|| StarEngine::star_join_project(&mm, &rels));
        let nonmm = ExpandDedupEngine::serial();
        let (out_nm, secs_nm) = timed(|| StarEngine::star_join_project(&nonmm, &rels));
        assert_eq!(out_mm.len(), out_nm.len(), "{kind:?}: engines disagree");
        t.push_row(
            kind.name(),
            vec![fmt_secs(secs_mm), fmt_secs(secs_nm), out_mm.len().to_string()],
        );
    }
    t
}

/// Figure 4c: set-containment join across datasets, single core.
pub fn fig4c(scale: f64) -> Table {
    let algos: Vec<(&str, ScjAlgorithm)> = vec![
        ("MMJoin", ScjAlgorithm::mmjoin(1)),
        ("PIEJoin", ScjAlgorithm::PieJoin),
        ("PRETTI", ScjAlgorithm::Pretti),
        ("LIMIT+", ScjAlgorithm::LimitPlus { limit: 2 }),
    ];
    let mut headers: Vec<String> = vec!["Dataset".into()];
    headers.extend(algos.iter().map(|(n, _)| n.to_string()));
    headers.push("|SCJ|".into());
    let mut t = Table::new("Figure 4c: set containment join, single core", headers);
    for kind in DatasetKind::ALL {
        let r = dataset(kind, scale);
        let mut cells = Vec::new();
        let mut out_len = 0usize;
        for (_, algo) in &algos {
            let (out, secs) = timed(|| set_containment_join(&r, algo, 1));
            out_len = out.len();
            cells.push(fmt_secs(secs));
        }
        cells.push(out_len.to_string());
        t.push_row(kind.name(), cells);
    }
    t
}

/// Figures 4d/4e: 2-path multicore scaling (Jokes, Words).
pub fn fig4de(scale: f64) -> Table {
    let mut t = Table::new(
        "Figures 4d/4e: two-path query, multicore",
        vec![
            "cores".into(),
            "Jokes MMJoin".into(),
            "Jokes Non-MM".into(),
            "Words MMJoin".into(),
            "Words Non-MM".into(),
        ],
    );
    let jokes = dataset(DatasetKind::Jokes, scale);
    let words = dataset(DatasetKind::Words, scale);
    for cores in core_grid() {
        let mut cells = Vec::new();
        for r in [&jokes, &words] {
            let mm = MmJoinEngine::parallel(cores);
            let (_, secs_mm) = timed(|| mm.join_project(r, r));
            let nm = ExpandDedupEngine::parallel(cores);
            let (_, secs_nm) = timed(|| nm.join_project(r, r));
            cells.push(fmt_secs(secs_mm));
            cells.push(fmt_secs(secs_nm));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figures 4f/4g: star query multicore scaling (Jokes, Words).
pub fn fig4fg(scale: f64) -> Table {
    let mut t = Table::new(
        "Figures 4f/4g: star query, multicore",
        vec![
            "cores".into(),
            "Jokes MMJoin".into(),
            "Jokes Non-MM".into(),
            "Words MMJoin".into(),
            "Words Non-MM".into(),
        ],
    );
    let jokes = star_dataset(DatasetKind::Jokes, scale, 3);
    let words = star_dataset(DatasetKind::Words, scale, 3);
    for cores in core_grid() {
        let mut cells = Vec::new();
        for rels in [&jokes, &words] {
            let mm = MmJoinEngine::parallel(cores);
            let (_, secs_mm) = timed(|| StarEngine::star_join_project(&mm, rels));
            // Non-MM star is the WCOJ+dedup path; it has no internal
            // parallelism knob, representing the serialized baseline.
            let nm = ExpandDedupEngine::parallel(cores);
            let (_, secs_nm) = timed(|| StarEngine::star_join_project(&nm, rels));
            cells.push(fmt_secs(secs_mm));
            cells.push(fmt_secs(secs_nm));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

fn ssj_algos() -> Vec<(&'static str, SsjAlgorithm)> {
    vec![
        ("MMJoin", SsjAlgorithm::mmjoin(1)),
        ("SizeAware++", SsjAlgorithm::SizeAwarePP(SizeAwarePPOpts::all())),
        ("SizeAware", SsjAlgorithm::SizeAware),
    ]
}

/// Figures 5a/5b/5c: unordered SSJ vs overlap threshold `c`.
pub fn fig5_unordered(kind: DatasetKind, scale: f64) -> Table {
    let mut headers: Vec<String> = vec!["c".into()];
    headers.extend(ssj_algos().iter().map(|(n, _)| n.to_string()));
    headers.push("|OUT|".into());
    let mut t = Table::new(
        format!("Figure 5 (unordered SSJ, {})", kind.name()),
        headers,
    );
    let r = dataset(kind, scale);
    for c in 2..=6u32 {
        let mut cells = Vec::new();
        let mut out_len = 0usize;
        for (_, algo) in ssj_algos() {
            let (out, secs) = timed(|| unordered_ssj(&r, c, &algo, 1));
            out_len = out.len();
            cells.push(fmt_secs(secs));
        }
        cells.push(out_len.to_string());
        t.push_row(c.to_string(), cells);
    }
    t
}

/// Figures 5d/5g/5h: parallel unordered SSJ at `c = 2`.
pub fn fig5_parallel(kind: DatasetKind, scale: f64) -> Table {
    let mut headers: Vec<String> = vec!["cores".into()];
    headers.extend(ssj_algos().iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        format!("Figure 5 (parallel unordered SSJ c=2, {})", kind.name()),
        headers,
    );
    let r = dataset(kind, scale);
    for cores in core_grid() {
        let mut cells = Vec::new();
        for (_, algo) in ssj_algos() {
            let (_, secs) = timed(|| unordered_ssj(&r, 2, &algo, cores));
            cells.push(fmt_secs(secs));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figures 5e/5f/6a: ordered SSJ vs overlap threshold.
pub fn fig_ordered_ssj(kind: DatasetKind, scale: f64) -> Table {
    let mut headers: Vec<String> = vec!["c".into()];
    headers.extend(ssj_algos().iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(
        format!("Figures 5e/5f/6a (ordered SSJ, {})", kind.name()),
        headers,
    );
    let r = dataset(kind, scale);
    for c in 2..=6u32 {
        let mut cells = Vec::new();
        for (_, algo) in ssj_algos() {
            let (_, secs) = timed(|| ordered_ssj(&r, c, &algo, 1));
            cells.push(fmt_secs(secs));
        }
        t.push_row(c.to_string(), cells);
    }
    t
}

/// Figures 6b/6c/6d: BSI average delay vs batch size.
pub fn fig6_bsi(kind: DatasetKind, scale: f64) -> Table {
    let mut t = Table::new(
        format!("Figure 6 (BSI average delay, {})", kind.name()),
        vec![
            "batch".into(),
            "MMJoin delay".into(),
            "Non-MM delay".into(),
            "MM machines".into(),
            "Non-MM machines".into(),
        ],
    );
    let r = dataset(kind, scale);
    let workload = random_workload(&r, &r, 20_000, SEED);
    // The paper's arrival rate (1000 q/s) matched datasets ~1000× larger;
    // the scaled-down instances need a proportionally faster stream for the
    // queueing/processing trade-off to be visible.
    const RATE: f64 = 100_000.0;
    for &batch in &[250usize, 500, 1000, 2000, 4000] {
        let mm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::mm(1));
        let nm = simulate_batching(&r, &r, &workload, batch, RATE, &BsiStrategy::NonMm);
        t.push_row(
            batch.to_string(),
            vec![
                fmt_secs(mm.avg_delay_secs),
                fmt_secs(nm.avg_delay_secs),
                mm.machines_needed.to_string(),
                nm.machines_needed.to_string(),
            ],
        );
    }
    t
}

/// Figure 7: parallel SCJ, MMJoin vs PIEJoin, dense datasets.
pub fn fig7(scale: f64) -> Table {
    let kinds = [
        DatasetKind::Jokes,
        DatasetKind::Words,
        DatasetKind::Protein,
        DatasetKind::Image,
    ];
    let mut headers: Vec<String> = vec!["cores".into()];
    for k in kinds {
        headers.push(format!("{} MMJoin", k.name()));
        headers.push(format!("{} PIEJoin", k.name()));
    }
    let mut t = Table::new("Figure 7: parallel SCJ", headers);
    let datasets: Vec<_> = kinds.iter().map(|&k| dataset(k, scale)).collect();
    for cores in core_grid() {
        let mut cells = Vec::new();
        for r in &datasets {
            let (_, mm) = timed(|| set_containment_join(r, &ScjAlgorithm::mmjoin(cores), cores));
            let (_, pie) = timed(|| set_containment_join(r, &ScjAlgorithm::PieJoin, cores));
            cells.push(fmt_secs(mm));
            cells.push(fmt_secs(pie));
        }
        t.push_row(cores.to_string(), cells);
    }
    t
}

/// Figure 8: SizeAware++ optimization ablation on Words (c = 2), reported
/// as a percentage of the NO-OP runtime.
pub fn fig8(scale: f64) -> Table {
    let mut t = Table::new(
        "Figure 8: SizeAware++ ablation on Words (c=2)",
        vec!["Optimizations".into(), "time".into(), "% of NO-OP".into()],
    );
    let r = dataset(DatasetKind::Words, scale);
    let variants: Vec<(&str, SizeAwarePPOpts)> = vec![
        ("NO-OP", SizeAwarePPOpts::none()),
        (
            "Light",
            SizeAwarePPOpts {
                light: true,
                heavy: false,
                prefix: false,
            },
        ),
        (
            "Heavy",
            SizeAwarePPOpts {
                light: true,
                heavy: true,
                prefix: false,
            },
        ),
        ("Prefix", SizeAwarePPOpts::all()),
    ];
    let mut noop = 0.0f64;
    for (name, opts) in variants {
        let algo = SsjAlgorithm::SizeAwarePP(opts);
        let (_, secs) = timed(|| unordered_ssj(&r, 2, &algo, 1));
        if name == "NO-OP" {
            noop = secs;
        }
        t.push_row(
            name,
            vec![fmt_secs(secs), format!("{:.1}%", 100.0 * secs / noop)],
        );
    }
    t
}

/// Ablation (beyond the paper): f32 GEMM vs bit-matrix boolean product vs
/// Strassen for the heavy core of the 2-path join on a dense dataset.
pub fn ablation_matrix_backends(scale: f64) -> Table {
    let mut t = Table::new(
        "Ablation: heavy-core backend (Jokes dataset)",
        vec!["backend".into(), "time".into(), "|OUT|".into()],
    );
    let r = dataset(DatasetKind::Jokes, scale);
    let backend_cfg = |backend| JoinConfig {
        heavy_backend: backend,
        ..JoinConfig::default()
    };
    for (name, cfg) in [
        ("f32 GEMM", backend_cfg(HeavyBackend::DenseF32)),
        ("bit-matrix", backend_cfg(HeavyBackend::BitMatrix)),
        ("spgemm", backend_cfg(HeavyBackend::Sparse)),
        ("auto", backend_cfg(HeavyBackend::Auto)),
    ] {
        let engine = MmJoinEngine::new(cfg);
        let (out, secs) = timed(|| engine.join_project(&r, &r));
        t.push_row(name, vec![fmt_secs(secs), out.len().to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: f64 = 0.03;

    #[test]
    fn table2_renders() {
        let s = table2(TINY);
        assert!(s.contains("DBLP"));
    }

    #[test]
    fn fig4a_engines_agree_on_tiny_scale() {
        // The driver asserts per-engine output lengths match implicitly by
        // printing the last; here verify engines agree on a tiny instance.
        let r = dataset(DatasetKind::Jokes, TINY);
        let engines = two_path_engines();
        let reference = engines[1].join_project(&r, &r);
        for e in &engines {
            assert_eq!(e.join_project(&r, &r), reference, "{}", e.name());
        }
    }

    #[test]
    fn fig8_variants_run() {
        let t = fig8(TINY);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn fig6_runs_tiny() {
        let r = dataset(DatasetKind::Words, TINY);
        let w = random_workload(&r, &r, 50, 1);
        let rep = simulate_batching(&r, &r, &w, 25, 1000.0, &BsiStrategy::NonMm);
        assert!(rep.machines_needed >= 1);
    }
}
