//! The `saturation` experiment target: drive `mmjoin-netd`'s serving
//! stack over real TCP with 16 concurrent clients mixing queries and
//! updates, verify every response against a serial replay of the same
//! script, and measure the shard-isolation payoff — reader tail latency
//! on one relation while another relation (on a different catalog
//! shard) takes a continuous update storm, sharded vs the single-lock
//! baseline.

use crate::report::Table;
use crate::timed;
use mmjoin::{Request, Service, ServiceConfig};
use mmjoin_net::{serve, Client, NetConfig, Status};
use mmjoin_service::command;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Concurrent TCP clients in the saturation phase (the acceptance
/// criterion asks for ≥ 16).
pub const CLIENTS: usize = 16;
/// Admission-queue bound during saturation — deliberately smaller than
/// the client count so backpressure is exercised, not just configured.
pub const QUEUE_CAPACITY: usize = 8;

/// Per-client relation: disjoint across clients so each client's serial
/// replay is well-defined regardless of interleaving.
fn client_edges(i: usize) -> Vec<(u32, u32)> {
    (0..120u32)
        .map(|j| ((j * (3 + i as u32)) % 40, (j * 7) % 25))
        .collect()
}

fn edges_arg(edges: &[(u32, u32)]) -> String {
    edges
        .iter()
        .map(|(x, y)| format!("{x},{y}"))
        .collect::<Vec<_>>()
        .join(" ")
}

const SHARED_REGISTER: &str = "register shared 0,1 1,2 2,3 3,4 4,0 5,1 6,2 7,3 8,4 9,0 \
     10,5 11,6 12,7 13,8 14,9 15,5 16,6 17,7 18,8 19,9";

/// One client's command script: register, cold/warm full-row queries,
/// a staged insert with cache maintenance, a delete, a star query, and
/// reads of the shared relation. `show 100000` dumps every row so the
/// replay comparison covers actual tuples, not just counts.
fn client_script(i: usize) -> Vec<String> {
    let r = format!("r{i}");
    let edges = client_edges(i);
    vec![
        format!("register {r} {}", edges_arg(&edges)),
        format!("query twopath {r} {r} show 100000"),
        format!("query twopath {r} {r} show 100000"), // warm
        format!("insert {r} 41,{} 42,7", i % 9),
        format!("query twopath {r} {r} show 100000"),
        format!("delete {r} 41,{}", i % 9),
        format!("query star {r} {r} show 100000"),
        "query twopath shared shared show 100000".to_string(),
    ]
}

/// Strips the non-deterministic decoration from a response body so
/// concurrent transcripts compare equal to serial replays: wall-time
/// tokens (`0.042s`), the `cached true/false` pair (cross-client cache
/// warming is real sharing, not a wrong result), and the
/// `(maintained)` marker that rides on cached-and-patched answers.
fn normalize(body: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let mut tokens = body.split_whitespace().peekable();
    while let Some(tok) = tokens.next() {
        if tok == "cached" {
            let _ = tokens.next(); // true/false
            continue;
        }
        if tok == "(maintained)" {
            continue;
        }
        // Epoch counters are global to the shared server catalog, so the
        // serial replay (fresh service) legitimately disagrees on them.
        if tok == "epoch" || tok == "(epoch" {
            let _ = tokens.next(); // the counter, e.g. `7,` or `3)`
            continue;
        }
        if let Some(num) = tok.strip_suffix('s') {
            if num.parse::<f64>().is_ok() {
                continue;
            }
        }
        out.push(tok);
    }
    out.join(" ")
}

struct SaturationOutcome {
    requests: u64,
    wrong: u64,
    overloaded_retries: u64,
    wall: f64,
    latencies_us: Vec<u64>,
    max_depth: u64,
}

/// Runs the 16-client storm against a real TCP server and checks every
/// transcript against its serial replay.
fn run_saturation() -> SaturationOutcome {
    let service = Arc::new(Service::with_config(ServiceConfig {
        workers: 4,
        catalog_shards: 8,
        ..ServiceConfig::default()
    }));
    let server = serve(
        Arc::clone(&service),
        NetConfig {
            queue_capacity: QUEUE_CAPACITY,
            per_client_quota: 2,
            dispatchers: 4,
            ..NetConfig::default()
        },
    )
    .expect("bind saturation server");
    let addr = server.addr();

    let mut setup = Client::connect(addr).expect("setup connect");
    let reg = setup.call(SHARED_REGISTER).expect("register shared");
    assert_eq!(reg.status, Status::Ok, "{}", reg.body);

    let requests = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let mut transcripts: Vec<Vec<String>> = Vec::new();
    let mut latencies_us: Vec<u64> = Vec::new();

    let (results, wall) = timed(|| {
        // lint:allow(thread-spawn): bench client threads simulate an
        // external load generator hammering the service; they are not
        // workspace compute and must not consume executor tokens.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|i| {
                    let requests = &requests;
                    let retries = &retries;
                    scope.spawn(move || {
                        let mut c = Client::connect(addr).expect("client connect");
                        let mut transcript = Vec::new();
                        let mut lats = Vec::new();
                        for line in client_script(i) {
                            // Retry OVERLOADED: bounced commands were
                            // never executed, so resending is safe for
                            // updates too.
                            loop {
                                requests.fetch_add(1, Ordering::Relaxed);
                                let t0 = Instant::now();
                                let resp = c.call(&line).expect("call");
                                match resp.status {
                                    Status::Ok => {
                                        lats.push(
                                            (t0.elapsed().as_secs_f64() * 1e6).round() as u64
                                        );
                                        transcript.push(normalize(&resp.body));
                                        break;
                                    }
                                    Status::Overloaded => {
                                        retries.fetch_add(1, Ordering::Relaxed);
                                        std::thread::yield_now();
                                    }
                                    other => panic!("client {i}: {other} ({})", resp.body),
                                }
                            }
                        }
                        (transcript, lats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });
    for (transcript, lats) in results {
        transcripts.push(transcript);
        latencies_us.extend(lats);
    }

    // Serial replay: each client's script on a fresh single-worker
    // service must produce byte-identical (normalized) answers.
    let mut wrong = 0u64;
    for (i, transcript) in transcripts.iter().enumerate() {
        let serial = Service::with_config(ServiceConfig {
            workers: 1,
            thread_budget: 1,
            ..ServiceConfig::default()
        });
        command::run_line(&serial, SHARED_REGISTER).expect("replay shared");
        for (line, got) in client_script(i).iter().zip(transcript) {
            let expected = normalize(&command::run_line(&serial, line).expect("replay line"));
            if got != &expected {
                wrong += 1;
                eprintln!(
                    "saturation mismatch, client {i}: `{line}`\n  got      {got}\n  expected {expected}"
                );
            }
        }
    }

    let max_depth = server.metrics().max_queue_depth;
    server.shutdown();
    server.wait();
    latencies_us.sort_unstable();
    SaturationOutcome {
        requests: requests.load(Ordering::Relaxed),
        wrong,
        overloaded_retries: retries.load(Ordering::Relaxed),
        wall,
        latencies_us,
        max_depth,
    }
}

struct IsolationOutcome {
    reads: u64,
    wall: f64,
    latencies_us: Vec<u64>,
    hot_updates: u64,
}

/// Readers hammer cached queries on a cold relation while a writer
/// applies a continuous update storm to a hot relation. With
/// `shards == 1` reader and writer share one catalog lock (the
/// pre-sharding baseline); with more shards the names are chosen on
/// distinct shards and the storm is invisible to the readers.
fn run_isolation(shards: usize, scale: f64) -> IsolationOutcome {
    const READERS: usize = 4;
    const READS_PER_READER: usize = 200;

    let service = Service::with_config(ServiceConfig {
        workers: READERS + 1,
        catalog_shards: shards,
        ..ServiceConfig::default()
    });
    let hot = "hot".to_string();
    let cold = if shards == 1 {
        "cold0".to_string() // same (only) shard by construction
    } else {
        (0..)
            .map(|i| format!("cold{i}"))
            .find(|n| service.shard_of(n) != service.shard_of(&hot))
            .unwrap()
    };
    // The hot relation is big enough that every delta apply holds its
    // shard's write lock for real work.
    service.register(
        &hot,
        crate::dataset(mmjoin_datagen::DatasetKind::Jokes, (scale * 0.6).max(0.05)),
    );
    service.register(
        &cold,
        mmjoin::Relation::from_edges((0..200u32).map(|j| ((j * 3) % 40, (j * 7) % 25))),
    );
    // Warm the cold entry: the storm must never invalidate it.
    service
        .query(Request::two_path(&cold, &cold))
        .expect("warm cold entry");

    let stop = AtomicBool::new(false);
    let hot_updates = AtomicU64::new(0);
    let mut latencies_us: Vec<u64> = Vec::new();

    let (all_lats, wall) = timed(|| {
        // lint:allow(thread-spawn): bench client threads simulate an
        // external load generator hammering the service; they are not
        // workspace compute and must not consume executor tokens.
        std::thread::scope(|scope| {
            let service = &service;
            let stop = &stop;
            let hot_updates = &hot_updates;
            let hot = &hot;
            let cold = &cold;
            scope.spawn(move || {
                // Continuous storm: back-to-back effective inserts.
                let mut step = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    service
                        .insert(hot, [(10_000 + step, step % 97)])
                        .expect("hot insert");
                    hot_updates.fetch_add(1, Ordering::Relaxed);
                    step += 1;
                }
            });
            let readers: Vec<_> = (0..READERS)
                .map(|_| {
                    scope.spawn(move || {
                        let mut lats = Vec::with_capacity(READS_PER_READER);
                        for _ in 0..READS_PER_READER {
                            let t0 = Instant::now();
                            let resp = service
                                .query(Request::two_path(cold, cold))
                                .expect("cold read");
                            lats.push((t0.elapsed().as_secs_f64() * 1e6).round() as u64);
                            assert!(resp.cached, "storm invalidated the cold entry");
                        }
                        lats
                    })
                })
                .collect();
            let out: Vec<Vec<u64>> = readers
                .into_iter()
                .map(|r| r.join().expect("reader"))
                .collect();
            stop.store(true, Ordering::Relaxed);
            out
        })
    });
    for lats in all_lats {
        latencies_us.extend(lats);
    }
    latencies_us.sort_unstable();
    IsolationOutcome {
        reads: (READERS * READS_PER_READER) as u64,
        wall,
        latencies_us,
        hot_updates: hot_updates.load(Ordering::Relaxed),
    }
}

fn pct(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[((sorted_us.len() as f64 - 1.0) * p).round() as usize]
}

/// Runs both phases and lays the numbers out for the perf gate
/// ([`crate::gate::check_saturation`]).
pub fn saturation_experiment(scale: f64) -> Table {
    let sat = run_saturation();
    let single = run_isolation(1, scale);
    let sharded = run_isolation(8, scale);

    let mut table = Table::new(
        format!(
            "saturation: {CLIENTS} TCP clients vs queue bound {QUEUE_CAPACITY}; \
             shard isolation: cached reads of B under an update storm on A (scale {scale})"
        ),
        vec![
            "phase".into(),
            "requests".into(),
            "wall".into(),
            "qps".into(),
            "p50".into(),
            "p99".into(),
            "wrong".into(),
            "depth".into(),
        ],
    );
    table.push_row(
        "saturation",
        vec![
            sat.requests.to_string(),
            crate::report::fmt_secs(sat.wall),
            format!("{:.0}", sat.requests as f64 / sat.wall.max(1e-9)),
            format!("{}us", pct(&sat.latencies_us, 0.50)),
            format!("{}us", pct(&sat.latencies_us, 0.99)),
            sat.wrong.to_string(),
            format!("{}/{}", sat.max_depth, QUEUE_CAPACITY),
        ],
    );
    table.push_row(
        "overloaded",
        vec![
            sat.overloaded_retries.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    );
    for (key, iso) in [("reads shards=1", &single), ("reads shards=8", &sharded)] {
        table.push_row(
            key,
            vec![
                iso.reads.to_string(),
                crate::report::fmt_secs(iso.wall),
                format!("{:.0}", iso.reads as f64 / iso.wall.max(1e-9)),
                format!("{}us", pct(&iso.latencies_us, 0.50)),
                format!("{}us", pct(&iso.latencies_us, 0.99)),
                "-".into(),
                format!("storm {}", iso.hot_updates),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_decoration_only() {
        assert_eq!(
            normalize("ok rows 10 engine MMJoin cached true (maintained) 0.042s"),
            "ok rows 10 engine MMJoin"
        );
        assert_eq!(
            normalize("ok rows 10 engine MMJoin cached false 0.001s (limit reached)"),
            "ok rows 10 engine MMJoin (limit reached)"
        );
        // Row dumps and counts survive untouched.
        assert_eq!(normalize("(1, 2) x3"), "(1, 2) x3");
        // Epoch counters are global to the shared catalog — stripped.
        assert_eq!(
            normalize("ok relation r: 100 tuples (epoch 3) epoch 7,"),
            "ok relation r: 100 tuples"
        );
        // A token like `5s` is timing; `sets` is not.
        assert_eq!(normalize("805 sets, 5s"), "805 sets,");
    }

    #[test]
    fn client_scripts_are_disjoint_but_share_one_relation() {
        let a = client_script(0);
        let b = client_script(1);
        assert!(a.iter().all(|l| !l.contains("r1 ")));
        assert!(b.iter().all(|l| !l.contains("r0 ")));
        assert!(a.last().unwrap().contains("shared"));
        assert_eq!(a.last(), b.last());
    }

    #[test]
    fn saturation_experiment_small_scale() {
        let table = saturation_experiment(0.02);
        assert_eq!(table.rows.len(), 4);
        let wrong = crate::gate::cell(&table, "saturation", "wrong").unwrap();
        assert_eq!(
            wrong, "0",
            "concurrent transcripts diverged from serial replay"
        );
        crate::gate::check_saturation(&table).unwrap();
    }
}
