//! Shared experiment harness: timing helpers, dataset preparation and the
//! per-figure drivers used by both the `experiments` binary and the
//! Criterion benches.
//!
//! Every function here corresponds to a table or figure of §7 (see
//! DESIGN.md's experiment index); the binary simply dispatches to them and
//! prints their reports.

pub mod chains_bench;
pub mod crossover_bench;
pub mod figures;
pub mod gate;
pub mod report;
pub mod saturation_bench;
pub mod service_bench;
pub mod updates_bench;

use mmjoin_datagen::DatasetKind;
use mmjoin_storage::Relation;
use std::time::Instant;

/// Default dataset scale for the full experiment sweep: small enough that
/// the whole suite (including the deliberately slow DBMS-style baselines)
/// finishes on a laptop, large enough that the dense datasets keep their
/// duplication-heavy behaviour.
pub const DEFAULT_SCALE: f64 = 0.25;

/// Fixed workspace-wide experiment seed.
pub const SEED: u64 = 2020;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times a closure over `warmup` discarded runs plus `trials` measured
/// runs, returning the last result and the **median** trial time. The
/// perf gate uses this (one warmup, three trials) so a single scheduler
/// hiccup cannot fake a regression.
pub fn timed_median<T>(warmup: usize, trials: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    for _ in 0..warmup {
        let _ = f();
    }
    let trials = trials.max(1);
    let mut times = Vec::with_capacity(trials);
    let (mut out, secs) = timed(&mut f);
    times.push(secs);
    for _ in 1..trials {
        let (next, secs) = timed(&mut f);
        out = next;
        times.push(secs);
    }
    times.sort_by(f64::total_cmp);
    (out, times[times.len() / 2])
}

/// Generates (and semi-join reduces) the self-join instance for a dataset.
pub fn dataset(kind: DatasetKind, scale: f64) -> Relation {
    mmjoin_datagen::generate(kind, scale, SEED)
}

/// Star-query instances are sampled further down (§7.2 samples "so that the
/// result can fit in main memory"): dense datasets get an extra shrink
/// because the full star join grows cubically in the shared-element degree,
/// and the per-relation set count is capped so near-all-pairs outputs stay
/// bounded (`sets^k` tuples otherwise).
pub fn star_dataset(kind: DatasetKind, scale: f64, k: usize) -> Vec<Relation> {
    let star_scale = if kind.is_dense() {
        scale * 0.12
    } else {
        scale * 0.5
    };
    let rels = mmjoin_datagen::generate_star(kind, star_scale, SEED, k);
    if !kind.is_dense() {
        return rels;
    }
    const MAX_SETS: u32 = 150;
    rels.into_iter()
        .map(|r| Relation::from_edges(r.edges().iter().copied().filter(|&(x, _)| x < MAX_SETS)))
        .collect()
}

/// Core counts to sweep in the multicore figures. On hosts with fewer than
/// 4 CPUs the sweep still covers 1–4 workers so the parallel code paths are
/// exercised (true scaling obviously needs the physical cores; see
/// EXPERIMENTS.md notes).
pub fn core_grid() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 8);
    (1..=max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn dataset_generation_cached_profile() {
        let r = dataset(DatasetKind::RoadNet, 0.05);
        assert!(!r.is_empty());
    }

    #[test]
    fn core_grid_nonempty_ascending() {
        let g = core_grid();
        assert!(!g.is_empty());
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(g[0], 1);
    }

    #[test]
    fn star_dataset_shrinks_dense() {
        let dense = star_dataset(DatasetKind::Protein, 0.25, 3);
        let sparse = star_dataset(DatasetKind::RoadNet, 0.25, 3);
        assert_eq!(dense.len(), 3);
        assert_eq!(sparse.len(), 3);
        assert!(dense[0].len() < sparse[0].len() * 50);
    }
}
