//! Experiment driver: regenerates every table and figure of §7, plus the
//! service-layer workload replay.
//!
//! ```text
//! experiments <target> [<target> …] [--scale <f64>] [--json <path>]
//!             [--gate] [--threads <n>]
//!
//! targets: engines table2 plan fig3a fig3b fig4a fig4b fig4c fig4d fig4f
//!          fig5a fig5b fig5c fig5d fig5g fig5h fig5e fig5f fig6a
//!          fig6b fig6c fig6d fig7 fig8 ablation service updates chains
//!          saturation crossover all
//! ```
//!
//! Several targets may be given at once; with `--json` their tables land
//! in one file — `experiments service saturation --gate --json
//! BENCH_6.json` is how the committed perf-trajectory snapshot is made.
//!
//! Engines come from the [`mmjoin::EngineRegistry`]; `experiments engines`
//! prints the roster the other targets enumerate. With `--json <path>`,
//! every produced table is also written to `path` as a JSON array of
//! `{"target", "scale", "title", "headers", "rows"}` objects (text-only
//! targets contribute `{"target", "scale", "text"}`) — the start of the
//! `BENCH_*.json` machine-readable perf trajectory. With `--gate`, the
//! perf-regression thresholds in [`mmjoin_bench::gate`] are checked after
//! each table and any violation fails the process — the CI smoke gate.

use mmjoin::default_registry;
use mmjoin_bench::report::{json_string, Table};
use mmjoin_bench::{
    chains_bench, crossover_bench, figures, gate, saturation_bench, service_bench, updates_bench,
    DEFAULT_SCALE,
};
use mmjoin_datagen::DatasetKind;

/// The registry roster as text: every engine name and the query families
/// it supports (probed with tiny representative queries).
fn engines_report() -> String {
    use mmjoin::{Query, QueryGraph, Relation};
    let registry = default_registry(1);
    let r = Relation::from_edges([(0, 0), (1, 0)]);
    let rels = vec![r.clone(), r.clone()];
    let chain = vec![r.clone(), r.clone(), r.clone()];
    let probes = [
        ("two-path", Query::two_path(&r, &r).build().unwrap()),
        ("star", Query::star(&rels).build().unwrap()),
        ("similarity", Query::similarity(&r, 1).build().unwrap()),
        ("containment", Query::containment(&r).build().unwrap()),
        (
            "general",
            Query::general(QueryGraph::chain(&chain).unwrap()).unwrap(),
        ),
    ];
    let mut out = format!("{} registered engines:\n", registry.len());
    for engine in registry.iter() {
        let families: Vec<&str> = probes
            .iter()
            .filter(|(_, q)| engine.supports(q))
            .map(|&(name, _)| name)
            .collect();
        out.push_str(&format!(
            "  {:<26} {}\n",
            engine.name(),
            families.join(", ")
        ));
    }
    out
}

/// One target's produce: a structured table or plain text.
enum Output {
    Table(Table),
    Text(String),
}

/// Runs one target. Under `--gate`, `chains` and `crossover` — the
/// targets whose gate thresholds read *timings* (baseline speedup,
/// thread-scaling smoke; the service/updates gates threshold hit rates,
/// which are deterministic) — switch to one-warmup median-of-3
/// measurements so a single scheduler hiccup cannot fake a perf
/// regression. `threads` (`--threads`, default 8) is the intra-query
/// budget the crossover target calibrates and scales against.
fn run(name: &str, scale: f64, gated: bool, threads: usize) -> Output {
    let trials = if gated { 3 } else { 1 };
    match name {
        "engines" => Output::Text(engines_report()),
        "plan" => Output::Table(figures::plan_report(scale)),
        "table2" => Output::Text(figures::table2(scale)),
        "fig3a" => Output::Table(figures::fig3a()),
        "fig3b" => Output::Table(figures::fig3b()),
        "fig4a" => Output::Table(figures::fig4a(scale)),
        "fig4b" => Output::Table(figures::fig4b(scale)),
        "fig4c" => Output::Table(figures::fig4c(scale)),
        "fig4d" | "fig4e" => Output::Table(figures::fig4de(scale)),
        "fig4f" | "fig4g" => Output::Table(figures::fig4fg(scale)),
        "fig5a" => Output::Table(figures::fig5_unordered(DatasetKind::Dblp, scale)),
        "fig5b" => Output::Table(figures::fig5_unordered(DatasetKind::Jokes, scale)),
        "fig5c" => Output::Table(figures::fig5_unordered(DatasetKind::Image, scale)),
        "fig5d" => Output::Table(figures::fig5_parallel(DatasetKind::Dblp, scale)),
        "fig5g" => Output::Table(figures::fig5_parallel(DatasetKind::Jokes, scale)),
        "fig5h" => Output::Table(figures::fig5_parallel(DatasetKind::Image, scale)),
        "fig5e" => Output::Table(figures::fig_ordered_ssj(DatasetKind::Dblp, scale)),
        "fig5f" => Output::Table(figures::fig_ordered_ssj(DatasetKind::Jokes, scale)),
        "fig6a" => Output::Table(figures::fig_ordered_ssj(DatasetKind::Image, scale)),
        "fig6b" => Output::Table(figures::fig6_bsi(DatasetKind::Jokes, scale)),
        "fig6c" => Output::Table(figures::fig6_bsi(DatasetKind::Words, scale)),
        "fig6d" => Output::Table(figures::fig6_bsi(DatasetKind::Image, scale)),
        "fig7" => Output::Table(figures::fig7(scale)),
        "fig8" => Output::Table(figures::fig8(scale)),
        "ablation" => Output::Table(figures::ablation_matrix_backends(scale)),
        "service" => Output::Table(service_bench::service_experiment(scale)),
        "saturation" => Output::Table(saturation_bench::saturation_experiment(scale)),
        "updates" => Output::Table(updates_bench::updates_experiment(scale)),
        "chains" => Output::Table(chains_bench::chains_experiment_trials(scale, trials)),
        "crossover" => Output::Table(crossover_bench::crossover_experiment(
            scale, trials, threads,
        )),
        other => {
            eprintln!("unknown target `{other}`");
            std::process::exit(2);
        }
    }
}

const ALL_TARGETS: [&str; 30] = [
    "engines",
    "table2",
    "plan",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4f",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5g",
    "fig5h",
    "fig5e",
    "fig5f",
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "fig7",
    "fig8",
    "ablation",
    "service",
    "updates",
    "chains",
    "saturation",
    "crossover",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Leading non-flag arguments are targets; flags follow.
    let named: Vec<&str> = args
        .iter()
        .take_while(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };
    let scale = flag_value("--scale")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SCALE);
    let json_path = flag_value("--json").cloned();
    let gate_enabled = args.iter().any(|a| a == "--gate");
    let threads = flag_value("--threads")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(8);

    let targets: Vec<&str> = if named.is_empty() || named.contains(&"all") {
        ALL_TARGETS.to_vec()
    } else {
        named
    };

    let mut json_entries: Vec<String> = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for name in &targets {
        if targets.len() > 1 {
            eprintln!(">>> running {name} (scale {scale})");
        }
        let output = run(name, scale, gate_enabled, threads);
        match &output {
            Output::Table(table) => println!("{}", table.render()),
            Output::Text(text) => println!("{text}"),
        }
        if gate_enabled {
            if let Output::Table(table) = &output {
                if let Err(violation) = gate::check(name, table) {
                    eprintln!("GATE FAIL [{name}]: {violation}");
                    gate_failures.push(format!("{name}: {violation}"));
                } else {
                    eprintln!("gate ok [{name}]");
                }
            }
        }
        if json_path.is_some() {
            let body = match &output {
                Output::Table(table) => {
                    // Splice the target/scale fields into the table object.
                    let table_json = table.to_json();
                    format!(
                        "{{\"target\": {}, \"scale\": {scale}, {}",
                        json_string(name),
                        &table_json[1..]
                    )
                }
                Output::Text(text) => format!(
                    "{{\"target\": {}, \"scale\": {scale}, \"text\": {}}}",
                    json_string(name),
                    json_string(text)
                ),
            };
            json_entries.push(body);
        }
    }

    if let Some(path) = json_path {
        let payload = format!("[\n  {}\n]\n", json_entries.join(",\n  "));
        if let Err(e) = std::fs::write(&path, payload) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} JSON entries to {path}", json_entries.len());
    }

    if !gate_failures.is_empty() {
        eprintln!("{} perf gate(s) failed:", gate_failures.len());
        for failure in &gate_failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}
