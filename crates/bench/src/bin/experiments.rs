//! Experiment driver: regenerates every table and figure of §7.
//!
//! ```text
//! experiments <target> [--scale <f64>]
//!
//! targets: engines table2 plan fig3a fig3b fig4a fig4b fig4c fig4d fig4f
//!          fig5a fig5b fig5c fig5d fig5g fig5h fig5e fig5f fig6a
//!          fig6b fig6c fig6d fig7 fig8 ablation all
//! ```
//!
//! Engines come from the [`mmjoin::EngineRegistry`]; `experiments engines`
//! prints the roster the other targets enumerate.

use mmjoin::default_registry;
use mmjoin_bench::{figures, DEFAULT_SCALE};
use mmjoin_datagen::DatasetKind;

/// Prints the registry roster: every engine name and the query families it
/// supports (probed with tiny representative queries).
fn print_engines() {
    use mmjoin::{Query, Relation};
    let registry = default_registry(1);
    let r = Relation::from_edges([(0, 0), (1, 0)]);
    let rels = vec![r.clone(), r.clone()];
    let probes = [
        ("two-path", Query::two_path(&r, &r).build().unwrap()),
        ("star", Query::star(&rels).build().unwrap()),
        ("similarity", Query::similarity(&r, 1).build().unwrap()),
        ("containment", Query::containment(&r).build().unwrap()),
    ];
    println!("{} registered engines:", registry.len());
    for engine in registry.iter() {
        let families: Vec<&str> = probes
            .iter()
            .filter(|(_, q)| engine.supports(q))
            .map(|&(name, _)| name)
            .collect();
        println!("  {:<26} {}", engine.name(), families.join(", "));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SCALE);

    let run = |name: &str| match name {
        "engines" => print_engines(),
        "plan" => println!("{}", figures::plan_report(scale).render()),
        "table2" => println!("{}", figures::table2(scale)),
        "fig3a" => println!("{}", figures::fig3a().render()),
        "fig3b" => println!("{}", figures::fig3b().render()),
        "fig4a" => println!("{}", figures::fig4a(scale).render()),
        "fig4b" => println!("{}", figures::fig4b(scale).render()),
        "fig4c" => println!("{}", figures::fig4c(scale).render()),
        "fig4d" | "fig4e" => println!("{}", figures::fig4de(scale).render()),
        "fig4f" | "fig4g" => println!("{}", figures::fig4fg(scale).render()),
        "fig5a" => println!(
            "{}",
            figures::fig5_unordered(DatasetKind::Dblp, scale).render()
        ),
        "fig5b" => println!(
            "{}",
            figures::fig5_unordered(DatasetKind::Jokes, scale).render()
        ),
        "fig5c" => println!(
            "{}",
            figures::fig5_unordered(DatasetKind::Image, scale).render()
        ),
        "fig5d" => println!(
            "{}",
            figures::fig5_parallel(DatasetKind::Dblp, scale).render()
        ),
        "fig5g" => println!(
            "{}",
            figures::fig5_parallel(DatasetKind::Jokes, scale).render()
        ),
        "fig5h" => println!(
            "{}",
            figures::fig5_parallel(DatasetKind::Image, scale).render()
        ),
        "fig5e" => println!(
            "{}",
            figures::fig_ordered_ssj(DatasetKind::Dblp, scale).render()
        ),
        "fig5f" => println!(
            "{}",
            figures::fig_ordered_ssj(DatasetKind::Jokes, scale).render()
        ),
        "fig6a" => println!(
            "{}",
            figures::fig_ordered_ssj(DatasetKind::Image, scale).render()
        ),
        "fig6b" => println!("{}", figures::fig6_bsi(DatasetKind::Jokes, scale).render()),
        "fig6c" => println!("{}", figures::fig6_bsi(DatasetKind::Words, scale).render()),
        "fig6d" => println!("{}", figures::fig6_bsi(DatasetKind::Image, scale).render()),
        "fig7" => println!("{}", figures::fig7(scale).render()),
        "fig8" => println!("{}", figures::fig8(scale).render()),
        "ablation" => println!("{}", figures::ablation_matrix_backends(scale).render()),
        other => {
            eprintln!("unknown target `{other}`");
            std::process::exit(2);
        }
    };

    if target == "all" {
        for name in [
            "engines", "table2", "plan", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c", "fig4d",
            "fig4f", "fig5a", "fig5b", "fig5c", "fig5d", "fig5g", "fig5h", "fig5e", "fig5f",
            "fig6a", "fig6b", "fig6c", "fig6d", "fig7", "fig8", "ablation",
        ] {
            eprintln!(">>> running {name} (scale {scale})");
            run(name);
        }
    } else {
        run(target);
    }
}
