//! `experiments -- chains` — k-path chain queries through the
//! decomposing planner vs the materialize-everything full-join baseline,
//! with a thread-scaling axis over the shared executor.
//!
//! For each `k ∈ {3, 4, 5}` the composed plan (k−1 output-sensitive
//! 2-path steps, elimination order by the §5 estimates) runs serially and
//! on a [`PAR_THREADS`]-thread executor (DAG wavefronts + parallel step
//! internals), then races a classic baseline that enumerates every k-path
//! of the full join and deduplicates the projected endpoint pairs at the
//! end. On the skewed chain instance ([`mmjoin_datagen::generate_chain`])
//! the full join grows multiplicatively in `k` while the projected output
//! does not, so the gap widens with `k` — the chain-query analogue of
//! Figure 4. The `cores` column records the host's parallelism so the
//! gate can decide whether demanding real scaling is meaningful.

use crate::report::{fmt_secs, Table};
use crate::{timed, timed_median, SEED};
use mmjoin::{CountSink, Engine, JoinConfig, MmJoinEngine, Query, QueryGraph};
use mmjoin_executor::Executor;
use mmjoin_storage::{Relation, Value};
use std::sync::Arc;

/// Threads on the parallel axis of the sweep.
pub const PAR_THREADS: usize = 4;

/// Runs the chain sweep at `scale` with a single timing trial per cell.
pub fn chains_experiment(scale: f64) -> Table {
    chains_experiment_trials(scale, 1)
}

/// [`chains_experiment`] with `trials` measured runs per composed timing
/// (median reported, plus one warmup when `trials > 1`) — what `--gate`
/// uses to keep single-run noise out of the regression thresholds.
///
/// The instance scale is capped at 0.1: the *baseline's* cost is the
/// full k-path join, which grows with roughly the cube of the scale per
/// hop — past the cap the reference side alone runs for minutes while
/// the composed plan stays in milliseconds, telling us nothing new.
pub fn chains_experiment_trials(scale: f64, trials: usize) -> Table {
    let scale = scale.min(0.1);
    let warmup = usize::from(trials > 1);
    let cores = mmjoin_executor::available_parallelism();
    let mut table = Table::new(
        format!(
            "k-path chains, skewed Words profile (scale {scale}, median of {trials}): \
             composed plan 1t vs {PAR_THREADS}t vs full join"
        ),
        vec![
            "k".into(),
            "composed 1t".into(),
            format!("composed {PAR_THREADS}t"),
            "par speedup".into(),
            "baseline".into(),
            "speedup".into(),
            "rows".into(),
            "rows match".into(),
            "full join".into(),
            "cores".into(),
        ],
    );
    let serial_engine = MmJoinEngine::new(JoinConfig::default());
    let parallel_engine = MmJoinEngine::new(JoinConfig {
        threads: PAR_THREADS,
        executor: Some(Arc::new(Executor::new(PAR_THREADS))),
        ..JoinConfig::default()
    });
    for k in [3usize, 4, 5] {
        let rels = mmjoin_datagen::generate_chain(scale, SEED, k);
        let refs: Vec<&Relation> = rels.iter().collect();
        let run_composed = |engine: &MmJoinEngine| -> u64 {
            let graph = QueryGraph::chain(&refs).expect("chain shape is valid");
            let query = Query::general(graph).expect("validated above");
            let mut sink = CountSink::new();
            engine.execute(&query, &mut sink).expect("chain executes");
            sink.rows
        };

        let (serial_rows, serial_secs) =
            timed_median(warmup, trials, || run_composed(&serial_engine));
        let (parallel_rows, parallel_secs) =
            timed_median(warmup, trials, || run_composed(&parallel_engine));
        let ((full_join, baseline_rows), baseline_secs) = timed(|| chain_full_join_baseline(&refs));

        let par_speedup = serial_secs / parallel_secs.max(1e-9);
        let speedup = baseline_secs / serial_secs.min(parallel_secs).max(1e-9);
        table.push_row(
            k.to_string(),
            vec![
                fmt_secs(serial_secs),
                fmt_secs(parallel_secs),
                format!("{par_speedup:.2}"),
                fmt_secs(baseline_secs),
                format!("{speedup:.2}"),
                serial_rows.to_string(),
                if serial_rows == baseline_rows && parallel_rows == baseline_rows {
                    "yes".into()
                } else {
                    format!("NO (baseline {baseline_rows}, {PAR_THREADS}t {parallel_rows})")
                },
                full_join.to_string(),
                cores.to_string(),
            ],
        );
    }
    table
}

/// The baseline: enumerate every path of the full chain join (no
/// intermediate projection), collect the projected endpoint pairs with
/// duplicates, and sort+dedup at the end — `O(|OUT⋈|)` work and the
/// plan every pairwise-join DBMS runs. Returns
/// `(full-join path count, distinct projected rows)`.
///
/// Pairs are bit-packed into `u64` and deduplicated in bounded chunks so
/// the baseline's memory stays proportional to the *output*, not the
/// full join.
pub fn chain_full_join_baseline(rels: &[&Relation]) -> (u64, u64) {
    const CHUNK: usize = 1 << 21;
    let mut paths = 0u64;
    let mut chunk: Vec<u64> = Vec::with_capacity(CHUNK);
    let mut out: Vec<u64> = Vec::new();
    let flush = |chunk: &mut Vec<u64>, out: &mut Vec<u64>| {
        chunk.sort_unstable();
        chunk.dedup();
        out.append(chunk);
    };

    fn walk(
        rels: &[&Relation],
        depth: usize,
        v: Value,
        x0: Value,
        paths: &mut u64,
        chunk: &mut Vec<u64>,
    ) {
        if depth == rels.len() {
            *paths += 1;
            chunk.push((x0 as u64) << 32 | v as u64);
            return;
        }
        let r = rels[depth];
        if (v as usize) >= r.x_domain() {
            return;
        }
        for &next in r.ys_of(v) {
            walk(rels, depth + 1, next, x0, paths, chunk);
        }
    }

    for (x0, ys) in rels[0].by_x().iter_nonempty() {
        for &v1 in ys {
            walk(rels, 1, v1, x0, &mut paths, &mut chunk);
            if chunk.len() >= CHUNK {
                flush(&mut chunk, &mut out);
            }
        }
    }
    flush(&mut chunk, &mut out);
    out.sort_unstable();
    out.dedup();
    (paths, out.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_agrees_with_composed_plan() {
        let rels = mmjoin_datagen::generate_chain(0.02, SEED, 3);
        let refs: Vec<&Relation> = rels.iter().collect();
        let graph = QueryGraph::chain(&refs).unwrap();
        let query = Query::general(graph).unwrap();
        let mut sink = CountSink::new();
        MmJoinEngine::serial().execute(&query, &mut sink).unwrap();
        let (paths, rows) = chain_full_join_baseline(&refs);
        assert_eq!(sink.rows, rows);
        assert!(paths >= rows, "full join dominates the projection");
    }

    #[test]
    fn chains_table_has_three_rows_and_matches() {
        let t = chains_experiment(0.02);
        assert_eq!(t.rows.len(), 3);
        // "rows match" covers both the serial and parallel composed runs.
        assert!(t.rows.iter().all(|(_, cells)| cells[6] == "yes"));
        assert!(t.headers.iter().any(|h| h == "par speedup"));
        assert!(t.headers.iter().any(|h| h == "cores"));
    }
}
