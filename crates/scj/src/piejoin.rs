//! PIEJoin-style trie-based set-containment join.
//!
//! A prefix tree is built over every set's element sequence in a global
//! infrequent-first order. A probe set `a = [e1, …, em]` (same order) finds
//! its supersets by a pruned traversal: at trie depth `d` looking for `ei`,
//! children with rank below `rank(ei)` may still lead to supersets (extra
//! elements are allowed), children equal to `ei` advance the probe, children
//! with larger rank are pruned (elements are sorted, so `ei` cannot appear
//! deeper). Once the probe is exhausted, every set stored in the subtree is
//! a superset.
//!
//! Parallelism partitions the probe sets — the paper notes PIEJoin is the
//! only parallel SCJ baseline, though its scaling is sensitive to the data
//! partitioning (Figure 7), which this faithful re-implementation shares.

use mmjoin_executor::Executor;
use mmjoin_storage::{Relation, Value};
use std::collections::HashMap;

/// Trie over rank sequences.
struct Trie {
    /// children[node] : rank → child node, kept in rank-sorted vectors for
    /// ordered traversal.
    children: Vec<Vec<(u32, usize)>>,
    /// Sets terminating at each node.
    terminal: Vec<Vec<Value>>,
    /// Largest edge rank anywhere in the subtree rooted at each node;
    /// a subtree whose max rank is below the probe's next element cannot
    /// contain a superset and is pruned.
    subtree_max: Vec<u32>,
}

impl Trie {
    fn new() -> Self {
        Self {
            children: vec![Vec::new()],
            terminal: vec![Vec::new()],
            subtree_max: vec![0],
        }
    }

    /// Computes `subtree_max` bottom-up (iterative post-order).
    fn finalize(&mut self) {
        // Children always have larger ids than parents (insertion order),
        // so a reverse sweep is a valid post-order aggregation.
        for node in (0..self.children.len()).rev() {
            let mut m = 0u32;
            for &(rk, child) in &self.children[node] {
                m = m.max(rk).max(self.subtree_max[child]);
            }
            self.subtree_max[node] = m;
        }
    }

    fn insert(&mut self, ranks: &[u32], set: Value) {
        let mut node = 0usize;
        for &rk in ranks {
            node = match self.children[node].binary_search_by_key(&rk, |&(r, _)| r) {
                Ok(i) => self.children[node][i].1,
                Err(i) => {
                    let id = self.children.len();
                    self.children.push(Vec::new());
                    self.terminal.push(Vec::new());
                    self.subtree_max.push(0);
                    self.children[node].insert(i, (rk, id));
                    id
                }
            };
        }
        self.terminal[node].push(set);
    }

    /// Collects every set stored at or below `node`.
    fn collect_subtree(&self, node: usize, out: &mut Vec<Value>) {
        out.extend_from_slice(&self.terminal[node]);
        for &(_, child) in &self.children[node] {
            self.collect_subtree(child, out);
        }
    }

    /// Emits all supersets of `probe[i..]` reachable from `node`.
    fn search(&self, node: usize, probe: &[u32], i: usize, out: &mut Vec<Value>) {
        if i == probe.len() {
            self.collect_subtree(node, out);
            return;
        }
        let target = probe[i];
        for &(rk, child) in &self.children[node] {
            if rk < target {
                // Extra element: still searching for `target` below — but
                // only if the subtree can still reach `target`.
                if self.subtree_max[child] >= target {
                    self.search(child, probe, i, out);
                }
            } else if rk == target {
                self.search(child, probe, i + 1, out);
            } else {
                // Ranks ascend along every path: `target` cannot occur.
                break;
            }
        }
    }
}

/// PIEJoin: returns `(subset, superset)` pairs, `subset ≠ superset`.
pub fn pie_join(r: &Relation, threads: usize, exec: &Executor) -> Vec<(Value, Value)> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    if sets.is_empty() {
        return Vec::new();
    }
    // Global infrequent-first element ranking.
    let ydom = r.y_domain();
    let mut order: Vec<Value> = (0..ydom as Value).collect();
    order.sort_unstable_by_key(|&e| (r.y_degree(e), e));
    let mut rank: HashMap<Value, u32> = HashMap::with_capacity(ydom);
    for (i, &e) in order.iter().enumerate() {
        rank.insert(e, i as u32);
    }
    let ranked = |s: Value| -> Vec<u32> {
        let mut v: Vec<u32> = r.ys_of(s).iter().map(|e| rank[e]).collect();
        v.sort_unstable();
        v
    };

    // Build phase (serial — PIEJoin parallelises only the probe phase).
    let mut trie = Trie::new();
    for &s in &sets {
        trie.insert(&ranked(s), s);
    }
    trie.finalize();

    let probe = |part: &[Value], out: &mut Vec<(Value, Value)>| {
        let mut supers = Vec::new();
        for &a in part {
            supers.clear();
            trie.search(0, &ranked(a), 0, &mut supers);
            for &b in &supers {
                if b != a {
                    out.push((a, b));
                }
            }
        }
    };

    if threads <= 1 || sets.len() < 2 {
        let mut out = Vec::new();
        probe(&sets, &mut out);
        return out;
    }
    // Probe partitions run as tasks on the caller's executor pool.
    exec.map_chunks(threads, &sets, |part| {
        let mut out = Vec::new();
        probe(part, &mut out);
        out
    })
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn finds_chain() {
        let r = rel(&[(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]);
        let mut got = pie_join(&r, 1, Executor::global());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn identical_sets_mutual() {
        let r = rel(&[(0, 3), (0, 4), (1, 3), (1, 4)]);
        let mut got = pie_join(&r, 1, Executor::global());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn disjoint_sets_empty() {
        let r = rel(&[(0, 0), (1, 1)]);
        assert!(pie_join(&r, 1, Executor::global()).is_empty());
    }

    #[test]
    fn trie_search_allows_gaps() {
        // probe {2} must find superset {0,1,2} despite leading extras.
        let r = rel(&[(0, 2), (1, 0), (1, 1), (1, 2)]);
        let mut got = pie_join(&r, 1, Executor::global());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1)]);
    }
}
