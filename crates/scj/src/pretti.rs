//! PRETTI and LIMIT+ set-containment joins.
//!
//! Both process each probe set `a` with its elements in *infrequent-first*
//! order (ascending inverted-list length — the sort order §7.4 selects).
//! PRETTI intersects every inverted list (the candidates that survive all
//! of them are exactly the supersets). LIMIT+ intersects only the first
//! `limit` lists as a blocking filter and verifies the survivors with a
//! sorted merge — cheap when the infrequent elements prune well, expensive
//! when sets overlap heavily (the paper's observation of why join-project
//! wins on dense data).

use mmjoin_executor::Executor;
use mmjoin_storage::csr::is_subset;
use mmjoin_storage::{Relation, Value};
use mmjoin_wcoj::leapfrog_intersect;

/// Elements of `a` ordered infrequent-first.
fn infrequent_order(r: &Relation, a: Value) -> Vec<Value> {
    let mut elems: Vec<Value> = r.ys_of(a).to_vec();
    elems.sort_unstable_by_key(|&e| (r.y_degree(e), e));
    elems
}

/// PRETTI: full inverted-list intersection per probe set.
pub fn pretti_join(r: &Relation, threads: usize, exec: &Executor) -> Vec<(Value, Value)> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    run_partitioned(&sets, threads, exec, |part, out| {
        for &a in part {
            let elems = infrequent_order(r, a);
            let lists: Vec<&[Value]> = elems.iter().map(|&e| r.xs_of(e)).collect();
            for b in leapfrog_intersect(&lists) {
                if b != a {
                    out.push((a, b));
                }
            }
        }
    })
}

/// LIMIT+: intersect the `limit` most infrequent lists, verify the rest.
pub fn limit_plus_join(
    r: &Relation,
    limit: usize,
    threads: usize,
    exec: &Executor,
) -> Vec<(Value, Value)> {
    let limit = limit.max(1);
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    run_partitioned(&sets, threads, exec, |part, out| {
        for &a in part {
            let elems = infrequent_order(r, a);
            let k = elems.len().min(limit);
            let lists: Vec<&[Value]> = elems[..k].iter().map(|&e| r.xs_of(e)).collect();
            let candidates = leapfrog_intersect(&lists);
            if elems.len() <= k {
                // Blocking already exact.
                for b in candidates {
                    if b != a {
                        out.push((a, b));
                    }
                }
            } else {
                let a_set = r.ys_of(a);
                for b in candidates {
                    if b != a && is_subset(a_set, r.ys_of(b)) {
                        out.push((a, b));
                    }
                }
            }
        }
    })
}

/// Static probe-range partitioning shared by the two algorithms; the
/// partitions run as tasks on the shared executor pool.
fn run_partitioned(
    sets: &[Value],
    threads: usize,
    exec: &Executor,
    body: impl Fn(&[Value], &mut Vec<(Value, Value)>) + Sync,
) -> Vec<(Value, Value)> {
    if threads <= 1 || sets.len() < 2 {
        let mut out = Vec::new();
        body(sets, &mut out);
        return out;
    }
    exec.map_chunks(threads, sets, |part| {
        let mut out = Vec::new();
        body(part, &mut out);
        out
    })
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    #[test]
    fn pretti_finds_supersets() {
        let r = rel(&[(0, 1), (1, 1), (1, 2), (2, 1), (2, 2), (2, 3)]);
        let mut got = pretti_join(&r, 1, Executor::global());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn limit_plus_blocking_then_verify() {
        let r = rel(&[(0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (1, 3), (1, 4)]);
        for limit in 1..=4 {
            let mut got = limit_plus_join(&r, limit, 1, Executor::global());
            got.sort_unstable();
            assert_eq!(got, vec![(0, 1)], "limit={limit}");
        }
    }

    #[test]
    fn infrequent_order_sorts_by_list_length() {
        // Element 5 appears once, element 1 three times.
        let r = rel(&[(0, 1), (0, 5), (1, 1), (2, 1)]);
        assert_eq!(infrequent_order(&r, 0), vec![5, 1]);
    }

    #[test]
    fn limit_larger_than_set_is_exact() {
        let r = rel(&[(0, 7), (1, 7)]);
        let mut got = limit_plus_join(&r, 10, 1, Executor::global());
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 0)]);
    }
}
