//! Set-containment joins (SCJ) — §4 and Figure 4c/7 of the paper.
//!
//! Given sets encoded as `R(x, y)` ("set `x` contains element `y`"), the SCJ
//! reports all ordered pairs `(a, b)`, `a ≠ b`, with `set(a) ⊆ set(b)`.
//!
//! Four algorithms, each packaged as a [`ContainmentEngine`] behind the
//! unified [`Engine`](mmjoin_api::Engine) front door
//! (`Query::containment(&r)`):
//!
//! * [`ScjAlgorithm::Pretti`] — PRETTI-style inverted-list join: the
//!   supersets of `a` are exactly `⋂_{e ∈ a} L[e]`, computed with the k-way
//!   leapfrog intersection (infrequent-first order makes the smallest list
//!   drive the cost).
//! * [`ScjAlgorithm::LimitPlus`] — LIMIT+ \[15\]: intersect only the
//!   `limit` most infrequent elements (the blocking filter), then verify
//!   each candidate by sorted-list subset check. The paper runs `limit = 2`.
//! * [`ScjAlgorithm::PieJoin`] — PIEJoin \[28\]: a prefix tree over all
//!   sets (global infrequent-first element order) searched per probe set;
//!   the only parallel baseline (partition by probe ranges).
//! * [`ScjAlgorithm::MmJoin`] — the paper's approach: evaluate the counting
//!   join-project and keep pairs with `|a ∩ b| = |a|`, delegated to
//!   [`MmJoinEngine`](mmjoin_core::MmJoinEngine); fastest when the
//!   join-project output is close to the SCJ output (dense data).
//!
//! Parallelism — like every other execution knob — comes from the one
//! [`JoinConfig`] the engine is constructed with; there is no separate
//! thread parameter.

pub mod piejoin;
pub mod pretti;

use mmjoin_api::{Engine, EngineError, ExecStats, PairSink, Query, Sink};
use mmjoin_core::{JoinConfig, MmJoinEngine};
use mmjoin_storage::{Relation, Value};

/// Algorithm selector for [`set_containment_join`]. Pure strategy choice —
/// execution configuration comes from [`JoinConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScjAlgorithm {
    /// Full inverted-list intersection per probe set.
    Pretti,
    /// Blocking on the `limit` most infrequent elements + verification.
    LimitPlus {
        /// Number of leading (most infrequent) elements intersected before
        /// falling back to verification. The paper uses 2.
        limit: usize,
    },
    /// Prefix-tree (trie) containment search.
    PieJoin,
    /// Counting join-project filtered to containment (delegates to
    /// [`MmJoinEngine`]).
    MmJoin,
}

/// A set-containment engine: one [`ScjAlgorithm`] plus one [`JoinConfig`],
/// executing `Query::ContainmentJoin` through the unified front door.
#[derive(Debug, Clone)]
pub struct ContainmentEngine {
    algo: ScjAlgorithm,
    config: JoinConfig,
    name: String,
}

impl ContainmentEngine {
    /// Engine running `algo` under `config`.
    pub fn new(algo: ScjAlgorithm, config: JoinConfig) -> Self {
        let name = match algo {
            ScjAlgorithm::Pretti => "PRETTI".to_string(),
            ScjAlgorithm::LimitPlus { limit: 2 } => "LIMIT+".to_string(),
            ScjAlgorithm::LimitPlus { limit } => format!("LIMIT+[{limit}]"),
            ScjAlgorithm::PieJoin => "PIEJoin".to_string(),
            ScjAlgorithm::MmJoin => "MMJoin".to_string(),
        };
        Self { algo, config, name }
    }

    /// PRETTI under the default configuration.
    pub fn pretti() -> Self {
        Self::new(ScjAlgorithm::Pretti, JoinConfig::default())
    }

    /// LIMIT+ with the paper's `limit = 2` under the default configuration.
    pub fn limit_plus() -> Self {
        Self::new(ScjAlgorithm::LimitPlus { limit: 2 }, JoinConfig::default())
    }

    /// PIEJoin under the default configuration.
    pub fn pie_join() -> Self {
        Self::new(ScjAlgorithm::PieJoin, JoinConfig::default())
    }

    /// The algorithm this engine runs.
    pub fn algorithm(&self) -> &ScjAlgorithm {
        &self.algo
    }
}

impl Engine for ContainmentEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn supports(&self, query: &Query<'_>) -> bool {
        matches!(query, Query::ContainmentJoin { .. })
    }

    fn execute(&self, query: &Query<'_>, sink: &mut dyn Sink) -> Result<ExecStats, EngineError> {
        query.validate()?;
        let Query::ContainmentJoin { r } = *query else {
            return Err(self.unsupported(query));
        };
        if let ScjAlgorithm::MmJoin = self.algo {
            return MmJoinEngine::new(self.config.clone()).execute(query, sink);
        }
        let (threads, exec) = (self.config.effective_threads(), self.config.exec());
        let mut out = match self.algo {
            ScjAlgorithm::Pretti => pretti::pretti_join(r, threads, exec),
            ScjAlgorithm::LimitPlus { limit } => pretti::limit_plus_join(r, limit, threads, exec),
            ScjAlgorithm::PieJoin => piejoin::pie_join(r, threads, exec),
            ScjAlgorithm::MmJoin => unreachable!("MmJoin delegates to MmJoinEngine"),
        };
        out.sort_unstable();
        out.dedup();
        Ok(ExecStats::new(
            self.name(),
            mmjoin_api::emit_pairs(sink, &out),
        ))
    }
}

/// Evaluates the self set-containment join of `r`, returning sorted
/// `(subset, superset)` pairs with `subset ≠ superset`. Thin wrapper
/// dispatching a [`Query::ContainmentJoin`] through the [`Engine`] front
/// door.
///
/// ```
/// use mmjoin_core::JoinConfig;
/// use mmjoin_scj::{set_containment_join, ScjAlgorithm};
/// use mmjoin_storage::Relation;
/// // 0 = {5}, 1 = {5, 6}.
/// let r = Relation::from_edges([(0, 5), (1, 5), (1, 6)]);
/// let pairs = set_containment_join(&r, &ScjAlgorithm::Pretti, &JoinConfig::default());
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
pub fn set_containment_join(
    r: &Relation,
    algo: &ScjAlgorithm,
    config: &JoinConfig,
) -> Vec<(Value, Value)> {
    let query = Query::containment(r)
        .build()
        .expect("containment queries have no invalid configurations");
    let engine = ContainmentEngine::new(*algo, config.clone());
    let mut sink = PairSink::new();
    engine
        .execute(&query, &mut sink)
        .expect("containment join cannot fail on a valid query");
    sink.into_pairs()
}

/// Brute-force reference SCJ for tests.
pub fn brute_force_scj(r: &Relation) -> Vec<(Value, Value)> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    let mut out = Vec::new();
    for &a in &sets {
        for &b in &sets {
            if a != b && mmjoin_storage::csr::is_subset(r.ys_of(a), r.ys_of(b)) {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn cfg() -> JoinConfig {
        JoinConfig::default()
    }

    fn cfg_threads(threads: usize) -> JoinConfig {
        JoinConfig {
            threads,
            ..JoinConfig::default()
        }
    }

    fn all_algorithms() -> Vec<ScjAlgorithm> {
        vec![
            ScjAlgorithm::Pretti,
            ScjAlgorithm::LimitPlus { limit: 2 },
            ScjAlgorithm::PieJoin,
            ScjAlgorithm::MmJoin,
        ]
    }

    fn sample() -> Relation {
        // 0={1,2}, 1={1,2,3}, 2={2}, 3={1,2,3,4}, 4={5}, 5={1,2}.
        rel(&[
            (0, 1),
            (0, 2),
            (1, 1),
            (1, 2),
            (1, 3),
            (2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
            (3, 4),
            (4, 5),
            (5, 1),
            (5, 2),
        ])
    }

    #[test]
    fn all_algorithms_match_bruteforce() {
        let r = sample();
        let expected = brute_force_scj(&r);
        assert!(expected.contains(&(0, 1)));
        assert!(expected.contains(&(0, 5))); // equal sets contain each other
        assert!(expected.contains(&(5, 0)));
        for algo in all_algorithms() {
            assert_eq!(
                set_containment_join(&r, &algo, &cfg()),
                expected,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn empty_relation() {
        let r = rel(&[]);
        for algo in all_algorithms() {
            assert!(
                set_containment_join(&r, &algo, &cfg()).is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn no_containments() {
        let r = rel(&[(0, 0), (1, 1), (2, 2)]);
        for algo in all_algorithms() {
            assert!(
                set_containment_join(&r, &algo, &cfg()).is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn chain_containment() {
        // 0={0} ⊂ 1={0,1} ⊂ 2={0,1,2}.
        let r = rel(&[(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]);
        let expected = vec![(0, 1), (0, 2), (1, 2)];
        for algo in all_algorithms() {
            assert_eq!(
                set_containment_join(&r, &algo, &cfg()),
                expected,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut edges = Vec::new();
        for i in 0..300u32 {
            let set = (i * 7) % 40;
            edges.push((set, (i * 3) % 25));
        }
        // Seed containment: every set also gets element 0.
        for s in 0..40u32 {
            edges.push((s, 0));
        }
        let r = rel(&edges);
        for algo in all_algorithms() {
            let serial = set_containment_join(&r, &algo, &cfg());
            let parallel = set_containment_join(&r, &algo, &cfg_threads(4));
            assert_eq!(serial, parallel, "{algo:?}");
        }
    }

    #[test]
    fn engine_names_are_stable() {
        assert_eq!(Engine::name(&ContainmentEngine::pretti()), "PRETTI");
        assert_eq!(Engine::name(&ContainmentEngine::limit_plus()), "LIMIT+");
        assert_eq!(Engine::name(&ContainmentEngine::pie_join()), "PIEJoin");
        let wide = ContainmentEngine::new(ScjAlgorithm::LimitPlus { limit: 5 }, cfg());
        assert_eq!(Engine::name(&wide), "LIMIT+[5]");
    }

    #[test]
    fn engine_rejects_other_families() {
        let r = rel(&[(0, 0)]);
        let q = Query::similarity(&r, 1).build().unwrap();
        let engine = ContainmentEngine::pretti();
        assert!(!engine.supports(&q));
        let mut sink = PairSink::new();
        assert!(engine.execute(&q, &mut sink).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn algorithms_agree_with_bruteforce(
            edges in proptest::collection::vec((0u32..12, 0u32..10), 1..60),
            limit in 1usize..4,
        ) {
            let r = rel(&edges);
            let expected = brute_force_scj(&r);
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::Pretti, &cfg()), expected.clone());
            prop_assert_eq!(
                set_containment_join(&r, &ScjAlgorithm::LimitPlus { limit }, &cfg()),
                expected.clone()
            );
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::PieJoin, &cfg()), expected.clone());
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::MmJoin, &cfg()), expected);
        }
    }
}
