//! Set-containment joins (SCJ) — §4 and Figure 4c/7 of the paper.
//!
//! Given sets encoded as `R(x, y)` ("set `x` contains element `y`"), the SCJ
//! reports all ordered pairs `(a, b)`, `a ≠ b`, with `set(a) ⊆ set(b)`.
//!
//! Four algorithms:
//!
//! * [`ScjAlgorithm::Pretti`] — PRETTI-style inverted-list join: the
//!   supersets of `a` are exactly `⋂_{e ∈ a} L[e]`, computed with the k-way
//!   leapfrog intersection (infrequent-first order makes the smallest list
//!   drive the cost).
//! * [`ScjAlgorithm::LimitPlus`] — LIMIT+ \[15\]: intersect only the
//!   `limit` most infrequent elements (the blocking filter), then verify
//!   each candidate by sorted-list subset check. The paper runs `limit = 2`.
//! * [`ScjAlgorithm::PieJoin`] — PIEJoin \[28\]: a prefix tree over all
//!   sets (global infrequent-first element order) searched per probe set;
//!   the only parallel baseline (partition by probe ranges).
//! * [`ScjAlgorithm::MmJoin`] — the paper's approach: evaluate the counting
//!   join-project and keep pairs with `|a ∩ b| = |a|`, which is fastest
//!   when the join-project output is close to the SCJ output (dense data).

pub mod piejoin;
pub mod pretti;

use mmjoin_core::{two_path_with_counts, JoinConfig};
use mmjoin_storage::{Relation, Value};

/// Algorithm selector for [`set_containment_join`].
#[derive(Debug, Clone)]
pub enum ScjAlgorithm {
    /// Full inverted-list intersection per probe set.
    Pretti,
    /// Blocking on the `limit` most infrequent elements + verification.
    LimitPlus {
        /// Number of leading (most infrequent) elements intersected before
        /// falling back to verification. The paper uses 2.
        limit: usize,
    },
    /// Prefix-tree (trie) containment search.
    PieJoin,
    /// Counting join-project filtered to containment.
    MmJoin(Box<JoinConfig>),
}

impl ScjAlgorithm {
    /// MMJoin on `threads` workers.
    pub fn mmjoin(threads: usize) -> Self {
        ScjAlgorithm::MmJoin(Box::new(JoinConfig {
            threads,
            ..JoinConfig::default()
        }))
    }
}

/// Evaluates the self set-containment join of `r`, returning sorted
/// `(subset, superset)` pairs with `subset ≠ superset`.
///
/// ```
/// use mmjoin_scj::{set_containment_join, ScjAlgorithm};
/// use mmjoin_storage::Relation;
/// // 0 = {5}, 1 = {5, 6}.
/// let r = Relation::from_edges([(0, 5), (1, 5), (1, 6)]);
/// let pairs = set_containment_join(&r, &ScjAlgorithm::Pretti, 1);
/// assert_eq!(pairs, vec![(0, 1)]);
/// ```
pub fn set_containment_join(
    r: &Relation,
    algo: &ScjAlgorithm,
    threads: usize,
) -> Vec<(Value, Value)> {
    let mut out = match algo {
        ScjAlgorithm::Pretti => pretti::pretti_join(r, threads),
        ScjAlgorithm::LimitPlus { limit } => pretti::limit_plus_join(r, *limit, threads),
        ScjAlgorithm::PieJoin => piejoin::pie_join(r, threads),
        ScjAlgorithm::MmJoin(cfg) => {
            let mut cfg = (**cfg).clone();
            cfg.threads = threads.max(cfg.threads);
            mm_scj(r, &cfg)
        }
    };
    out.sort_unstable();
    out.dedup();
    out
}

/// MMJoin SCJ: `a ⊆ b ⟺ |a ∩ b| = |a|`.
fn mm_scj(r: &Relation, cfg: &JoinConfig) -> Vec<(Value, Value)> {
    two_path_with_counts(r, r, 1, cfg)
        .into_iter()
        .filter(|&(a, b, count)| a != b && count as usize == r.x_degree(a))
        .map(|(a, b, _)| (a, b))
        .collect()
}

/// Brute-force reference SCJ for tests.
pub fn brute_force_scj(r: &Relation) -> Vec<(Value, Value)> {
    let sets: Vec<Value> = r.by_x().iter_nonempty().map(|(x, _)| x).collect();
    let mut out = Vec::new();
    for &a in &sets {
        for &b in &sets {
            if a != b && mmjoin_storage::csr::is_subset(r.ys_of(a), r.ys_of(b)) {
                out.push((a, b));
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rel(edges: &[(Value, Value)]) -> Relation {
        Relation::from_edges(edges.iter().copied())
    }

    fn all_algorithms() -> Vec<ScjAlgorithm> {
        vec![
            ScjAlgorithm::Pretti,
            ScjAlgorithm::LimitPlus { limit: 2 },
            ScjAlgorithm::PieJoin,
            ScjAlgorithm::mmjoin(1),
        ]
    }

    fn sample() -> Relation {
        // 0={1,2}, 1={1,2,3}, 2={2}, 3={1,2,3,4}, 4={5}, 5={1,2}.
        rel(&[
            (0, 1),
            (0, 2),
            (1, 1),
            (1, 2),
            (1, 3),
            (2, 2),
            (3, 1),
            (3, 2),
            (3, 3),
            (3, 4),
            (4, 5),
            (5, 1),
            (5, 2),
        ])
    }

    #[test]
    fn all_algorithms_match_bruteforce() {
        let r = sample();
        let expected = brute_force_scj(&r);
        assert!(expected.contains(&(0, 1)));
        assert!(expected.contains(&(0, 5))); // equal sets contain each other
        assert!(expected.contains(&(5, 0)));
        for algo in all_algorithms() {
            assert_eq!(set_containment_join(&r, &algo, 1), expected, "{algo:?}");
        }
    }

    #[test]
    fn empty_relation() {
        let r = rel(&[]);
        for algo in all_algorithms() {
            assert!(set_containment_join(&r, &algo, 1).is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn no_containments() {
        let r = rel(&[(0, 0), (1, 1), (2, 2)]);
        for algo in all_algorithms() {
            assert!(set_containment_join(&r, &algo, 1).is_empty(), "{algo:?}");
        }
    }

    #[test]
    fn chain_containment() {
        // 0={0} ⊂ 1={0,1} ⊂ 2={0,1,2}.
        let r = rel(&[(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]);
        let expected = vec![(0, 1), (0, 2), (1, 2)];
        for algo in all_algorithms() {
            assert_eq!(set_containment_join(&r, &algo, 1), expected, "{algo:?}");
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut edges = Vec::new();
        for i in 0..300u32 {
            let set = (i * 7) % 40;
            edges.push((set, (i * 3) % 25));
        }
        // Seed containment: every set also gets element 0.
        for s in 0..40u32 {
            edges.push((s, 0));
        }
        let r = rel(&edges);
        for algo in all_algorithms() {
            let serial = set_containment_join(&r, &algo, 1);
            let parallel = set_containment_join(&r, &algo, 4);
            assert_eq!(serial, parallel, "{algo:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn algorithms_agree_with_bruteforce(
            edges in proptest::collection::vec((0u32..12, 0u32..10), 1..60),
            limit in 1usize..4,
        ) {
            let r = rel(&edges);
            let expected = brute_force_scj(&r);
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::Pretti, 1), expected.clone());
            prop_assert_eq!(
                set_containment_join(&r, &ScjAlgorithm::LimitPlus { limit }, 1),
                expected.clone()
            );
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::PieJoin, 1), expected.clone());
            prop_assert_eq!(set_containment_join(&r, &ScjAlgorithm::mmjoin(1), 1), expected);
        }
    }
}
