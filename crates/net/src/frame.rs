//! Length-prefixed framing: every message on the wire is a `u32`
//! little-endian payload length followed by exactly that many bytes.
//!
//! The prefix makes message boundaries explicit (no sentinel scanning,
//! payloads may contain anything) and lets the reader pre-size its
//! buffer; [`MAX_FRAME`] caps that allocation so a corrupt or hostile
//! prefix cannot balloon memory.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (16 MiB). Row dumps from
/// `query … show <n>` are the largest legitimate payloads; anything
/// beyond this is treated as a protocol error, not an allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame of {} bytes exceeds MAX_FRAME {MAX_FRAME}",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between messages); EOF mid-frame is
/// an `UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    // Fill the prefix byte-wise so a clean EOF *before* it (Ok(None))
    // is distinguishable from an EOF *inside* it (UnexpectedEof).
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_boundary_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xFF; 300]).unwrap();

        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0xFF; 300]);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated payload").unwrap();
        let mut r = &buf[..buf.len() - 3];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Truncated inside the prefix itself is also mid-frame.
        let mut r = &buf[..2];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let bad = (MAX_FRAME + 1).to_le_bytes();
        let mut r = &bad[..];
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut w = Vec::new();
        assert!(write_frame(&mut w, &vec![0u8; MAX_FRAME as usize + 1]).is_err());
    }
}
