//! Blocking client for the framed protocol. One [`Client`] wraps one
//! TCP connection; `call` is the simple request/response path, while
//! `send`/`recv` expose pipelining (many requests in flight, answers
//! correlated by id).

use crate::frame;
use crate::wire::{WireRequest, WireResponse};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects once.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Connects with retries — the standard way to wait for a freshly
    /// spawned `mmjoin-netd` to start listening.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        attempts: u32,
        delay: Duration,
    ) -> io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    fn from_stream(stream: TcpStream) -> io::Result<Client> {
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            next_id: 1,
        })
    }

    /// Sends one command line, returning its correlation id without
    /// waiting for the answer (pipelining).
    pub fn send(&mut self, line: &str) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let req = WireRequest {
            id,
            line: line.to_string(),
        };
        frame::write_frame(&mut self.writer, &req.encode())?;
        Ok(id)
    }

    /// Receives the next response frame (in server-send order).
    pub fn recv(&mut self) -> io::Result<WireResponse> {
        let payload = frame::read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        WireResponse::decode(&payload)
    }

    /// Request/response: sends `line` and waits for its answer.
    pub fn call(&mut self, line: &str) -> io::Result<WireResponse> {
        let id = self.send(line)?;
        let resp = self.recv()?;
        if resp.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} does not match request id {id}", resp.id),
            ));
        }
        Ok(resp)
    }
}
