//! The concurrent TCP server: thread-per-connection readers feeding a
//! bounded, per-client fair admission queue, drained by a dispatcher
//! pool that executes commands through the shared grammar
//! ([`mmjoin_service::command`]).
//!
//! # Admission control
//!
//! The queue has a hard global capacity (bounded memory) *and* a
//! per-client quota. A request that would exceed either bound is
//! answered [`Status::Overloaded`] immediately from the reader thread —
//! it never waits in line — so backpressure reaches the client at
//! network latency, not at queue-drain latency.
//!
//! # Fairness
//!
//! Admitted jobs are kept in per-client FIFOs and dispatched
//! round-robin across clients: a client with 50 queued commands and a
//! client with 1 alternate, so the chatty client cannot starve the
//! quiet one at dispatch; the quota stops it from starving them at
//! admission.
//!
//! # Shutdown
//!
//! `shutdown` (the command, or [`Server::shutdown`]) flips a flag,
//! closes the queue in *drain* mode — every already-admitted job still
//! executes and its answer is delivered — and unblocks the accept loop.
//! New requests are answered [`Status::ShuttingDown`].

use crate::frame;
use crate::wire::{Status, WireRequest, WireResponse};
use mmjoin_obs::trace::{self, Stage, Tracer};
use mmjoin_service::command::{self, Command, Frontend};
use mmjoin_service::Service;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Global admission-queue capacity — the bound on queued work.
    pub queue_capacity: usize,
    /// Per-client cap on queued jobs; `0` defaults to a quarter of the
    /// global capacity (min 1). This is what keeps one chatty client
    /// from monopolising admission.
    pub per_client_quota: usize,
    /// Dispatcher threads draining the queue into the service.
    pub dispatchers: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 64,
            per_client_quota: 0,
            dispatchers: 4,
        }
    }
}

/// Why the queue refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Global capacity or the client's quota is exhausted.
    Overloaded,
    /// The queue is closed (server draining for shutdown).
    ShuttingDown,
}

struct FairState<T> {
    queues: HashMap<u64, VecDeque<T>>,
    /// Clients with at least one queued item, in dispatch rotation.
    order: VecDeque<u64>,
    len: usize,
    closed: bool,
}

/// Bounded multi-producer queue with per-client FIFOs and round-robin
/// dispatch. `close()` switches it to drain mode: pushes fail with
/// [`Admission::ShuttingDown`], pops keep succeeding until empty, then
/// return `None` (which is the dispatcher-pool exit signal).
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    available: Condvar,
    capacity: usize,
    quota: usize,
}

impl<T> FairQueue<T> {
    /// `quota == 0` defaults to `capacity / 4` (min 1).
    pub fn new(capacity: usize, quota: usize) -> Self {
        let capacity = capacity.max(1);
        let quota = if quota == 0 {
            (capacity / 4).max(1)
        } else {
            quota.min(capacity)
        };
        Self {
            state: Mutex::new(FairState {
                queues: HashMap::new(),
                order: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
            quota,
        }
    }

    /// Global capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-client admission quota.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Admits one item for `client`, returning the queue depth after
    /// the push (for high-water-mark metrics).
    pub fn push(&self, client: u64, item: T) -> Result<usize, Admission> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err(Admission::ShuttingDown);
        }
        if st.len >= self.capacity {
            return Err(Admission::Overloaded);
        }
        let q = st.queues.entry(client).or_default();
        if q.len() >= self.quota {
            return Err(Admission::Overloaded);
        }
        let newly_active = q.is_empty();
        q.push_back(item);
        if newly_active {
            st.order.push_back(client);
        }
        st.len += 1;
        let depth = st.len;
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    /// Takes the next item round-robin across clients, blocking while
    /// the queue is open but empty. `None` means closed *and* drained.
    pub fn pop(&self) -> Option<(u64, T)> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(client) = st.order.pop_front() {
                let q = st.queues.get_mut(&client).expect("client in rotation");
                let item = q.pop_front().expect("rotation implies non-empty");
                if q.is_empty() {
                    st.queues.remove(&client);
                } else {
                    st.order.push_back(client);
                }
                st.len -= 1;
                return Some((client, item));
            }
            if st.closed {
                return None;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Switches to drain mode and wakes every blocked `pop`.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.available.notify_all();
    }

    /// Items currently queued (all clients).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Front-end counters, all updated lock-free except the per-client map.
#[derive(Default)]
pub struct NetMetrics {
    connections: AtomicU64,
    requests: AtomicU64,
    served: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_shutting_down: AtomicU64,
    max_queue_depth: AtomicU64,
    per_client_served: Mutex<BTreeMap<u64, u64>>,
}

impl NetMetrics {
    fn record_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn record_served(&self, client: u64) {
        self.served.fetch_add(1, Ordering::Relaxed);
        *self
            .per_client_served
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(client)
            .or_insert(0) += 1;
    }

    /// Zeroes every counter, including the per-client tallies and the
    /// queue-depth high-water mark (`stats reset`).
    pub fn reset(&self) {
        self.connections.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
        self.served.store(0, Ordering::Relaxed);
        self.rejected_overloaded.store(0, Ordering::Relaxed);
        self.rejected_shutting_down.store(0, Ordering::Relaxed);
        self.max_queue_depth.store(0, Ordering::Relaxed);
        self.per_client_served
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        NetMetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_shutting_down: self.rejected_shutting_down.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            per_client_served: self
                .per_client_served
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(&k, &v)| (k, v))
                .collect(),
        }
    }
}

/// Point-in-time front-end statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Frames decoded into requests (admitted or not).
    pub requests: u64,
    /// Responses produced by dispatchers (Ok or Err).
    pub served: u64,
    /// Requests bounced with [`Status::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests bounced with [`Status::ShuttingDown`].
    pub rejected_shutting_down: u64,
    /// High-water mark of the admission queue — must never exceed the
    /// configured capacity.
    pub max_queue_depth: u64,
    /// `(client id, responses served)` per connection, ascending id.
    pub per_client_served: Vec<(u64, u64)>,
}

impl NetMetricsSnapshot {
    /// The counters as a JSON object (field names match the struct;
    /// `per_client_served` becomes an array of `[id, served]` pairs).
    pub fn to_json(&self) -> String {
        let clients: Vec<String> = self
            .per_client_served
            .iter()
            .map(|(id, n)| format!("[{id},{n}]"))
            .collect();
        format!(
            "{{\"connections\":{},\"requests\":{},\"served\":{},\"rejected_overloaded\":{},\
             \"rejected_shutting_down\":{},\"max_queue_depth\":{},\"per_client_served\":[{}]}}",
            self.connections,
            self.requests,
            self.served,
            self.rejected_overloaded,
            self.rejected_shutting_down,
            self.max_queue_depth,
            clients.join(","),
        )
    }
}

impl std::fmt::Display for NetMetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "connections {}, requests {}, served {}, \
             rejected {} (overloaded {}, shutting-down {}), \
             max queue depth {}, clients {}",
            self.connections,
            self.requests,
            self.served,
            self.rejected_overloaded + self.rejected_shutting_down,
            self.rejected_overloaded,
            self.rejected_shutting_down,
            self.max_queue_depth,
            self.per_client_served.len(),
        )
    }
}

struct Job {
    id: u64,
    line: String,
    /// Root trace minted at the wire boundary (reader thread), if the
    /// global tracer is on and sampling picked this request. The
    /// dispatcher re-joins it across the queue hop and finishes it once
    /// the response is built.
    ctx: Option<trace::Ctx>,
    /// When the reader admitted the request (start of the net queue
    /// wait).
    enqueued: Instant,
    reply: mpsc::Sender<WireResponse>,
}

struct Shared {
    service: Arc<Service>,
    queue: FairQueue<Job>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    metrics: NetMetrics,
    /// Live connection threads plus a stream clone to unblock each
    /// reader at shutdown; joined by [`Server::wait`] so every in-flight
    /// reply is flushed before the process may exit.
    conns: Mutex<Vec<(TcpStream, JoinHandle<()>)>>,
}

impl Shared {
    /// Idempotent: first caller closes the queue (drain mode) and pokes
    /// the accept loop awake with a throwaway connection.
    fn begin_shutdown(&self) {
        // lint:allow(seqcst): the shutdown latch orders the queue close
        // and the wake-up poke against every accept/conn-loop load; a
        // weaker swap could let a racing accept miss drain mode.
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: the accept loop plus dispatcher pool. Dropping the
/// handle does NOT stop the server — call [`Server::shutdown`] (or send
/// the `shutdown` command) and then [`Server::wait`].
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// The address actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Front-end metrics snapshot.
    pub fn metrics(&self) -> NetMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        // lint:allow(seqcst): pairs with the SeqCst swap in
        // `begin_shutdown`; callers gate on a globally ordered latch.
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Programmatic equivalent of the `shutdown` command.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Joins the accept loop and dispatcher pool, then the connection
    /// threads. Returns only after every admitted job has been executed
    /// and its answer *flushed to the socket* — a caller may exit the
    /// process immediately afterwards without cutting off replies.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
        // Dispatchers have answered everything; unblock readers still
        // parked on idle connections (read side only, so writers keep
        // flushing) and wait for each writer to drain.
        let conns = std::mem::take(
            &mut *self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for (stream, handle) in conns {
            let _ = stream.shutdown(Shutdown::Read);
            let _ = handle.join();
        }
    }
}

/// Binds, spawns the accept loop and `config.dispatchers` dispatcher
/// threads, and returns immediately.
pub fn serve(service: Arc<Service>, config: NetConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        queue: FairQueue::new(config.queue_capacity, config.per_client_quota),
        shutdown: AtomicBool::new(false),
        addr,
        metrics: NetMetrics::default(),
        conns: Mutex::new(Vec::new()),
    });

    let mut threads = Vec::new();
    for _ in 0..config.dispatchers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || dispatch_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&listener, &shared)));
    }
    Ok(Server { shared, threads })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_client: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // lint:allow(seqcst): pairs with the SeqCst swap in
                // `begin_shutdown` so a failed accept after the latch
                // flips always terminates the loop.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        // lint:allow(seqcst): same latch; the wake-up poke connection
        // must observe drain mode and be refused, not served.
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up poke, or a late client: refuse politely.
            let mut w = BufWriter::new(stream);
            let _ = frame::write_frame(
                &mut w,
                &WireResponse {
                    id: 0,
                    status: Status::ShuttingDown,
                    body: "server is shutting down".into(),
                }
                .encode(),
            );
            return;
        }
        let client = next_client;
        next_client += 1;
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let unblock = stream.try_clone();
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || connection_loop(&conn_shared, stream, client));
        match unblock {
            // Tracked: `Server::wait` unblocks the reader and joins.
            Ok(clone) => shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((clone, handle)),
            // No clone to poke it with — leave it detached; the thread
            // still ends at client EOF or stream error.
            Err(_) => drop(handle),
        }
    }
}

/// Reader half of one connection: decode frames, admit or bounce.
/// Responses travel through an mpsc channel to a writer thread so
/// dispatcher replies and reader bounces never interleave mid-frame.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream, client: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<WireResponse>();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(resp) = rx.recv() {
            if frame::write_frame(&mut w, &resp.encode()).is_err() {
                break;
            }
        }
    });

    let mut r = BufReader::new(stream);
    // Clean EOF, mid-frame EOF and I/O errors all end the connection.
    while let Ok(Some(payload)) = frame::read_frame(&mut r) {
        let req = match WireRequest::decode(&payload) {
            Ok(req) => req,
            Err(e) => {
                // Framing is broken; answer once and hang up.
                let _ = tx.send(WireResponse {
                    id: 0,
                    status: Status::Err,
                    body: format!("protocol error: {e}"),
                });
                break;
            }
        };
        shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // lint:allow(seqcst): same latch as `begin_shutdown`; requests
        // that raced past accept are rejected, never half-served.
        if shared.shutdown.load(Ordering::SeqCst) {
            shared
                .metrics
                .rejected_shutting_down
                .fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(WireResponse {
                id: req.id,
                status: Status::ShuttingDown,
                body: "server is draining; no new work accepted".into(),
            });
            continue;
        }
        // Mint the request's trace here, at the wire boundary: the queue
        // wait and every downstream stage hang off this root.
        let ctx = Tracer::global().start(&req.line);
        let job = Job {
            id: req.id,
            line: req.line,
            ctx,
            enqueued: Instant::now(),
            reply: tx.clone(),
        };
        match shared.queue.push(client, job) {
            Ok(depth) => shared.metrics.record_depth(depth),
            Err(Admission::Overloaded) => {
                if let Some(ctx) = ctx {
                    Tracer::global().discard(ctx);
                }
                shared
                    .metrics
                    .rejected_overloaded
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(WireResponse {
                    id: req.id,
                    status: Status::Overloaded,
                    body: format!(
                        "admission queue full (capacity {}, per-client quota {}); retry",
                        shared.queue.capacity(),
                        shared.queue.quota()
                    ),
                });
            }
            Err(Admission::ShuttingDown) => {
                if let Some(ctx) = ctx {
                    Tracer::global().discard(ctx);
                }
                shared
                    .metrics
                    .rejected_shutting_down
                    .fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(WireResponse {
                    id: req.id,
                    status: Status::ShuttingDown,
                    body: "server is draining; no new work accepted".into(),
                });
            }
        }
    }
    drop(tx); // Writer exits once queued jobs (tx clones) are answered.
    let _ = writer.join();
}

/// The TCP server's transport counters, surfaced to the shared command
/// grammar: `stats net` and `stats reset` work over the wire without
/// the service crate depending on this one.
struct NetFrontend<'a>(&'a Shared);

impl Frontend for NetFrontend<'_> {
    fn net_stats(&self) -> Option<String> {
        Some(self.0.metrics.snapshot().to_string())
    }

    fn net_stats_json(&self) -> Option<String> {
        Some(self.0.metrics.snapshot().to_json())
    }

    fn reset_stats(&self) {
        self.0.metrics.reset();
    }
}

/// Dispatcher: drain the fair queue into the service until the queue is
/// closed *and* empty (the graceful-shutdown drain).
fn dispatch_loop(shared: &Arc<Shared>) {
    while let Some((client, job)) = shared.queue.pop() {
        // Rejoin the trace minted at the wire: the time since admission
        // is the net queue wait, recorded retroactively.
        trace::span_at(job.ctx, Stage::QueueWait, "net-queue", job.enqueued);
        let installed = trace::install(job.ctx);
        let parse_span = trace::span(Stage::Parse, "command-parse");
        let parsed = Command::parse(&job.line);
        drop(parse_span);
        let resp = match parsed {
            Err(e) => WireResponse {
                id: job.id,
                status: Status::Err,
                body: e.to_string(),
            },
            Ok(cmd) => {
                let is_shutdown = matches!(cmd, Command::Shutdown);
                let result = command::execute_with(&shared.service, cmd, &NetFrontend(shared));
                if is_shutdown {
                    shared.begin_shutdown();
                }
                match result {
                    Ok(body) => WireResponse {
                        id: job.id,
                        status: Status::Ok,
                        body,
                    },
                    Err(body) => WireResponse {
                        id: job.id,
                        status: Status::Err,
                        body,
                    },
                }
            }
        };
        drop(installed);
        if let Some(ctx) = job.ctx {
            Tracer::global().finish(ctx);
        }
        shared.metrics.record_served(client);
        let _ = job.reply.send(resp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_queue_round_robins_across_clients() {
        let q: FairQueue<u32> = FairQueue::new(16, 8);
        for item in [10, 11, 12] {
            q.push(1, item).unwrap();
        }
        q.push(2, 20).unwrap();
        for item in [30, 31] {
            q.push(3, item).unwrap();
        }
        let order: Vec<(u64, u32)> = (0..6).map(|_| q.pop().unwrap()).collect();
        assert_eq!(
            order,
            vec![(1, 10), (2, 20), (3, 30), (1, 11), (3, 31), (1, 12)],
            "dispatch must alternate clients, not drain client 1 first"
        );
    }

    #[test]
    fn fair_queue_enforces_capacity_and_quota() {
        let q: FairQueue<u32> = FairQueue::new(8, 2);
        // Per-client quota trips first.
        q.push(1, 0).unwrap();
        q.push(1, 1).unwrap();
        assert_eq!(q.push(1, 2), Err(Admission::Overloaded));
        // Other clients still have room…
        for c in 2..=4u64 {
            q.push(c, 0).unwrap();
            q.push(c, 1).unwrap();
        }
        // …until the global bound trips for everyone.
        assert_eq!(q.len(), 8);
        assert_eq!(q.push(9, 0), Err(Admission::Overloaded));
        // Draining one slot reopens admission for an under-quota client.
        q.pop().unwrap();
        q.push(9, 0).unwrap();
    }

    #[test]
    fn fair_queue_close_drains_then_ends() {
        let q: FairQueue<u32> = FairQueue::new(4, 4);
        q.push(1, 1).unwrap();
        q.push(1, 2).unwrap();
        q.close();
        assert_eq!(q.push(1, 3), Err(Admission::ShuttingDown));
        assert_eq!(q.pop(), Some((1, 1)));
        assert_eq!(q.pop(), Some((1, 2)));
        assert_eq!(q.pop(), None, "closed + empty ends the pop loop");
    }

    #[test]
    fn fair_queue_pop_blocks_until_push() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(4, 4));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(7, 42).unwrap();
        assert_eq!(popper.join().unwrap(), Some((7, 42)));
    }

    #[test]
    fn server_smoke_register_query_shutdown() {
        use crate::client::Client;
        use mmjoin_storage::Relation;

        let service = Arc::new(Service::with_default_registry(2));
        service.register("R", Relation::from_edges([(0, 1), (1, 1), (2, 0)]));
        let server = serve(
            service,
            NetConfig {
                dispatchers: 2,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();

        let mut c = Client::connect(addr).unwrap();
        let resp = c.call("query twopath R R").unwrap();
        assert_eq!(resp.status, Status::Ok, "{}", resp.body);
        assert!(resp.body.starts_with("ok rows "), "{}", resp.body);
        let warm = c.call("query twopath R R").unwrap();
        assert!(warm.body.contains("cached true"), "{}", warm.body);

        let bad = c.call("query warp R R").unwrap();
        assert_eq!(bad.status, Status::Err);
        assert!(bad.body.contains("`warp`"), "{}", bad.body);

        let bye = c.call("shutdown").unwrap();
        assert_eq!(bye.status, Status::Ok);
        assert_eq!(bye.body, "ok shutting down");
        server.wait();

        let m = 0; // server consumed; metrics checked in integration tests
        let _ = m;
    }
}
