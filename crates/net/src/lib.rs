//! `mmjoin-net` — the TCP front end of the join service.
//!
//! The service crate turns the engines into a long-lived *process*;
//! this crate turns that process into a *server*: a length-prefixed
//! binary protocol over plain `std::net` TCP (the workspace is offline
//! — no tokio, no async), shared by the `mmjoin-netd` daemon and the
//! `mmjoin-cli` client.
//!
//! * [`frame`] — `u32` little-endian length prefix + payload, capped at
//!   [`frame::MAX_FRAME`].
//! * [`wire`] — the tagged request/response messages inside frames,
//!   with a status byte distinguishing success, errors, admission
//!   rejections ([`wire::Status::Overloaded`]) and drain mode
//!   ([`wire::Status::ShuttingDown`]).
//! * [`server`] — thread-per-connection readers feeding a bounded
//!   [`server::FairQueue`] (global capacity + per-client quota,
//!   round-robin dispatch), a dispatcher pool executing commands via
//!   the shared grammar, and graceful shutdown that drains every
//!   admitted job.
//! * [`client`] — a blocking client with request/response and
//!   pipelined modes.
//!
//! Commands on the wire are lines in the *same* grammar the stdin REPL
//! speaks ([`mmjoin_service::command`]): one grammar, two transports.

pub mod client;
pub mod frame;
pub mod server;
pub mod wire;

pub use client::Client;
pub use server::{serve, Admission, FairQueue, NetConfig, NetMetricsSnapshot, Server};
pub use wire::{Status, WireRequest, WireResponse};
