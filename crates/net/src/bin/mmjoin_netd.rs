//! `mmjoin-netd` — the join service behind a concurrent TCP front end.
//!
//! ```text
//! $ mmjoin-netd --addr 127.0.0.1:7878 --workers 4 --queue 64
//! mmjoin-netd listening on 127.0.0.1:7878 (4 workers, queue 64, quota 16, 8 shards)
//! ```
//!
//! Drive it with `mmjoin-cli` (same command grammar as `mmjoin-serve`).
//! Send the `shutdown` command to stop it gracefully: admitted queries
//! finish and are answered, new ones get a SHUTTING-DOWN status.
//!
//! Observability flags:
//! - `--trace-out <path>` — enable tracing and, after shutdown, write
//!   every retained trace as Chrome trace-event JSON to `path`.
//! - `--trace-sample <n>` — enable tracing, tracing every n-th request.
//! - `--slow-query <us>` — enable tracing and log the span tree of any
//!   query slower than `us` microseconds to stderr.
//!
//! Cost-model flags:
//! - `--threads <n>` — intra-query thread budget; engines request the
//!   whole budget per query (`0` = machine parallelism; absent keeps
//!   engines serial).
//! - `--calibrate` — measure the dispatched GEMM kernel at startup,
//!   sweeping the cores axis up to the thread budget, and re-derive the
//!   planner's combinatorial/matrix crossover from it.
//! - `--calibration <path>` — cache the measurement across restarts
//!   (implies `--calibrate`; a stale kernel tag, or a cores axis short
//!   of the configured budget, forces a re-measure).

use mmjoin_net::{serve, NetConfig};
use mmjoin_obs::trace::{chrome_json, Tracer};
use mmjoin_service::{Service, ServiceConfig};
use std::sync::Arc;

fn arg_value<T: std::str::FromStr>(flag: &str) -> Option<T> {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|v| v.parse().ok())
}

fn main() {
    let addr: String = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let workers: usize = arg_value("--workers").unwrap_or(4);
    let queue: usize = arg_value("--queue").unwrap_or(64);
    let quota: usize = arg_value("--quota").unwrap_or(0);
    let dispatchers: usize = arg_value("--dispatchers").unwrap_or(workers);
    let shards: usize = arg_value("--shards").unwrap_or(8);
    let trace_out: Option<String> = arg_value("--trace-out");
    let trace_sample: Option<u64> = arg_value("--trace-sample");
    let slow_query_us: u64 = arg_value("--slow-query").unwrap_or(0);
    let threads: Option<usize> = arg_value("--threads");
    let calibration_path: Option<std::path::PathBuf> = arg_value("--calibration");
    let calibrate_cost = calibration_path.is_some() || std::env::args().any(|a| a == "--calibrate");

    let tracer = Tracer::global();
    if trace_out.is_some() || trace_sample.is_some() || slow_query_us > 0 {
        tracer.set_sample_every(trace_sample.unwrap_or(1));
        tracer.set_enabled(true);
    }

    let mut config = ServiceConfig {
        workers,
        catalog_shards: shards,
        slow_query_us,
        calibrate_cost,
        calibration_path,
        ..ServiceConfig::default()
    };
    if let Some(budget) = threads {
        // Same contract as mmjoin-serve: grant the budget and let the
        // engines request all of it per query; calibration sweeps its
        // cores axis up to this budget.
        config.thread_budget = budget;
        config.join_config.threads = 0;
    }
    let service = Arc::new(Service::with_config(config));

    let server = match serve(
        service,
        NetConfig {
            addr,
            queue_capacity: queue,
            per_client_quota: quota,
            dispatchers,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mmjoin-netd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    // The "listening" line is the readiness signal scripts wait for.
    println!(
        "mmjoin-netd listening on {} ({workers} workers, queue {queue}, quota {}, {shards} shards)",
        server.addr(),
        if quota == 0 {
            (queue / 4).max(1)
        } else {
            quota
        },
    );
    server.wait();
    if let Some(path) = trace_out {
        let traces = tracer.last(usize::MAX);
        match std::fs::write(&path, chrome_json(&traces)) {
            Ok(()) => println!("mmjoin-netd: wrote {} trace(s) to {path}", traces.len()),
            Err(e) => eprintln!("mmjoin-netd: write {path}: {e}"),
        }
    }
    println!("mmjoin-netd: drained and stopped");
}
