//! `mmjoin-cli` — client for `mmjoin-netd`.
//!
//! Commands come from positional arguments (each argument is one
//! command line) or, with none given, from stdin one per line:
//!
//! ```text
//! $ mmjoin-cli --addr 127.0.0.1:7878 'register R 0,1 1,1' 'query twopath R R'
//! ok relation R: 2 tuples, 2 sets, 1 elements (epoch 1)
//! ok rows 4 engine … cached false 0.001s
//! $ echo stats | mmjoin-cli --addr 127.0.0.1:7878
//! ok served 1 (cache hits 0, 0.0%), …
//! ```
//!
//! Answers print exactly as the stdin REPL would: `ok …` / `err …`,
//! plus `overloaded …` / `shutting-down …` for the two backpressure
//! statuses only the network transport can produce. Exit status is
//! non-zero if any command failed.

use mmjoin_net::{Client, Status};
use std::io::BufRead;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut retries: u32 = 1;
    let mut commands: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("mmjoin-cli: --addr needs a value");
                    std::process::exit(2);
                });
            }
            "--retry" => {
                i += 1;
                retries = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("mmjoin-cli: --retry needs a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: mmjoin-cli [--addr host:port] [--retry n] [command …]\n\
                     with no commands, reads them from stdin one per line"
                );
                return;
            }
            cmd => commands.push(cmd.to_string()),
        }
        i += 1;
    }

    let mut client = match Client::connect_retry(addr.as_str(), retries, Duration::from_millis(200))
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mmjoin-cli: connect {addr}: {e}");
            std::process::exit(1);
        }
    };

    let mut failed = false;
    let mut run = |client: &mut Client, line: &str| {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return;
        }
        match client.call(line) {
            Ok(resp) => {
                match resp.status {
                    // Ok/Err bodies already carry their `ok `/`err `
                    // prefix shape from the shared command layer.
                    Status::Ok => println!("{}", resp.body),
                    Status::Err => {
                        failed = true;
                        println!("err {}", resp.body);
                    }
                    Status::Overloaded => {
                        failed = true;
                        println!("overloaded {}", resp.body);
                    }
                    Status::ShuttingDown => {
                        failed = true;
                        println!("shutting-down {}", resp.body);
                    }
                }
            }
            Err(e) => {
                eprintln!("mmjoin-cli: {e}");
                std::process::exit(1);
            }
        }
    };

    if commands.is_empty() {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            run(&mut client, &line);
        }
    } else {
        for cmd in &commands {
            run(&mut client, cmd);
        }
    }
    if failed {
        std::process::exit(1);
    }
}
