//! The framed message vocabulary: one request shape, one response
//! shape, encoded as tagged byte payloads inside [`frame`](crate::frame)
//! frames.
//!
//! ```text
//! request  := 0x01  id:u64le  len:u32le  line:utf8[len]
//! response := 0x02  id:u64le  status:u8  len:u32le  body:utf8[len]
//! ```
//!
//! `id` is a client-chosen correlation number echoed back verbatim, so
//! a client may pipeline requests and match answers out of band. The
//! `line` is a command in the shared grammar
//! ([`mmjoin_service::command`]); the `body` is the same text the stdin
//! REPL would print (minus the `ok `/`err ` prefix, which the status
//! byte replaces).

use std::io;

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Command succeeded; body is the `ok …` answer text.
    Ok = 0,
    /// Command failed (parse or execution); body is the error text.
    Err = 1,
    /// Admission control bounced the request — the queue (or this
    /// client's fair share of it) is full. Retry later.
    Overloaded = 2,
    /// The server is draining for shutdown; no new work is accepted.
    ShuttingDown = 3,
}

impl Status {
    fn from_byte(b: u8) -> io::Result<Status> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Err,
            2 => Status::Overloaded,
            3 => Status::ShuttingDown,
            other => return Err(bad(format!("unknown status byte {other:#04x}"))),
        })
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Status::Ok => "ok",
            Status::Err => "err",
            Status::Overloaded => "overloaded",
            Status::ShuttingDown => "shutting-down",
        })
    }
}

const TAG_REQUEST: u8 = 0x01;
const TAG_RESPONSE: u8 = 0x02;

/// One command line travelling client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// A command in the shared grammar (`query twopath R S`, …).
    pub line: String,
}

/// One answer travelling server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// Outcome class; replaces the REPL's `ok `/`err ` prefix.
    pub status: Status,
    /// Answer text (possibly multi-line for `show`/`catalog`).
    pub body: String,
}

impl WireRequest {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let line = self.line.as_bytes();
        let mut out = Vec::with_capacity(1 + 8 + 4 + line.len());
        out.push(TAG_REQUEST);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(line.len() as u32).to_le_bytes());
        out.extend_from_slice(line);
        out
    }

    /// Parses a frame payload; rejects wrong tags, short payloads,
    /// length mismatches, and non-UTF-8 command text.
    pub fn decode(payload: &[u8]) -> io::Result<WireRequest> {
        let mut c = Cursor::new(payload);
        c.expect_tag(TAG_REQUEST, "request")?;
        let id = c.u64()?;
        let line = c.string()?;
        c.finish()?;
        Ok(WireRequest { id, line })
    }
}

impl WireResponse {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let body = self.body.as_bytes();
        let mut out = Vec::with_capacity(1 + 8 + 1 + 4 + body.len());
        out.push(TAG_RESPONSE);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(self.status as u8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body);
        out
    }

    /// Parses a frame payload (mirror of [`WireResponse::encode`]).
    pub fn decode(payload: &[u8]) -> io::Result<WireResponse> {
        let mut c = Cursor::new(payload);
        c.expect_tag(TAG_RESPONSE, "response")?;
        let id = c.u64()?;
        let status = Status::from_byte(c.u8()?)?;
        let body = c.string()?;
        c.finish()?;
        Ok(WireResponse { id, status, body })
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Minimal checked reader over a frame payload.
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(rest: &'a [u8]) -> Self {
        Self { rest }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.rest.len() < n {
            return Err(bad(format!(
                "payload truncated: wanted {n} more bytes, have {}",
                self.rest.len()
            )));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("text field is not UTF-8"))
    }

    fn expect_tag(&mut self, tag: u8, what: &str) -> io::Result<()> {
        let got = self.u8()?;
        if got != tag {
            return Err(bad(format!(
                "expected {what} tag {tag:#04x}, got {got:#04x}"
            )));
        }
        Ok(())
    }

    fn finish(&self) -> io::Result<()> {
        if !self.rest.is_empty() {
            return Err(bad(format!(
                "{} trailing bytes after message",
                self.rest.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = WireRequest {
            id: 0xDEAD_BEEF_0042,
            line: "query twopath R S show 5".into(),
        };
        assert_eq!(WireRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_round_trip_all_statuses() {
        for status in [
            Status::Ok,
            Status::Err,
            Status::Overloaded,
            Status::ShuttingDown,
        ] {
            let resp = WireResponse {
                id: 7,
                status,
                body: "multi\n  line\n  body".into(),
            };
            assert_eq!(WireResponse::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let good = WireRequest {
            id: 1,
            line: "stats".into(),
        }
        .encode();

        // Wrong tag.
        let mut bad_tag = good.clone();
        bad_tag[0] = 0x7F;
        assert!(WireRequest::decode(&bad_tag).is_err());

        // Response tag fed to the request decoder and vice versa.
        assert!(WireResponse::decode(&good).is_err());

        // Truncation at every prefix length must error, never panic.
        for cut in 0..good.len() {
            assert!(WireRequest::decode(&good[..cut]).is_err(), "cut={cut}");
        }

        // Trailing garbage.
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(WireRequest::decode(&trailing).is_err());

        // Non-UTF-8 command text.
        let mut non_utf8 = WireRequest {
            id: 2,
            line: "ab".into(),
        }
        .encode();
        let n = non_utf8.len();
        non_utf8[n - 1] = 0xFF;
        assert!(WireRequest::decode(&non_utf8).is_err());

        // Unknown status byte.
        let mut resp = WireResponse {
            id: 3,
            status: Status::Ok,
            body: String::new(),
        }
        .encode();
        resp[9] = 9;
        assert!(WireResponse::decode(&resp).is_err());
    }
}
