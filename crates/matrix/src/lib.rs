#![cfg_attr(feature = "portable-simd", feature(portable_simd))]
//! Dense matrix engine for the `mmjoin` workspace.
//!
//! The paper's prototype uses Eigen backed by Intel MKL SGEMM (§6). This
//! crate is the from-scratch Rust substitute:
//!
//! * [`DenseMatrix`] — row-major `f32` matrices. Floats, not integers,
//!   mirror the paper's deliberate choice of `SGEMM` over integer paths for
//!   throughput; counts stay exact below 2²⁴, far above any set size here.
//! * [`kernel`] — register-tiled, cache-blocked GEMM microkernels with a
//!   runtime dispatch ladder: explicit AVX-512/AVX2 intrinsics under the
//!   `simd` feature, nightly `std::simd` under `portable-simd`, blocked
//!   scalar otherwise. `MMJOIN_KERNEL` overrides the pick.
//! * [`gemm`] — the public matmul API over the dispatched kernel, plus a
//!   tiled parallel scheduler on the shared [`mmjoin_executor::Executor`]
//!   pool: B packed once into a shared slab, MR-aligned bands × NC
//!   panels claimed via chunk stealing, bit-identical to the serial path
//!   (the coordination-free parallelism the paper highlights in §6,
//!   under the global thread budget).
//! * [`arena`] — reusable thread-local scratch buffers backing the
//!   scheduler's packing slabs.
//! * [`bitmat`] — bit-packed boolean matrices with word-parallel OR-AND
//!   products, an extension ablated in the benchmarks (boolean output needs
//!   no counts, e.g. plain join-project and BSI).
//! * [`cost`] — the calibrated matmul cost estimator `M̂(u, v, w, co)` of
//!   Table 1 / Algorithm 3, built by measuring this crate's own kernel at a
//!   few sizes and interpolating, exactly as §5 describes.
//! * [`strassen`] — Strassen recursion above a cutoff (future-work
//!   extension; ablated in `bench/ablation`).

pub mod arena;
pub mod bitmat;
pub mod cost;
pub mod dense;
pub mod gemm;
pub mod kernel;
pub mod sparse;
pub mod strassen;

pub use bitmat::BitMatrix;
pub use cost::{CostModel, SystemConstants, REFERENCE_GFLOPS};
pub use dense::DenseMatrix;
pub use gemm::{
    matmul, matmul_into, matmul_naive, matmul_parallel, matmul_parallel_on,
    matmul_parallel_with_kernel, matmul_with_kernel,
};
pub use kernel::{active_kernel, available_kernels, Kernel};
pub use sparse::CsrMatrix;
pub use strassen::{strassen, strassen_parallel, strassen_parallel_on};
