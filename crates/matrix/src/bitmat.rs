//! Bit-packed boolean matrices.
//!
//! When the consumer only needs *existence* of a join witness (plain
//! join-project output, boolean set intersection) the counts that SGEMM
//! produces are wasted work. A bit-matrix product over the boolean semiring
//! (`C[i][j] = ⋁_k A[i][k] ∧ B[k][j]`) does 64 columns per word operation:
//! for every set bit `A[i][k]`, OR row `k` of `B` into row `i` of `C`.
//!
//! This is an extension over the paper's prototype (which always used SGEMM)
//! and is ablated in `bench/ablation`.
//!
//! The row-OR hot loop is *widened*: words are OR-ed in unrolled blocks of
//! [`OR_BLOCK`] (vectorizable to two 256-bit or one 512-bit operation per
//! step), and under the `simd` feature the block runs as explicit AVX2 /
//! AVX-512F vector ORs picked by the same runtime detection as the GEMM
//! dispatch ladder.

/// Words OR-ed per unrolled step of the widened row-OR loop.
pub const OR_BLOCK: usize = 8;

/// `dst[i] |= src[i]` over whole rows — the inner operation of
/// [`BitMatrix::bool_product`], widened to [`OR_BLOCK`]-word blocks.
#[inline]
fn or_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static LEVEL: OnceLock<u8> = OnceLock::new();
        let level = *LEVEL.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f") {
                2
            } else if std::arch::is_x86_feature_detected!("avx2") {
                1
            } else {
                0
            }
        });
        if level == 2 {
            // SAFETY: AVX-512F confirmed at runtime above.
            unsafe { or_words_avx512(dst, src) };
            return;
        }
        if level == 1 {
            // SAFETY: AVX2 confirmed at runtime above.
            unsafe { or_words_avx2(dst, src) };
            return;
        }
    }
    or_words_scalar(dst, src);
}

/// Unrolled scalar fallback: [`OR_BLOCK`] independent ORs per step give
/// the auto-vectorizer a full vector's worth of work.
#[inline]
fn or_words_scalar(dst: &mut [u64], src: &[u64]) {
    let mut dc = dst.chunks_exact_mut(OR_BLOCK);
    let mut sc = src.chunks_exact(OR_BLOCK);
    for (d, s) in (&mut dc).zip(&mut sc) {
        for i in 0..OR_BLOCK {
            d[i] |= s[i];
        }
    }
    for (d, s) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
        *d |= *s;
    }
}

/// # Safety
/// Requires AVX2 at runtime.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn or_words_avx2(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut i = 0;
    // Two 256-bit ORs per step = one OR_BLOCK.
    while i + OR_BLOCK <= n {
        let d0 = _mm256_loadu_si256(dp.add(i) as *const __m256i);
        let s0 = _mm256_loadu_si256(sp.add(i) as *const __m256i);
        let d1 = _mm256_loadu_si256(dp.add(i + 4) as *const __m256i);
        let s1 = _mm256_loadu_si256(sp.add(i + 4) as *const __m256i);
        _mm256_storeu_si256(dp.add(i) as *mut __m256i, _mm256_or_si256(d0, s0));
        _mm256_storeu_si256(dp.add(i + 4) as *mut __m256i, _mm256_or_si256(d1, s1));
        i += OR_BLOCK;
    }
    while i < n {
        *dp.add(i) |= *sp.add(i);
        i += 1;
    }
}

/// # Safety
/// Requires AVX-512F at runtime.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
unsafe fn or_words_avx512(dst: &mut [u64], src: &[u64]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let dp = dst.as_mut_ptr();
    let sp = src.as_ptr();
    let mut i = 0;
    // One 512-bit OR per OR_BLOCK.
    while i + OR_BLOCK <= n {
        let d = _mm512_loadu_si512(dp.add(i) as *const __m512i);
        let s = _mm512_loadu_si512(sp.add(i) as *const __m512i);
        _mm512_storeu_si512(dp.add(i) as *mut __m512i, _mm512_or_si512(d, s));
        i += OR_BLOCK;
    }
    while i < n {
        *dp.add(i) |= *sp.add(i);
        i += 1;
    }
}

/// A row-major bit-packed boolean matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    /// Words per row.
    stride: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-false `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let stride = cols.div_ceil(64);
        Self {
            rows,
            cols,
            stride,
            words: vec![0; rows * stride],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(i, j)` to true.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) {
        debug_assert!(i < self.rows && j < self.cols);
        self.words[i * self.stride + j / 64] |= 1u64 << (j % 64);
    }

    /// Reads bit `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        self.words[i * self.stride + j / 64] >> (j % 64) & 1 == 1
    }

    /// Row `i` as words.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.stride..(i + 1) * self.stride]
    }

    /// Boolean product `self · other` (dimensions `m×k` by `k×n`).
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn bool_product(&self, other: &BitMatrix) -> BitMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut c = BitMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.words[i * self.stride..(i + 1) * self.stride];
            let c_row = &mut c.words[i * c.stride..(i + 1) * c.stride];
            for (wk, &aw) in a_row.iter().enumerate() {
                let mut bits = aw;
                while bits != 0 {
                    let k = wk * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let b_row = &other.words[k * other.stride..(k + 1) * other.stride];
                    or_words(c_row, b_row);
                }
            }
        }
        c
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over set bit coordinates `(row, col)`.
    pub fn iter_ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.rows).flat_map(move |i| {
            self.row_words(i)
                .iter()
                .enumerate()
                .flat_map(move |(wk, &w)| BitIter(w).map(move |b| (i, wk * 64 + b)))
        })
    }

    /// Popcount of the AND of two rows — the intersection size of the sets
    /// the rows encode. Used by bit-parallel SSJ verification.
    pub fn row_and_popcount(&self, i: usize, other: &BitMatrix, j: usize) -> usize {
        assert_eq!(self.cols, other.cols, "row widths must agree");
        self.row_words(i)
            .iter()
            .zip(other.row_words(j))
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }
}

/// Iterates set-bit positions of one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::zeros(3, 100);
        m.set(0, 0);
        m.set(1, 63);
        m.set(1, 64);
        m.set(2, 99);
        assert!(m.get(0, 0));
        assert!(m.get(1, 63));
        assert!(m.get(1, 64));
        assert!(m.get(2, 99));
        assert!(!m.get(0, 1));
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn iter_ones_roundtrip() {
        let mut m = BitMatrix::zeros(2, 70);
        let coords = [(0usize, 5usize), (0, 64), (1, 0), (1, 69)];
        for &(i, j) in &coords {
            m.set(i, j);
        }
        let got: Vec<_> = m.iter_ones().collect();
        assert_eq!(got, coords);
    }

    #[test]
    fn bool_product_matches_float_gemm_thresholded() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (37, 53, 71);
        let mut a_bit = BitMatrix::zeros(m, k);
        let mut b_bit = BitMatrix::zeros(k, n);
        let mut a = DenseMatrix::zeros(m, k);
        let mut b = DenseMatrix::zeros(k, n);
        for i in 0..m {
            for j in 0..k {
                if rng.gen_bool(0.2) {
                    a_bit.set(i, j);
                    a.set(i, j, 1.0);
                }
            }
        }
        for i in 0..k {
            for j in 0..n {
                if rng.gen_bool(0.2) {
                    b_bit.set(i, j);
                    b.set(i, j, 1.0);
                }
            }
        }
        let c_bit = a_bit.bool_product(&b_bit);
        let c = matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(c_bit.get(i, j), c.get(i, j) > 0.0, "({i},{j})");
            }
        }
    }

    #[test]
    fn row_and_popcount_counts_intersection() {
        let mut a = BitMatrix::zeros(1, 130);
        let mut b = BitMatrix::zeros(1, 130);
        for j in [0, 64, 100, 129] {
            a.set(0, j);
        }
        for j in [0, 64, 101, 129] {
            b.set(0, j);
        }
        assert_eq!(a.row_and_popcount(0, &b, 0), 3);
    }

    /// The widened OR loop (full blocks + word remainder) agrees with a
    /// per-bit reference across widths straddling word and block
    /// boundaries.
    #[test]
    fn widened_or_matches_per_bit_reference_on_edge_widths() {
        let mut rng = StdRng::seed_from_u64(17);
        for cols in [1usize, 63, 64, 65, 511, 512, 513, 1025] {
            let (m, k) = (5, 9);
            let mut a = BitMatrix::zeros(m, k);
            let mut b = BitMatrix::zeros(k, cols);
            for i in 0..m {
                for j in 0..k {
                    if rng.gen_bool(0.4) {
                        a.set(i, j);
                    }
                }
            }
            for i in 0..k {
                for j in 0..cols {
                    if rng.gen_bool(0.1) {
                        b.set(i, j);
                    }
                }
            }
            let c = a.bool_product(&b);
            for i in 0..m {
                for j in 0..cols {
                    let want = (0..k).any(|x| a.get(i, x) && b.get(x, j));
                    assert_eq!(c.get(i, j), want, "cols={cols} ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn product_dimension_mismatch() {
        let a = BitMatrix::zeros(2, 3);
        let b = BitMatrix::zeros(4, 2);
        let _ = a.bool_product(&b);
    }

    #[test]
    fn empty_product() {
        let a = BitMatrix::zeros(0, 0);
        let c = a.bool_product(&BitMatrix::zeros(0, 5));
        assert_eq!(c.rows(), 0);
        assert_eq!(c.cols(), 5);
    }
}
