//! Register-tiled GEMM microkernels with runtime dispatch.
//!
//! One dense kernel family computes `C += A · B` over row-major `f32`
//! buffers, cache-blocked over `k` ([`KC`]) and `j` ([`NC`]) panels. Inside
//! a panel the work runs as [`MR`]-row register tiles: the C tile lives in
//! vector registers for the whole k-panel, so C traffic drops from one
//! load+store per `k` step (the old auto-vectorized loop) to one per
//! panel — the classic BLIS/GotoBLAS shape, scaled down to two vector
//! columns per tile.
//!
//! The dispatch ladder, best first:
//!
//! 1. `Avx512` — 2×16-lane `__m512` columns (`simd` feature, x86-64 with
//!    AVX-512F at runtime),
//! 2. `Avx2` — 2×8-lane `__m256` columns with FMA (`simd` feature, x86-64
//!    with AVX2+FMA at runtime),
//! 3. `Portable` — `std::simd::f32x8` (`portable-simd` feature, nightly
//!    toolchains only),
//! 4. `Scalar` — the auto-vectorizable fallback, always available.
//!
//! [`active_kernel`] picks once per process (override with the
//! `MMJOIN_KERNEL` environment variable); every public matmul entry point
//! routes through it, so engines, Strassen leaves and the parallel tile
//! scheduler's bands all hit the same microkernel. All kernels skip zero entries of
//! `A` per register-tile row — adjacency matrices are sparse-ish 0/1 and
//! the skip is a large practical win the cost model prices via
//! `estimate_effective`.
//!
//! Products of 0/1 adjacency matrices are bit-identical across every
//! kernel: all intermediates are small integers, exact in `f32`, and FMA
//! contraction cannot change an exact result. For general floats the
//! kernels may differ from the naive triple loop by FMA rounding only.

use std::sync::OnceLock;

/// k-panel height: 256 f32 ≈ 1 KiB per B-row slab touched per panel.
pub const KC: usize = 256;
/// j-panel width: 1024 f32 = 4 KiB, a comfortable L1 slab alongside C's
/// register tile. Must stay a multiple of every kernel's tile width.
pub const NC: usize = 1024;
/// Rows per register tile (accumulators held live across the k loop).
pub const MR: usize = 4;

/// One dispatchable GEMM implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Blocked scalar loop (LLVM auto-vectorizes for the *baseline*
    /// target features only — SSE2 on x86-64).
    Scalar,
    /// AVX2 + FMA intrinsics, 4×16 register tiles.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx2,
    /// AVX-512F intrinsics, 4×32 register tiles.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    Avx512,
    /// Nightly portable `std::simd`, 8-lane chunks.
    #[cfg(feature = "portable-simd")]
    Portable,
}

impl Kernel {
    /// Stable lower-case name (used in calibration manifests, reports and
    /// the `MMJOIN_KERNEL` override).
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Kernel::Avx2 => "avx2",
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            Kernel::Avx512 => "avx512",
            #[cfg(feature = "portable-simd")]
            Kernel::Portable => "portable",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every kernel the current build *and* machine can run, best first.
#[allow(clippy::vec_init_then_push)] // push sequence is cfg-dependent
pub fn available_kernels() -> Vec<Kernel> {
    let mut kernels = Vec::new();
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            kernels.push(Kernel::Avx512);
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            kernels.push(Kernel::Avx2);
        }
    }
    #[cfg(feature = "portable-simd")]
    kernels.push(Kernel::Portable);
    kernels.push(Kernel::Scalar);
    kernels
}

/// The kernel every matmul entry point dispatches to, chosen once per
/// process: the best available, unless the `MMJOIN_KERNEL` environment
/// variable names an available one explicitly.
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let available = available_kernels();
        if let Ok(want) = std::env::var("MMJOIN_KERNEL") {
            if let Some(&k) = available.iter().find(|k| k.name() == want) {
                return k;
            }
            eprintln!(
                "MMJOIN_KERNEL={want} is not available in this build/machine; \
                 using {}",
                available[0]
            );
        }
        available[0]
    })
}

/// The k-panel depth `kind` steps through for a product with `n` output
/// columns — the depth the SIMD kernels derive from their 32 KiB L1
/// budget, `KC` for the scalar/portable kernels. Exported so the tiled
/// parallel scheduler can cut `k` at exactly the panel boundaries the
/// serial kernel would use, which is what keeps the parallel product
/// bit-identical to the serial one.
#[cfg_attr(
    not(all(feature = "simd", target_arch = "x86_64")),
    allow(unused_variables)
)]
pub fn k_panel(kind: Kernel, n: usize) -> usize {
    match kind {
        Kernel::Scalar => KC,
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Kernel::Avx2 | Kernel::Avx512 => simd_k_panel(n),
        #[cfg(feature = "portable-simd")]
        Kernel::Portable => KC,
    }
}

/// L1-derived k-panel depth of the SIMD kernels: the packed B slab
/// (`4·kc·min(n, NC)` bytes) must fit a 32 KiB L1 budget; multiple of 16
/// so every full panel divides into whole mask groups for both lane
/// widths. See the rationale inside `simd_kernel!`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn simd_k_panel(n: usize) -> usize {
    let panel_cols = if n < NC { n.max(1) } else { NC };
    (((32 * 1024) / (4 * panel_cols)) & !15).clamp(16, KC)
}

/// `C += A · B` for row-major flat buffers: `a` is `m×k`, `b` is `k×n`,
/// `c` is `m×n`. The single entry the public matmul API and the
/// parallel tile scheduler call; `kind` must come from
/// [`available_kernels`].
pub fn gemm_block(kind: Kernel, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    // SAFETY: the slices are exactly the dense views the strided entry
    // expects, and the borrow rules guarantee they don't alias.
    unsafe {
        gemm_block_strided(
            kind,
            a.as_ptr(),
            k,
            b.as_ptr(),
            n,
            c.as_mut_ptr(),
            n,
            m,
            k,
            n,
            n,
        )
    }
}

/// [`gemm_block`] over strided sub-matrix views: row `i` of A starts at
/// `a + i·lda`, row `kk` of B at `b + kk·ldb`, row `i` of C at
/// `c + i·ldc`. `kc_cols` is the column count used to size the SIMD
/// kernels' L1 k-panel — a tile scheduler passes the *full* product's
/// `n` so every tile reproduces the serial panel schedule (and hence
/// the serial bit patterns) exactly; dense callers pass `n`.
///
/// # Safety
/// All `m`/`k`/`n` rows at the given strides must be readable (writable
/// for `c`), the regions must not overlap, and `kind` must come from
/// [`available_kernels`] (dispatching an unavailable SIMD kernel is UB).
#[allow(clippy::too_many_arguments)]
#[cfg_attr(
    not(all(feature = "simd", target_arch = "x86_64")),
    allow(unused_variables)
)]
pub unsafe fn gemm_block_strided(
    kind: Kernel,
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
    kc_cols: usize,
) {
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    // Runtime contract (debug builds only): a stride narrower than its
    // row width makes consecutive rows alias — UB the type system can't
    // see at this raw-pointer boundary, and exactly what the sanitizer
    // legs in CI are hunting for.
    debug_assert!(
        !a.is_null() && !b.is_null() && !c.is_null(),
        "gemm_block_strided: null matrix pointer"
    );
    debug_assert!(lda >= k, "gemm_block_strided: lda {lda} < k {k}");
    debug_assert!(ldb >= n, "gemm_block_strided: ldb {ldb} < n {n}");
    debug_assert!(ldc >= n, "gemm_block_strided: ldc {ldc} < n {n}");
    debug_assert!(
        kc_cols >= n,
        "gemm_block_strided: kc_cols {kc_cols} < tile width {n}"
    );
    match kind {
        Kernel::Scalar => gemm_scalar(a, lda, b, ldb, c, ldc, m, k, n),
        // SAFETY: the variant only exists when the `simd` feature compiled
        // the intrinsics in, and only enters `available_kernels()` when
        // the CPU reports the matching feature at runtime.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Kernel::Avx2 => gemm_avx2(a, lda, b, ldb, c, ldc, m, k, n, kc_cols),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        Kernel::Avx512 => gemm_avx512(a, lda, b, ldb, c, ldc, m, k, n, kc_cols),
        #[cfg(feature = "portable-simd")]
        Kernel::Portable => gemm_portable(a, lda, b, ldb, c, ldc, m, k, n),
    }
}

/// Blocked scalar kernel: `i → k → j` with a contiguous inner `j` loop
/// that auto-vectorizes to whatever the *compile-time* target allows.
/// The k-panel depth is the fixed `KC` (no `kc_cols` dependence), so
/// tile-sliced calls match the dense call bit-for-bit by construction.
///
/// # Safety
/// See [`gemm_block_strided`].
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_scalar(
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    for kb in (0..k).step_by(KC) {
        let k_end = (kb + KC).min(k);
        for jb in (0..n).step_by(NC) {
            let j_end = (jb + NC).min(n);
            for i in 0..m {
                let a_row = std::slice::from_raw_parts(a.add(i * lda), k);
                let c_row = std::slice::from_raw_parts_mut(c.add(i * ldc + jb), j_end - jb);
                for (dk, &aik) in a_row[kb..k_end].iter().enumerate() {
                    if aik == 0.0 {
                        // Adjacency matrices are sparse-ish 0/1; skipping
                        // zero A-entries is a large practical win and
                        // costs one predictable branch per k.
                        continue;
                    }
                    let kk = kb + dk;
                    let b_row = std::slice::from_raw_parts(b.add(kk * ldb + jb), j_end - jb);
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

/// Bitmask of nonzero (by bit pattern — `-0.0` counts as nonzero, which
/// only costs an exact no-op FMA) f32 lanes in the 16 floats at `p`.
/// Lets the sparse AXPY path test a whole group of A entries in three
/// uops instead of a load + test + branch per element.
///
/// # Safety
/// `p..p+16` must be readable and the CPU must support AVX-512F.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn nonzero_mask_avx512(p: *const f32) -> u32 {
    use std::arch::x86_64::*;
    let v = _mm512_castps_si512(_mm512_loadu_ps(p));
    _mm512_test_epi32_mask(v, v) as u32
}

/// Bitmask of nonzero f32 lanes (by bit pattern) in the 8 floats at `p`.
///
/// # Safety
/// `p..p+8` must be readable and the CPU must support AVX2.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn nonzero_mask_avx2(p: *const f32) -> u32 {
    use std::arch::x86_64::*;
    let v = _mm256_castps_si256(_mm256_loadu_ps(p));
    let zeroed = _mm256_cmpeq_epi32(v, _mm256_setzero_si256());
    !(_mm256_movemask_ps(_mm256_castsi256_ps(zeroed)) as u32) & 0xff
}

/// Expands to one explicit-SIMD blocked kernel: `$fname` with
/// `#[target_feature(enable = $features)]`, using `$load`/`$store`/
/// `$splat`/`$fma` over `$vec` vectors of `$lanes` f32 lanes, and
/// `$maskfn` to test `$lanes` A entries for zero at once. The tile is
/// [`MR`] rows × 2 vectors; remainder rows shrink the tile, remainder
/// columns fall through to a scalar tail inside the same feature region.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
macro_rules! simd_kernel {
    ($fname:ident, $features:literal, $vec:ty, $lanes:expr,
     $load:ident, $store:ident, $splat:ident, $fma:ident, $zero:ident, $maskfn:ident) => {
        /// # Safety
        /// The CPU must support the target features this kernel enables.
        ///
        /// Two inner formulations, chosen per `MR`-row A-block from its
        /// measured nonzero density over the k-panel:
        ///
        /// * **dense** (≥ 50% nonzero): register-tiled — the C tile lives
        ///   in vector registers for the whole k-panel, so each B row load
        ///   is amortized over `MR` rows and C traffic drops to one
        ///   load+store per panel;
        /// * **sparse**: zero-skipping vector AXPY — one full-width
        ///   `C[i, jb..] += a·B[kk, jb..]` sweep per nonzero, amortizing
        ///   the per-`k` branch over the whole `NC` panel the way the
        ///   scalar kernel does, but with $lanes-lane FMA instead of the
        ///   baseline-target auto-vectorization.
        ///
        /// Adjacency matrices sit far below 50%, so joins take the AXPY
        /// path; dense float workloads (and the heavy cores of genuinely
        /// dense instances) take the tile path. Both run inside the same
        /// `#[target_feature]` region.
        #[target_feature(enable = $features)]
        #[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
        unsafe fn $fname(
            ap: *const f32,
            lda: usize,
            bp: *const f32,
            ldb: usize,
            cp: *mut f32,
            ldc: usize,
            m: usize,
            k: usize,
            n: usize,
            kc_cols: usize,
        ) {
            use std::arch::x86_64::*;
            const NR: usize = 2 * $lanes; // dense-tile width in f32 columns
                                          // Size the k-panel so its B slab (`kc × min(n, NC)` f32)
                                          // fits L1. The AXPY path touches each B row once per nonzero
                                          // of A, so an L2-resident slab (the scalar kernel's KC = 256
                                          // at n ≥ 256) caps both kernels at the same L2-bandwidth
                                          // floor and erases the vector win; an L1-resident slab is
                                          // read from L2 once per panel instead.
                                          // Multiple-of-16 so every full panel divides into whole mask
                                          // groups for both lane widths. Sized from `kc_cols`, not `n`:
                                          // a tile call covering one j-panel of a wider product passes
                                          // the full-product width so its panel depth — and therefore
                                          // its float contraction order — matches the dense call. This
                                          // formula is mirrored by `simd_k_panel`, which schedulers use
                                          // to slice `k` on exactly these boundaries.
            let kc = {
                let panel_cols = if kc_cols < NC { kc_cols.max(1) } else { NC };
                (((32 * 1024) / (4 * panel_cols)) & !15).clamp(16, KC)
            };
            for kb in (0..k).step_by(kc) {
                let k_end = (kb + kc).min(k);
                let mut it = 0;
                while it < m {
                    let rows = MR.min(m - it);
                    // Density probe for the path choice: a pure count is
                    // a vectorizable reduction (~0.2 cycles/element),
                    // unlike a nonzero-index list whose compress-store
                    // serializes at ~3.5 cycles/element and would rival
                    // the AXPY work itself. Zero tests compare bit
                    // patterns: cheaper than a float compare, and
                    // treating `-0.0` as nonzero only adds an exact
                    // no-op FMA.
                    let mut nnz = 0usize;
                    for r in 0..rows {
                        let arow = ap.add((it + r) * lda);
                        for kk in kb..k_end {
                            nnz += ((*arow.add(kk)).to_bits() != 0) as usize;
                        }
                    }
                    let dense = nnz * 2 >= rows * (k_end - kb);
                    for jb in (0..n).step_by(NC) {
                        let j_end = (jb + NC).min(n);
                        if !dense {
                            // Sparse path: zero-skipping AXPY — one
                            // full-panel `C[i, jb..] += a · B[kk, jb..]`
                            // sweep per nonzero, 4 vectors per step. The
                            // nonzeros are found `$lanes` at a time via
                            // `$maskfn` + bit iteration, so the skip cost
                            // is ~3 uops per group instead of ~3 per
                            // element; a ragged final group (k not a
                            // multiple of `$lanes`) falls back to
                            // per-element tests.
                            for r in 0..rows {
                                let i = it + r;
                                let crow = cp.add(i * ldc);
                                let arow = ap.add(i * lda);
                                let mut kk = kb;
                                while kk + $lanes <= k_end {
                                    let mut mbits = $maskfn(arow.add(kk));
                                    while mbits != 0 {
                                        let kki = kk + mbits.trailing_zeros() as usize;
                                        mbits &= mbits - 1;
                                        let av = *arow.add(kki);
                                        let va = $splat(av);
                                        let brow = bp.add(kki * ldb);
                                        let mut j = jb;
                                        while j + 4 * $lanes <= j_end {
                                            let c0 = crow.add(j);
                                            let c1 = crow.add(j + $lanes);
                                            let c2 = crow.add(j + 2 * $lanes);
                                            let c3 = crow.add(j + 3 * $lanes);
                                            $store(c0, $fma(va, $load(brow.add(j)), $load(c0)));
                                            $store(
                                                c1,
                                                $fma(va, $load(brow.add(j + $lanes)), $load(c1)),
                                            );
                                            $store(
                                                c2,
                                                $fma(
                                                    va,
                                                    $load(brow.add(j + 2 * $lanes)),
                                                    $load(c2),
                                                ),
                                            );
                                            $store(
                                                c3,
                                                $fma(
                                                    va,
                                                    $load(brow.add(j + 3 * $lanes)),
                                                    $load(c3),
                                                ),
                                            );
                                            j += 4 * $lanes;
                                        }
                                        while j + $lanes <= j_end {
                                            let cj = crow.add(j);
                                            $store(cj, $fma(va, $load(brow.add(j)), $load(cj)));
                                            j += $lanes;
                                        }
                                        while j < j_end {
                                            *crow.add(j) += av * *brow.add(j);
                                            j += 1;
                                        }
                                    }
                                    kk += $lanes;
                                }
                                while kk < k_end {
                                    let av = *arow.add(kk);
                                    if av.to_bits() != 0 {
                                        let brow = bp.add(kk * ldb);
                                        for j in jb..j_end {
                                            *crow.add(j) += av * *brow.add(j);
                                        }
                                    }
                                    kk += 1;
                                }
                            }
                            continue;
                        }
                        let mut j = jb;
                        while j + NR <= j_end {
                            // Dense path: the C tile lives in registers
                            // for the whole k-panel — one load + one
                            // store per panel, B rows amortized over all
                            // `rows` accumulator rows.
                            let mut acc = [[$zero(); 2]; MR];
                            for r in 0..rows {
                                let crow = cp.add((it + r) * ldc + j);
                                acc[r][0] = $load(crow);
                                acc[r][1] = $load(crow.add($lanes));
                            }
                            for kk in kb..k_end {
                                let brow = bp.add(kk * ldb + j);
                                let b0 = $load(brow);
                                let b1 = $load(brow.add($lanes));
                                for r in 0..rows {
                                    let av = *ap.add((it + r) * lda + kk);
                                    if av.to_bits() != 0 {
                                        let va = $splat(av);
                                        acc[r][0] = $fma(va, b0, acc[r][0]);
                                        acc[r][1] = $fma(va, b1, acc[r][1]);
                                    }
                                }
                            }
                            for r in 0..rows {
                                let crow = cp.add((it + r) * ldc + j);
                                $store(crow, acc[r][0]);
                                $store(crow.add($lanes), acc[r][1]);
                            }
                            j += NR;
                        }
                        // Column tail narrower than a tile: scalar loop,
                        // still inside the feature region.
                        if j < j_end {
                            for r in 0..rows {
                                let i = it + r;
                                for kk in kb..k_end {
                                    let av = *ap.add(i * lda + kk);
                                    if av.to_bits() == 0 {
                                        continue;
                                    }
                                    for jj in j..j_end {
                                        *cp.add(i * ldc + jj) += av * *bp.add(kk * ldb + jj);
                                    }
                                }
                            }
                        }
                    }
                    it += rows;
                }
            }
        }
    };
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
simd_kernel!(
    gemm_avx2,
    "avx2,fma",
    __m256,
    8,
    _mm256_loadu_ps,
    _mm256_storeu_ps,
    _mm256_set1_ps,
    _mm256_fmadd_ps,
    _mm256_setzero_ps,
    nonzero_mask_avx2
);

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
simd_kernel!(
    gemm_avx512,
    "avx512f",
    __m512,
    16,
    _mm512_loadu_ps,
    _mm512_storeu_ps,
    _mm512_set1_ps,
    _mm512_fmadd_ps,
    _mm512_setzero_ps,
    nonzero_mask_avx512
);

/// Nightly portable-SIMD kernel: the scalar blocking with an explicit
/// `f32x8` inner loop (no register tiling — this path exists to prove the
/// `std::simd` formulation, not to beat the intrinsics).
///
/// # Safety
/// See [`gemm_block_strided`].
#[cfg(feature = "portable-simd")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_portable(
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    c: *mut f32,
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    use std::simd::f32x8;
    for kb in (0..k).step_by(KC) {
        let k_end = (kb + KC).min(k);
        for jb in (0..n).step_by(NC) {
            let j_end = (jb + NC).min(n);
            for i in 0..m {
                let a_row = std::slice::from_raw_parts(a.add(i * lda), k);
                for kk in kb..k_end {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let va = f32x8::splat(aik);
                    let c_row = std::slice::from_raw_parts_mut(c.add(i * ldc + jb), j_end - jb);
                    let b_row = std::slice::from_raw_parts(b.add(kk * ldb + jb), j_end - jb);
                    let mut cc = c_row.chunks_exact_mut(8);
                    let mut bc = b_row.chunks_exact(8);
                    for (cv, bv) in (&mut cc).zip(&mut bc) {
                        let v = va * f32x8::from_slice(bv) + f32x8::from_slice(cv);
                        v.copy_to_slice(cv);
                    }
                    for (cv, &bv) in cc.into_remainder().iter_mut().zip(bc.remainder()) {
                        *cv += aik * bv;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_available_and_last() {
        let ks = available_kernels();
        assert_eq!(*ks.last().unwrap(), Kernel::Scalar);
        assert!(ks.contains(&active_kernel()));
    }

    #[test]
    fn panel_width_is_tile_aligned() {
        // Every SIMD tile width divides NC, so full tiles never straddle
        // a cache panel boundary.
        assert_eq!(NC % 16, 0);
        assert_eq!(NC % 32, 0);
    }

    #[test]
    fn names_are_stable() {
        for k in available_kernels() {
            assert_eq!(k.to_string(), k.name());
            assert!(!k.name().is_empty());
        }
    }
}
