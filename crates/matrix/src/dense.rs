//! Row-major dense `f32` matrices.

use std::fmt;

/// A row-major dense matrix of `f32` entries.
///
/// The join algorithms build these as 0/1 adjacency matrices over the *heavy*
/// value domains (Algorithm 1 line 4); after multiplication each entry holds
/// the number of join witnesses, which similarity joins compare against the
/// overlap threshold `c`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}×{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds from a closure evaluated at every `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Entry accessor without bounds re-derivation (debug-checked).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// The transpose (fresh allocation, cache-blocked swap loop).
    pub fn transpose(&self) -> Self {
        const B: usize = 32;
        let mut t = Self::zeros(self.cols, self.rows);
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Iterator over `(row, col, value)` of entries with `value >= threshold`.
    ///
    /// This is the extraction step of Algorithm 1 line 6 (`M_ac > 0`) and of
    /// the SSJ variant (`M_ac ≥ c`).
    pub fn entries_at_least(
        &self,
        threshold: f32,
    ) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(move |&(_, &v)| v >= threshold)
            .map(move |(idx, &v)| (idx / self.cols, idx % self.cols, v))
    }

    /// Frobenius-style total (sum of all entries); for a 0/1 product matrix
    /// this equals the *full* join size restricted to heavy parts.
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f32;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}×{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:6.1} ", self.get(i, j))?;
            }
            writeln!(f, "{}", if self.cols > 12 { " …" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(0, 1)] = 2.0;
        m.set(1, 2, 5.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn from_fn_and_rows() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
        assert_eq!(m.row(0), &[0.0, 1.0]);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = DenseMatrix::from_fn(3, 5, |i, j| (i * 31 + j * 7) as f32);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 3);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn entries_at_least_threshold() {
        let m = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 2.0, 3.0]);
        let hits: Vec<_> = m.entries_at_least(2.0).collect();
        assert_eq!(hits, vec![(1, 0, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.entries_at_least(0.5).count(), 3);
    }

    #[test]
    fn identity_behaves() {
        let id = DenseMatrix::identity(4);
        assert_eq!(id.nnz(), 4);
        assert_eq!(id.get(2, 2), 1.0);
        assert_eq!(id.get(2, 3), 0.0);
    }

    #[test]
    fn zero_sized_matrices() {
        let m = DenseMatrix::zeros(0, 5);
        assert_eq!(m.rows(), 0);
        assert_eq!(m.nnz(), 0);
        let t = m.transpose();
        assert_eq!(t.rows(), 5);
        assert_eq!(t.cols(), 0);
    }
}
