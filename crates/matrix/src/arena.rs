//! Reusable thread-local scratch buffers for packing slabs.
//!
//! The parallel tile scheduler packs B into a panel-major slab on every
//! product; allocating (and faulting in) that slab per call costs more
//! than the packing itself for mid-sized products. [`with_scratch`]
//! leases a buffer from a small per-thread pool instead: repeat products
//! on the same caller thread — the common shape for both the service's
//! worker threads and the executor's pool — reuse warm, already-faulted
//! memory with zero synchronization.
//!
//! The pool is deliberately tiny and bounded: at most [`POOL_SLOTS`]
//! buffers per thread, and buffers larger than [`MAX_POOLED_LEN`] floats
//! (64 MiB) are dropped on return rather than pinned for the thread's
//! lifetime. Nested leases (a parallel GEMM inside another product's
//! tile) simply pop distinct buffers.

use std::cell::RefCell;

/// Buffers retained per thread; two covers the deepest practical nesting
/// (a Strassen leaf's GEMM inside an engine's product).
const POOL_SLOTS: usize = 2;

/// Largest buffer (in `f32` elements) worth pinning to a thread between
/// products: 16 Mi floats = 64 MiB. Bigger slabs are one-shot.
const MAX_POOLED_LEN: usize = 16 * 1024 * 1024;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` over a scratch slice of exactly `len` floats, leased from
/// this thread's pool. A reused buffer that is already large enough is
/// handed over as-is up to `len` — callers must treat the contents as
/// *uninitialized-but-valid* floats and fully overwrite whatever region
/// they later read. (The tile scheduler packs every element of the slab
/// before any tile reads it, so this is free there.) Debug builds
/// enforce the contract by NaN-poisoning the lease before `f` runs.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    // Runtime contract (debug builds only): the lease hands over
    // uninitialized-but-valid contents, so poison them with NaN. A
    // caller that reads a slot it never wrote propagates NaN into its
    // output and fails the equivalence suites loudly, instead of
    // silently reusing stale floats from a previous product.
    #[cfg(debug_assertions)]
    buf[..len].fill(f32::NAN);
    let out = f(&mut buf[..len]);
    debug_assert!(buf.len() >= len, "lease returned a truncated slab");
    if buf.len() <= MAX_POOLED_LEN {
        POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_SLOTS {
                pool.push(buf);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        with_scratch(17, |s| assert_eq!(s.len(), 17));
        // A second, smaller lease sees exactly its own length even though
        // the pooled buffer is larger.
        with_scratch(3, |s| assert_eq!(s.len(), 3));
    }

    #[test]
    fn reuse_keeps_capacity_across_leases() {
        let cap0 = with_scratch(4096, |s| {
            s[0] = 1.0;
            s.len()
        });
        assert_eq!(cap0, 4096);
        // The pooled buffer comes back without reallocating; contents are
        // unspecified, so only the length contract is asserted.
        with_scratch(4096, |s| assert_eq!(s.len(), 4096));
    }

    #[test]
    fn nested_leases_get_distinct_buffers() {
        with_scratch(64, |outer| {
            outer[0] = 7.0;
            with_scratch(64, |inner| {
                inner[0] = 9.0;
            });
            assert_eq!(outer[0], 7.0, "nested lease must not alias the outer one");
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    fn debug_lease_is_nan_poisoned() {
        // Write a recognizable value, then check a fresh lease of the
        // same (pooled) buffer does not leak it.
        with_scratch(32, |s| s.fill(3.25));
        with_scratch(32, |s| {
            assert!(
                s.iter().all(|v| v.is_nan()),
                "reused slab leaked prior contents into a new lease"
            );
        });
    }

    use proptest::prelude::*;

    proptest! {
        /// Interleaved leases across size classes: every lease is exactly
        /// the requested length, regardless of which pooled slab (bigger,
        /// smaller, or fresh) backs it.
        #[test]
        fn interleaved_size_classes_lease_exact_lengths(
            lens in proptest::collection::vec(1usize..5000, 1..40)
        ) {
            for (i, &len) in lens.iter().enumerate() {
                with_scratch(len, |s| {
                    prop_assert_eq!(s.len(), len);
                    // Touch both ends so an undersized slab would trip
                    // the bounds check.
                    s[0] = i as f32;
                    s[len - 1] = i as f32;
                });
            }
        }

        /// A caller that fully overwrites its lease reads back exactly
        /// what it wrote — no aliasing with earlier leases of other size
        /// classes, and (in debug builds) no poison left behind.
        #[test]
        fn reused_slabs_fully_overwritten_read_back_clean(
            lens in proptest::collection::vec(1usize..3000, 2..30)
        ) {
            for (i, &len) in lens.iter().enumerate() {
                let tag = i as f32 + 0.5;
                with_scratch(len, |s| {
                    for (j, slot) in s.iter_mut().enumerate() {
                        *slot = tag + j as f32;
                    }
                    for (j, slot) in s.iter().enumerate() {
                        prop_assert_eq!(*slot, tag + j as f32);
                    }
                });
            }
        }
    }
}
