//! Reusable thread-local scratch buffers for packing slabs.
//!
//! The parallel tile scheduler packs B into a panel-major slab on every
//! product; allocating (and faulting in) that slab per call costs more
//! than the packing itself for mid-sized products. [`with_scratch`]
//! leases a buffer from a small per-thread pool instead: repeat products
//! on the same caller thread — the common shape for both the service's
//! worker threads and the executor's pool — reuse warm, already-faulted
//! memory with zero synchronization.
//!
//! The pool is deliberately tiny and bounded: at most [`POOL_SLOTS`]
//! buffers per thread, and buffers larger than [`MAX_POOLED_LEN`] floats
//! (64 MiB) are dropped on return rather than pinned for the thread's
//! lifetime. Nested leases (a parallel GEMM inside another product's
//! tile) simply pop distinct buffers.

use std::cell::RefCell;

/// Buffers retained per thread; two covers the deepest practical nesting
/// (a Strassen leaf's GEMM inside an engine's product).
const POOL_SLOTS: usize = 2;

/// Largest buffer (in `f32` elements) worth pinning to a thread between
/// products: 16 Mi floats = 64 MiB. Bigger slabs are one-shot.
const MAX_POOLED_LEN: usize = 16 * 1024 * 1024;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` over a zero-initialized scratch slice of exactly `len` floats,
/// leased from this thread's pool. A reused buffer that is already large
/// enough is handed over as-is up to `len` — callers must treat the
/// contents as *uninitialized-but-valid* floats and fully overwrite
/// whatever region they later read. (The tile scheduler packs every
/// element of the slab before any tile reads it, so this is free there.)
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    let out = f(&mut buf[..len]);
    if buf.len() <= MAX_POOLED_LEN {
        POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < POOL_SLOTS {
                pool.push(buf);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_has_requested_length() {
        with_scratch(17, |s| assert_eq!(s.len(), 17));
        // A second, smaller lease sees exactly its own length even though
        // the pooled buffer is larger.
        with_scratch(3, |s| assert_eq!(s.len(), 3));
    }

    #[test]
    fn reuse_keeps_capacity_across_leases() {
        let cap0 = with_scratch(4096, |s| {
            s[0] = 1.0;
            s.len()
        });
        assert_eq!(cap0, 4096);
        // The pooled buffer comes back without reallocating; contents are
        // unspecified, so only the length contract is asserted.
        with_scratch(4096, |s| assert_eq!(s.len(), 4096));
    }

    #[test]
    fn nested_leases_get_distinct_buffers() {
        with_scratch(64, |outer| {
            outer[0] = 7.0;
            with_scratch(64, |inner| {
                inner[0] = 9.0;
            });
            assert_eq!(outer[0], 7.0, "nested lease must not alias the outer one");
        });
    }
}
