//! The calibrated matrix-multiplication cost model `M̂(u, v, w, co)`.
//!
//! Algorithm 3 (§5) needs to predict, for candidate degree thresholds, how
//! long the heavy-part multiplication will take on *this* machine with *this*
//! kernel. The paper pre-measures square products `M̂(p, p, p, co)` for
//! `p ∈ {1000, 2000, …, 20000}` and `co ∈ [5]`, then extrapolates to
//! arbitrary rectangular shapes. We do the same, scaled to our kernel: we
//! measure a handful of square sizes per core count (or accept injected
//! measurements), fit effective FLOP throughput per sample, and interpolate
//! by total work `u·v·w`.
//!
//! The model also exposes the §5 constants of Table 1 — sequential-access
//! time `Ts`, allocation time `Tm`, random insert time `TI` — which the
//! light-part cost formula (Algorithm 3 lines 10–11) multiplies against the
//! threshold-index sums.

use crate::dense::DenseMatrix;
use crate::gemm::matmul_parallel;
use std::time::Instant;

/// One calibration sample: a `p × p × p` product on `cores` threads took
/// `seconds`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Square dimension measured.
    pub p: usize,
    /// Worker threads used.
    pub cores: usize,
    /// Wall-clock seconds for the product.
    pub seconds: f64,
}

/// System constants of Table 1 (per-element costs, in seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConstants {
    /// `Ts`: average sequential access cost per element.
    pub t_seq: f64,
    /// `Tm`: average cost to allocate 32 bytes.
    pub t_alloc: f64,
    /// `TI`: average random access + insert cost per element.
    pub t_insert: f64,
}

impl Default for SystemConstants {
    fn default() -> Self {
        // Modern-x86 defaults; `measure()` refines them. The insert cost
        // assumes the dedup scratch buffer mostly stays in cache (§6's
        // design goal) — overpricing it biases Algorithm 3 toward matrices
        // even where expansion wins.
        Self {
            t_seq: 1.0e-9,
            t_alloc: 4.0e-9,
            t_insert: 2.5e-9,
        }
    }
}

impl SystemConstants {
    /// Micro-benchmarks the three constants on the current machine.
    pub fn measure() -> Self {
        const N: usize = 1 << 20;
        // Sequential scan.
        let v: Vec<u32> = (0..N as u32).collect();
        let t0 = Instant::now();
        let mut acc = 0u64;
        for &x in &v {
            acc = acc.wrapping_add(x as u64);
        }
        let t_seq = t0.elapsed().as_secs_f64() / N as f64;
        std::hint::black_box(acc);
        // Allocation (vec push growth amortized).
        let t0 = Instant::now();
        let mut w: Vec<u64> = Vec::new();
        for i in 0..(N / 4) as u64 {
            w.push(i);
        }
        let t_alloc = t0.elapsed().as_secs_f64() / (N / 4) as f64 * 4.0;
        std::hint::black_box(&w);
        // Random access + increment.
        let mut d = vec![0u32; N];
        let mut idx = 123456789usize;
        let t0 = Instant::now();
        for _ in 0..N / 4 {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1);
            d[idx % N] += 1;
        }
        let t_insert = t0.elapsed().as_secs_f64() / (N / 4) as f64;
        std::hint::black_box(&d);
        Self {
            t_seq: t_seq.max(1e-11),
            t_alloc: t_alloc.max(1e-11),
            t_insert: t_insert.max(1e-11),
        }
    }
}

/// Calibrated estimator for multiplication and construction cost.
#[derive(Debug, Clone)]
pub struct CostModel {
    samples: Vec<Sample>,
    /// System constants for non-GEMM terms.
    pub constants: SystemConstants,
}

impl CostModel {
    /// A model from explicit samples (useful for tests and for loading cached
    /// calibration data).
    pub fn from_samples(samples: Vec<Sample>, constants: SystemConstants) -> Self {
        assert!(!samples.is_empty(), "cost model needs at least one sample");
        Self { samples, constants }
    }

    /// A deterministic default model assuming an effective single-core
    /// throughput of `20 GFLOP/s` (2 ops per multiply-add; the blocked
    /// kernel of this crate measures ~35 GFLOP/s on AVX-512 hardware, so
    /// this is a conservative portable default) with 80% parallel
    /// efficiency — adequate for unit tests that must not spend time
    /// calibrating. Experiment binaries should prefer [`CostModel::calibrate`].
    pub fn analytic_default() -> Self {
        let mut samples = Vec::new();
        for cores in 1..=8usize {
            let eff = cores as f64 * 0.8 + 0.2;
            for p in [512usize, 1024, 2048] {
                let flops = 2.0 * (p as f64).powi(3);
                samples.push(Sample {
                    p,
                    cores,
                    seconds: flops / (20.0e9 * eff),
                });
            }
        }
        Self {
            samples,
            constants: SystemConstants::default(),
        }
    }

    /// Calibrates by actually running the kernel at the given square sizes
    /// and core counts (the paper's `p ∈ {1000, …, 20000}` table, scaled).
    pub fn calibrate(sizes: &[usize], core_counts: &[usize]) -> Self {
        let mut samples = Vec::new();
        for &cores in core_counts {
            for &p in sizes {
                let a =
                    DenseMatrix::from_fn(p, p, |i, j| ((i * 31 + j * 17) % 7 == 0) as u8 as f32);
                let b =
                    DenseMatrix::from_fn(p, p, |i, j| ((i * 13 + j * 29) % 5 == 0) as u8 as f32);
                let t0 = Instant::now();
                let c = matmul_parallel(&a, &b, cores);
                let seconds = t0.elapsed().as_secs_f64().max(1e-9);
                std::hint::black_box(&c);
                samples.push(Sample { p, cores, seconds });
            }
        }
        Self {
            samples,
            constants: SystemConstants::measure(),
        }
    }

    /// `M̂(u, v, w, co)` — predicted seconds to multiply `u×v` by `v×w` on
    /// `co` cores: pick the sample nearest in per-core work and scale by the
    /// work ratio (our kernel is cubic with no Strassen in the calibrated
    /// path, so the scaling is linear in `u·v·w`, matching the paper's
    /// observation that Eigen's runtime is predictable).
    pub fn estimate(&self, u: usize, v: usize, w: usize, cores: usize) -> f64 {
        if u == 0 || v == 0 || w == 0 {
            return 0.0;
        }
        let work = u as f64 * v as f64 * w as f64;
        // Nearest sample by (core distance, work distance).
        let best = self
            .samples
            .iter()
            .min_by(|s1, s2| {
                let key = |s: &Sample| {
                    let core_gap = (s.cores as f64 - cores as f64).abs();
                    let w_s = (s.p as f64).powi(3);
                    let work_gap = (w_s.ln() - work.ln()).abs();
                    core_gap * 1000.0 + work_gap
                };
                key(s1).total_cmp(&key(s2))
            })
            .expect("non-empty samples");
        let sample_work = (best.p as f64).powi(3);
        let scaled = best.seconds * work / sample_work;
        // Correct for a core-count mismatch with the 80%-efficiency model.
        let eff = |c: usize| c as f64 * 0.8 + 0.2;
        scaled * eff(best.cores) / eff(cores)
    }

    /// Predicted seconds for a GEMM that will execute `madds` effective
    /// multiply-adds on `cores` workers. The blocked kernel skips zero
    /// entries of the left operand, so for 0/1 adjacency matrices the
    /// effective work is `nnz(A) · w`, often far below `u·v·w` — pricing
    /// the dense product would bias Algorithm 3 away from profitable plans.
    pub fn estimate_effective(&self, madds: f64, cores: usize) -> f64 {
        if madds <= 0.0 {
            return 0.0;
        }
        let best = self
            .samples
            .iter()
            .min_by(|s1, s2| {
                let key = |s: &Sample| {
                    let core_gap = (s.cores as f64 - cores as f64).abs();
                    let work_gap = ((s.p as f64).powi(3).ln() - madds.ln()).abs();
                    core_gap * 1000.0 + work_gap
                };
                key(s1).total_cmp(&key(s2))
            })
            .expect("non-empty samples");
        let scaled = best.seconds * madds / (best.p as f64).powi(3);
        let eff = |c: usize| c as f64 * 0.8 + 0.2;
        scaled * eff(best.cores) / eff(cores)
    }

    /// Predicted seconds to *construct* the two heavy matrices of Algorithm 1
    /// (allocation + one pass over the heavy pairs; `C` in Eq. (1)).
    pub fn construction_cost(&self, u: usize, v: usize, w: usize) -> f64 {
        let cells = (u as f64 * v as f64) + (v as f64 * w as f64);
        cells * (self.constants.t_alloc / 8.0 + self.constants.t_seq)
    }

    /// All samples (for reporting / Figure 3 reproduction).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_model() -> CostModel {
        CostModel::from_samples(
            vec![
                Sample {
                    p: 100,
                    cores: 1,
                    seconds: 1.0,
                },
                Sample {
                    p: 200,
                    cores: 1,
                    seconds: 8.0,
                },
                Sample {
                    p: 100,
                    cores: 4,
                    seconds: 0.3,
                },
            ],
            SystemConstants::default(),
        )
    }

    #[test]
    fn estimate_scales_linearly_in_work() {
        let m = flat_model();
        let t1 = m.estimate(100, 100, 100, 1);
        let t2 = m.estimate(200, 100, 100, 1);
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "doubling u doubles time");
    }

    #[test]
    fn estimate_prefers_matching_cores() {
        let m = flat_model();
        let t1 = m.estimate(100, 100, 100, 1);
        let t4 = m.estimate(100, 100, 100, 4);
        assert!(t4 < t1, "4-core estimate should be faster");
    }

    #[test]
    fn estimate_zero_dims() {
        let m = flat_model();
        assert_eq!(m.estimate(0, 10, 10, 1), 0.0);
        assert_eq!(m.estimate(10, 0, 10, 2), 0.0);
    }

    #[test]
    fn rectangular_uses_nearest_work() {
        let m = flat_model();
        // u*v*w == 8e6 == 200^3: should pick the p=200 sample.
        let t = m.estimate(800, 100, 100, 1);
        assert!((t - 8.0).abs() < 1e-9);
    }

    #[test]
    fn construction_cost_positive_and_monotone() {
        let m = flat_model();
        let small = m.construction_cost(10, 10, 10);
        let big = m.construction_cost(100, 100, 100);
        assert!(small > 0.0);
        assert!(big > small);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let _ = CostModel::from_samples(vec![], SystemConstants::default());
    }

    #[test]
    fn analytic_default_sane() {
        let m = CostModel::analytic_default();
        let t = m.estimate(1000, 1000, 1000, 1);
        assert!(t > 0.0 && t < 100.0);
        // More cores must not be slower under the analytic model.
        assert!(m.estimate(1000, 1000, 1000, 8) < t);
    }

    #[test]
    fn measured_constants_positive() {
        let c = SystemConstants::measure();
        assert!(c.t_seq > 0.0 && c.t_alloc > 0.0 && c.t_insert > 0.0);
    }

    #[test]
    fn calibrate_tiny_runs() {
        let m = CostModel::calibrate(&[32, 64], &[1]);
        assert_eq!(m.samples().len(), 2);
        assert!(m.estimate(64, 64, 64, 1) > 0.0);
    }
}
